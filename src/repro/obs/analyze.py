"""Trace analysis: timelines + attribution + swarm health rollups.

The public face of the diagnosis subsystem.  Feed it a trace — a live
:class:`~repro.obs.context.Observability`, an event list, or a JSONL
file — and get back a :class:`RunAnalysis`: per-peer timelines reduced
to QoE summaries, every completed stall attributed to one cause from
:data:`~repro.obs.causes.STALL_CAUSES` with its evidence window, and
swarm-health aggregates (cause histogram, transfer efficiency,
pool-occupancy-vs-Eq.1 deficit).

Everything here is pure and deterministic: no wall clock, no
randomness, no mutation of inputs.  The same trace yields the same
analysis whether it was recorded in-process or in a worker — which is
what lets sweep results carry attributions that are byte-identical
across ``jobs=1`` and ``jobs=4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import IO, Sequence

from .causes import (
    STALL_CAUSES,
    StallAttribution,
    attribute_stalls,
    cause_histogram,
)
from .context import Observability
from .events import TraceEvent
from .export import PeerTraceSummary, load_jsonl, render_trace_summary
from .timeline import InvariantViolation, PeerTimeline, build_timelines

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class RunAnalysis:
    """Everything the analyzer concluded about one run's trace.

    Frozen and built from plain containers so it pickles cleanly
    across process-pool boundaries.

    Attributes:
        attributions: one verdict per completed stall, ordered by
            (peer, start time).
        causes: cause -> count, every taxonomy entry present.
        peers: per-peer QoE summaries reconstructed from the timeline
            pass (tolerant of truncated traces, unlike
            :func:`~repro.obs.export.summarize_trace`).
        violations: event-ordering invariants the trace broke.
        truncated: whether the trace lost its head to a capacity-bounded
            ring buffer.
        notes: human-readable caveats about the reconstruction.
        stall_count: completed stalls across all peers — equals
            ``len(attributions)`` and, on a complete trace, the summed
            :class:`~repro.player.metrics.StreamingMetrics` counts.
        transfer_efficiency: payload bytes delivered / wire bytes moved
            by completed transfers (None when nothing completed).
            Below 1.0 means duplicate or abandoned traffic.
        pool_deficit: time-weighted mean of ``max(0, k - inflight)``
            across peers — how far below Eq. 1's target the pools
            actually ran (None when no pool decisions were traced).
        duration: sim seconds the trace covers.
        event_count: events consumed.
    """

    attributions: tuple[StallAttribution, ...]
    causes: dict[str, int]
    peers: dict[str, PeerTraceSummary]
    violations: tuple[InvariantViolation, ...]
    truncated: bool
    notes: tuple[str, ...]
    stall_count: int
    transfer_efficiency: float | None
    pool_deficit: float | None
    duration: float
    event_count: int


@dataclass(frozen=True, slots=True)
class CellAnalysis:
    """Stall diagnosis aggregated over one sweep cell's seeds.

    Attributes:
        causes: summed stall-cause histogram across the cell's runs.
        stall_count: total attributed stalls across runs.
        runs: how many runs contributed.
        mean_transfer_efficiency: mean over runs that had completed
            transfers (None when none did).
        mean_pool_deficit: mean over runs with pool decisions.
        violation_count: invariant violations across runs.
        truncated_runs: runs whose traces lost events to the ring
            buffer.
    """

    causes: dict[str, int]
    stall_count: int
    runs: int
    mean_transfer_efficiency: float | None
    mean_pool_deficit: float | None
    violation_count: int
    truncated_runs: int

    def dominant_cause(self) -> str | None:
        """The most frequent cause (ties broken by taxonomy order)."""
        best: str | None = None
        for cause in STALL_CAUSES:
            count = self.causes.get(cause, 0)
            if count and (best is None or count > self.causes[best]):
                best = cause
        return best


def _peer_summary(line: PeerTimeline) -> PeerTraceSummary:
    complete = [s for s in line.stalls if s.complete]
    return PeerTraceSummary(
        peer=line.peer,
        joined=line.joined,
        startup_time=line.startup_time,
        stall_count=len(complete),
        total_stall_duration=sum(
            s.duration for s in complete if s.duration is not None
        ),
        finished=line.finished_at is not None,
        departed=line.departed_at is not None,
    )


def _transfer_efficiency(timelines) -> float | None:
    payload = 0.0
    for line in timelines.timelines.values():
        for fetch in line.fetches:
            if fetch.size is not None:
                payload += fetch.size
    wire = sum(
        t.size
        for t in timelines.transfers
        if not t.cancelled and t.ended_at is not None and t.size
    )
    if wire <= 0:
        return None
    return payload / wire


def _pool_deficit(timelines) -> float | None:
    """Time-weighted mean of ``max(0, k - inflight)`` across peers."""
    horizon = timelines.last_time
    per_peer: list[float] = []
    for line in timelines.timelines.values():
        decisions = line.pool_decisions
        if not decisions:
            continue
        session_end = min(
            t
            for t in (line.finished_at, line.departed_at, horizon)
            if t is not None
        )
        weighted = 0.0
        total = 0.0
        for i, decision in enumerate(decisions):
            start = decision.time
            end = (
                decisions[i + 1].time
                if i + 1 < len(decisions)
                else session_end
            )
            if end <= start + _EPS:
                continue
            deficit = max(0, decision.size - line.inflight_at(start))
            weighted += deficit * (end - start)
            total += end - start
        if total > 0:
            per_peer.append(weighted / total)
    if not per_peer:
        return None
    return sum(per_peer) / len(per_peer)


def analyze_events(
    events: Sequence[TraceEvent], truncated: bool = False
) -> RunAnalysis:
    """Analyze an in-memory trace.

    Args:
        events: the trace, oldest first.
        truncated: caller-supplied hint that events were dropped before
            the trace was captured (e.g. the tracer's ``dropped``
            counter was non-zero).
    """
    timelines = build_timelines(events, truncated=truncated)
    attributions = tuple(attribute_stalls(timelines))
    return RunAnalysis(
        attributions=attributions,
        causes=cause_histogram(list(attributions)),
        peers={
            name: _peer_summary(line)
            for name, line in timelines.timelines.items()
        },
        violations=tuple(timelines.violations),
        truncated=timelines.truncated,
        notes=tuple(timelines.notes),
        stall_count=len(attributions),
        transfer_efficiency=_transfer_efficiency(timelines),
        pool_deficit=_pool_deficit(timelines),
        duration=max(0.0, timelines.last_time - timelines.first_time),
        event_count=timelines.event_count,
    )


def analyze_observability(obs: Observability) -> RunAnalysis:
    """Analyze a live run's retained events.

    The tracer's ``evicted`` counter (ring-buffer wraparound) feeds
    the truncation flag, so a wrapped buffer is reported even when the
    retained window happens to look well-formed.
    """
    evicted = getattr(obs.tracer, "evicted", 0)
    return analyze_events(obs.events(), truncated=evicted > 0)


def analyze_file(path: str | IO[str]) -> RunAnalysis:
    """Load a JSONL trace and analyze it.

    Raises:
        TraceError: when the file is missing or malformed — callers
            (the CLI) turn this into exit code 2, matching
            ``repro trace``.
    """
    return analyze_events(load_jsonl(path))


def merge_analyses(analyses: Sequence[RunAnalysis]) -> CellAnalysis:
    """Aggregate per-run analyses into one cell-level rollup."""
    causes = {cause: 0 for cause in STALL_CAUSES}
    for analysis in analyses:
        for cause, count in analysis.causes.items():
            causes[cause] = causes.get(cause, 0) + count
    efficiencies = [
        a.transfer_efficiency
        for a in analyses
        if a.transfer_efficiency is not None
    ]
    deficits = [
        a.pool_deficit for a in analyses if a.pool_deficit is not None
    ]
    return CellAnalysis(
        causes=causes,
        stall_count=sum(a.stall_count for a in analyses),
        runs=len(analyses),
        mean_transfer_efficiency=(
            sum(efficiencies) / len(efficiencies) if efficiencies else None
        ),
        mean_pool_deficit=(
            sum(deficits) / len(deficits) if deficits else None
        ),
        violation_count=sum(len(a.violations) for a in analyses),
        truncated_runs=sum(1 for a in analyses if a.truncated),
    )


# -- rendering ---------------------------------------------------------


def render_cause_table(causes: dict[str, int]) -> str:
    """The stall-cause histogram as a two-column table."""
    total = sum(causes.values())
    lines = [f"{'cause':<22s} {'stalls':>7s} {'share':>7s}"]
    for cause in STALL_CAUSES:
        count = causes.get(cause, 0)
        share = f"{100.0 * count / total:6.1f}%" if total else f"{'-':>7s}"
        lines.append(f"{cause:<22s} {count:>7d} {share}")
    lines.append(f"{'total':<22s} {total:>7d}")
    return "\n".join(lines)


def render_attributions(
    attributions: Sequence[StallAttribution],
) -> str:
    """One line per attributed stall, with its evidence."""
    if not attributions:
        return "(no completed stalls)"
    lines = [
        f"{'peer':<10s} {'seg':>4s} {'start':>8s} {'dur s':>7s} "
        f"{'cause':<22s} {'source':<10s} evidence"
    ]
    for a in attributions:
        evidence = a.evidence[0] if a.evidence else ""
        lines.append(
            f"{a.peer:<10s} {a.segment:>4d} {a.start:>8.1f} "
            f"{a.duration:>7.2f} {a.cause:<22s} "
            f"{(a.blocking_source or '-'):<10s} {evidence}"
        )
    return "\n".join(lines)


def render_analysis(analysis: RunAnalysis) -> str:
    """The full ``repro analyze`` report for one run."""
    parts: list[str] = ["# Stall diagnosis"]
    if analysis.truncated:
        parts.append("")
        parts.append(
            "WARNING: trace is truncated (ring-buffer wraparound); "
            "results cover only the retained window"
        )
    for note in analysis.notes:
        parts.append(f"note: {note}")
    if analysis.violations:
        parts += ["", "## Invariant violations", ""]
        for v in analysis.violations:
            parts.append(
                f"- t={v.time:.3f} {v.peer or '(swarm)'} [{v.rule}] "
                f"{v.detail} (event #{v.event_id})"
            )
    parts += [
        "",
        f"Trace: {analysis.event_count} events over "
        f"{analysis.duration:.1f}s of sim time, "
        f"{len(analysis.peers)} peers, "
        f"{analysis.stall_count} completed stalls.",
    ]
    if analysis.transfer_efficiency is not None:
        parts.append(
            "Transfer efficiency: "
            f"{analysis.transfer_efficiency:.3f} "
            "(payload bytes / wire bytes)"
        )
    if analysis.pool_deficit is not None:
        parts.append(
            f"Pool deficit vs Eq. 1: {analysis.pool_deficit:.2f} "
            "requests below target (time-weighted mean)"
        )
    parts += [
        "",
        "## Stall causes",
        "",
        render_cause_table(analysis.causes),
        "",
        "## Attributed stalls",
        "",
        render_attributions(analysis.attributions),
        "",
        "## Per-peer sessions",
        "",
        render_trace_summary(analysis.peers),
    ]
    return "\n".join(parts) + "\n"
