"""ASCII Gantt rendering of reconstructed timelines.

One row per peer, one column per time bucket, with stall spans marked
by the *cause letter* the attribution pass assigned — so a glance
shows not just where sessions froze but why.  Visual style follows
:mod:`repro.experiments.timeline` (the metrics-based renderer); this
one works from a trace instead of live metrics and therefore also
works on traces loaded from disk.
"""

from __future__ import annotations

from typing import Sequence

from .causes import StallAttribution
from .timeline import PeerTimeline, TimelineSet

#: cause -> single-letter Gantt marker.
CAUSE_SYMBOLS: dict[str, str] = {
    "churn-loss": "X",
    "oversized-segment": "O",
    "pool-undersubscription": "P",
    "seeder-bottleneck": "S",
    "connection-overhead": "C",
    "startup": "*",
}

_LEGEND = (
    "legend: `.` waiting  `=` playing  `$` finished  stall causes: "
    "`X` churn-loss  `O` oversized-segment  `P` pool-undersubscription  "
    "`S` seeder-bottleneck  `C` connection-overhead  `*` startup  "
    "`#` unattributed"
)


def _symbol_at(
    line: PeerTimeline,
    stall_symbols: list[tuple[float, float, str]],
    t: float,
) -> str:
    if line.joined is not None and t < line.joined:
        return " "
    if line.departed_at is not None and t >= line.departed_at:
        return " "
    if line.finished_at is not None and t >= line.finished_at:
        return "$"
    for start, end, symbol in stall_symbols:
        if start <= t < end:
            return symbol
    if (
        line.playback_started_at is None
        or t < line.playback_started_at
    ):
        return "."
    return "="


def render_gantt(
    timelines: TimelineSet,
    attributions: Sequence[StallAttribution] = (),
    width: int = 72,
) -> str:
    """Render per-peer playback timelines with cause-marked stalls.

    Args:
        timelines: the reconstructed trace.
        attributions: verdicts from
            :func:`~repro.obs.causes.attribute_stalls`; stalls without
            a matching verdict render as ``#``.
        width: columns in the time axis.
    """
    if not timelines.timelines:
        return "(no peers in trace)"
    horizon = max(timelines.last_time, 1e-9)
    scale = horizon / width

    verdicts: dict[tuple[str, float], str] = {
        (a.peer, a.start): CAUSE_SYMBOLS.get(a.cause, "#")
        for a in attributions
    }

    rows: list[str] = []
    for name, line in timelines.timelines.items():
        stall_symbols: list[tuple[float, float, str]] = []
        for span in line.stalls:
            if span.start is None:
                continue
            end = span.end if span.end is not None else horizon
            symbol = verdicts.get((name, span.start), "#")
            stall_symbols.append((span.start, end, symbol))
        row = [
            _symbol_at(line, stall_symbols, column * scale)
            for column in range(width)
        ]
        rows.append(f"{name:>8s} |{''.join(row)}|")

    axis = f"{'':>8s} 0{'':{width - 1}s}{horizon:.0f}s"
    return "\n".join([*rows, axis, _LEGEND])
