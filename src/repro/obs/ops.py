"""Operational wall-clock telemetry for the sweep orchestration layer.

Three cooperating pieces, all speaking ``repro.ops/1``:

* :class:`OpsLog` — an append-only JSONL span log (header record
  first, one record per finished :class:`~repro.obs.span.Span`).  The
  executor, the result store, and the sweep service emit into it;
  ``repro ops PATH`` renders it back as a wall-clock tree with a
  critical-path summary.
* :class:`ShardHeartbeat` — a single JSON file a running shard
  atomically rewrites (temp file + ``os.replace``) every
  ``interval`` seconds: shard id, run counters, last commit time, and
  an ETA from the observed run rate.  A reader can never see a torn
  heartbeat, and a killed shard is detectable because its heartbeat
  goes stale while still claiming ``state: running``.
* :func:`fleet_status` / :func:`render_fleet` — the aggregation
  behind ``repro sweep status``: join a plan's per-shard run counts
  with every shard's heartbeat into per-shard progress, flag
  stragglers (rate below a fraction of the fleet median), and flag
  dead shards (stale heartbeat).

This is the **one orchestration module sanctioned to read the wall
clock** (lint rule D1's allowlist): sim-path code that wants wall
telemetry calls in here instead of touching ``time`` itself.  Both
writers ship disabled null twins (:data:`NULL_OPS`,
:data:`NULL_HEARTBEAT`) so instrumented code pays one attribute check
when telemetry is off — the same pattern as
:data:`~repro.obs.tracer.NULL_TRACER`.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from pathlib import Path
from statistics import median
from typing import Iterable, Iterator, Sequence

from ..errors import OpsError
from .span import OPS_SCHEMA, Span, span_from_dict

#: Directory (under a result-store root) holding ops logs and
#: heartbeats for the sweeps that ran against that store.
OPS_DIR = "repro.ops"

#: Heartbeats older than this (seconds) mark their shard dead by
#: default; ``repro sweep status --stale`` overrides it.
DEFAULT_STALE_AFTER_S = 30.0

#: A running shard whose rate is below this fraction of the fleet
#: median is flagged as a straggler by default.
DEFAULT_STRAGGLER_BELOW = 0.5

#: Recognized terminal heartbeat states (plus ``"running"``).
HEARTBEAT_STATES = ("running", "done", "failed")


def ops_root(store_root: str | Path) -> Path:
    """The telemetry directory next to a result store's entries."""
    return Path(store_root) / OPS_DIR


def shard_ops_path(store_root: str | Path, shard: int) -> Path:
    """Span-log path for one ``repro sweep run`` shard."""
    return ops_root(store_root) / f"shard-{shard}.ops.jsonl"


def merge_ops_path(store_root: str | Path) -> Path:
    """Span-log path for a ``repro sweep merge`` into a store."""
    return ops_root(store_root) / "merge.ops.jsonl"


def heartbeat_path(store_root: str | Path, shard: int) -> Path:
    """Heartbeat path for one shard running against a store."""
    return ops_root(store_root) / f"shard-{shard}.heartbeat.json"


class OpsLog:
    """Append-only wall-clock span log (schema ``repro.ops/1``).

    Spans are written when they *finish* (a crash loses only the
    spans still open), each as one JSON line after a header record
    naming the schema.  Parent/child structure comes from an
    in-process span stack: all orchestration emission happens in the
    parent process (pool workers report wall time through their
    outcome, not by writing here), so a plain stack is exact.

    Args:
        path: log file; parent directories are created, an existing
            file is truncated (one log per orchestration run).
        clock: epoch-seconds time source (tests inject a fake one).
    """

    enabled = True

    def __init__(self, path: str | Path, clock=time.time) -> None:
        self.path = Path(path)
        self._clock = clock
        self._handle = None
        self._next_id = 1
        self._stack: list[Span] = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        """Time a block as a span; yields it for mid-flight attrs.

        The span's status flips to ``"failed"`` when the block
        raises; either way it is written on exit.
        """
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else None,
            name=name,
            start=self._clock(),
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            span.status = "failed"
            raise
        finally:
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            span.end = self._clock()
            self._write(span)

    def record(
        self,
        name: str,
        duration_s: float = 0.0,
        status: str = "ok",
        **attrs,
    ) -> Span:
        """Emit a span for an operation that already happened.

        The executor uses this for cell runs: a pool worker measured
        its own ``wall_seconds``, so the span is back-dated to
        ``now - duration_s`` under whatever span is currently open.
        """
        now = self._clock()
        span = Span(
            id=self._next_id,
            parent=self._stack[-1].id if self._stack else None,
            name=name,
            start=now - max(0.0, duration_s),
            end=now,
            status=status,
            attrs=dict(attrs),
        )
        self._next_id += 1
        self._write(span)
        return span

    def _write(self, span: Span) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w", encoding="utf-8")
            header = {
                "schema": OPS_SCHEMA,
                "kind": "header",
                "created": self._clock(),
            }
            self._handle.write(
                json.dumps(header, sort_keys=True) + "\n"
            )
        self._handle.write(
            json.dumps(span.to_dict(), sort_keys=True) + "\n"
        )
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the log file (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "OpsLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class _NullOps(OpsLog):
    """The disabled twin: every emission is a no-op."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - trivial
        self.path = Path(os.devnull)
        self._handle = None
        self._next_id = 1
        self._stack = []

    @contextmanager
    def span(self, name: str, **attrs) -> Iterator[Span]:
        yield Span(id=0, parent=None, name=name, start=0.0)

    def record(self, name, duration_s=0.0, status="ok", **attrs):
        return Span(id=0, parent=None, name=name, start=0.0)

    def _write(self, span: Span) -> None:  # pragma: no cover
        pass


#: The ops log used when telemetry is off: every call is a no-op.
NULL_OPS = _NullOps()


def load_ops(path: str | Path) -> list[Span]:
    """Read and validate an ops log written by :class:`OpsLog`.

    Record kinds other than ``span`` (after the header) are skipped,
    so minor additive record types never break old readers — exactly
    the optional-field policy of the other ``repro.*`` schemas.

    Raises:
        OpsError: unreadable file, malformed JSON, missing/unknown
            header schema, or a structurally invalid span record.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise OpsError(f"cannot read ops log {path}: {exc}") from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise OpsError(f"ops log {path} is empty")
    records = []
    for number, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise OpsError(
                f"ops log {path} line {number} is not valid JSON: "
                f"{exc}"
            ) from exc
    header = records[0]
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise OpsError(
            f"ops log {path} does not start with a header record"
        )
    schema = header.get("schema")
    if schema != OPS_SCHEMA:
        raise OpsError(
            f"ops log {path} schema {schema!r} is not {OPS_SCHEMA!r}"
        )
    spans = []
    for record in records[1:]:
        if isinstance(record, dict) and record.get("kind") != "span":
            continue
        spans.append(span_from_dict(record))
    return spans


class ShardHeartbeat:
    """One shard's atomically-rewritten liveness + progress file.

    The executor drives it like the progress reporter: :meth:`begin`
    with the shard's run count, :meth:`update` once per settled run,
    :meth:`finish` with a terminal state.  Every write is a whole new
    document moved into place with ``os.replace``, so concurrent
    readers (``repro sweep status --watch``) never see a torn file.

    Args:
        path: heartbeat file (see :func:`heartbeat_path`).
        shard: this shard's index in its plan.
        shards: total shards in the plan.
        interval: minimum seconds between rewrites; updates arriving
            faster are folded into the next one (begin, finish, and
            the final run always write).
        clock: epoch-seconds time source (tests inject a fake one).
    """

    enabled = True

    def __init__(
        self,
        path: str | Path,
        shard: int,
        shards: int,
        interval: float = 1.0,
        clock=time.time,
    ) -> None:
        self.path = Path(path)
        self.shard = shard
        self.shards = shards
        self.interval = interval
        self._clock = clock
        self._started: float | None = None
        self._last_write: float | None = None
        self._last_commit: float | None = None
        self._total = 0
        self._done = 0
        self._computed = 0
        self._cached = 0
        self._failed = 0

    def begin(self, total: int) -> None:
        """Start the shard: zero the counters, write immediately."""
        self._started = self._clock()
        self._last_write = None
        self._last_commit = None
        self._total = total
        self._done = 0
        self._computed = 0
        self._cached = 0
        self._failed = 0
        self._write("running", force=True)

    def update(self, outcome) -> None:
        """Record one settled run (any object with ``ok``/``cached``)."""
        if self._started is None:
            return
        self._done += 1
        if not outcome.ok:
            self._failed += 1
        elif outcome.cached:
            self._cached += 1
        else:
            self._computed += 1
            self._last_commit = self._clock()
        self._write("running", force=self._done >= self._total)

    def finish(self, state: str = "done") -> None:
        """Write the terminal heartbeat (``done`` or ``failed``).

        A shard that settled every run but saw failures terminates
        as ``failed`` even when asked for ``done``: the store holds
        only the successful runs, so the shard is not finished work.
        """
        if self._started is None:
            return
        if state == "done" and self._failed:
            state = "failed"
        self._write(state, force=True)

    def _write(self, state: str, force: bool = False) -> None:
        now = self._clock()
        if (
            not force
            and self._last_write is not None
            and now - self._last_write < self.interval
        ):
            return
        elapsed = max(0.0, now - (self._started or now))
        rate = self._done / elapsed if elapsed > 0 else None
        in_flight = max(0, self._total - self._done)
        eta = in_flight / rate if rate else None
        payload = {
            "schema": OPS_SCHEMA,
            "kind": "heartbeat",
            "shard": self.shard,
            "shards": self.shards,
            "pid": os.getpid(),
            "state": state,
            "started": self._started,
            "updated": now,
            "runs_total": self._total,
            "runs_done": self._done,
            "runs_computed": self._computed,
            "runs_cached": self._cached,
            "runs_failed": self._failed,
            "in_flight": in_flight,
            "last_commit": self._last_commit,
            "rate_runs_per_s": rate,
            "eta_s": eta,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(
            f"{self.path.name}.tmp.{os.getpid()}"
        )
        tmp.write_text(
            json.dumps(payload, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        os.replace(tmp, self.path)
        self._last_write = now


class _NullHeartbeat(ShardHeartbeat):
    """The disabled twin: never touches the filesystem."""

    enabled = False

    def __init__(self) -> None:  # noqa: D107 - trivial
        self.path = Path(os.devnull)
        self.shard = -1
        self.shards = 0
        self.interval = 0.0
        self._started = None

    def begin(self, total: int) -> None:
        pass

    def update(self, outcome) -> None:
        pass

    def finish(self, state: str = "done") -> None:
        pass


#: The heartbeat used when telemetry is off: every call is a no-op.
NULL_HEARTBEAT = _NullHeartbeat()


def read_heartbeat(path: str | Path) -> dict:
    """Read and validate one heartbeat file.

    Raises:
        OpsError: unreadable file, malformed JSON, or schema drift.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise OpsError(
            f"cannot read heartbeat {path}: {exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise OpsError(
            f"heartbeat {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise OpsError(f"heartbeat {path} is not a JSON object")
    schema = payload.get("schema")
    if schema != OPS_SCHEMA:
        raise OpsError(
            f"heartbeat {path} schema {schema!r} is not "
            f"{OPS_SCHEMA!r}"
        )
    if payload.get("kind") != "heartbeat":
        raise OpsError(f"heartbeat {path} has kind "
                       f"{payload.get('kind')!r}, not 'heartbeat'")
    shard = payload.get("shard")
    if not isinstance(shard, int) or shard < 0:
        raise OpsError(f"heartbeat {path} has invalid shard {shard!r}")
    return payload


def find_heartbeats(
    store_roots: Iterable[str | Path],
) -> list[dict]:
    """Every shard heartbeat under the given store directories.

    Later stores win when two carry the same shard (the fleet view
    takes the freshest file per shard anyway).
    """
    payloads: list[dict] = []
    for root in store_roots:
        directory = ops_root(root)
        if not directory.is_dir():
            continue
        for path in sorted(
            directory.glob("shard-*.heartbeat.json")
        ):
            payloads.append(read_heartbeat(path))
    return payloads


class ShardStatus:
    """One shard's row in the fleet view (plain attributes).

    Attributes mirror the heartbeat counters, joined with the plan:
    ``planned`` comes from the plan's shard partition, everything
    else from the freshest heartbeat.  ``state`` is one of
    ``missing`` (no heartbeat yet), ``running``, ``done``,
    ``failed``, or ``dead`` (heartbeat stale while claiming to run);
    ``straggler`` marks a running shard whose rate fell below the
    fleet-median fraction.
    """

    __slots__ = (
        "shard",
        "planned",
        "done",
        "computed",
        "cached",
        "failed",
        "in_flight",
        "rate",
        "eta_s",
        "age_s",
        "state",
        "straggler",
        "note",
    )

    def __init__(self, shard: int, planned: int) -> None:
        self.shard = shard
        self.planned = planned
        self.done = 0
        self.computed = 0
        self.cached = 0
        self.failed = 0
        self.in_flight = 0
        self.rate: float | None = None
        self.eta_s: float | None = None
        self.age_s: float | None = None
        self.state = "missing"
        self.straggler = False
        self.note = ""


def fleet_status(
    plan: dict,
    heartbeats: Sequence[dict],
    now: float,
    stale_after: float = DEFAULT_STALE_AFTER_S,
    straggler_below: float = DEFAULT_STRAGGLER_BELOW,
) -> list[ShardStatus]:
    """Join a plan with shard heartbeats into per-shard statuses.

    Args:
        plan: a validated ``repro.sweep/1`` plan document.
        heartbeats: heartbeat payloads (see :func:`find_heartbeats`);
            the freshest per shard wins.
        now: the caller's wall clock (injected so tests — and the
            ``--watch`` loop — control staleness deterministically).
        stale_after: seconds after which a ``running`` heartbeat
            marks its shard dead.
        straggler_below: fraction of the median running rate below
            which a live shard is flagged a straggler.
    """
    shards = plan["shards"]
    planned = [0] * shards
    for run in plan["runs"]:
        planned[run["shard"]] += 1
    freshest: dict[int, dict] = {}
    for payload in heartbeats:
        shard = payload["shard"]
        if not 0 <= shard < shards:
            continue
        held = freshest.get(shard)
        if held is None or (
            payload.get("updated", 0) > held.get("updated", 0)
        ):
            freshest[shard] = payload
    statuses = [
        ShardStatus(shard, planned[shard]) for shard in range(shards)
    ]
    for status in statuses:
        payload = freshest.get(status.shard)
        if payload is None:
            status.note = "no heartbeat"
            continue
        status.done = int(payload.get("runs_done", 0))
        status.computed = int(payload.get("runs_computed", 0))
        status.cached = int(payload.get("runs_cached", 0))
        status.failed = int(payload.get("runs_failed", 0))
        status.in_flight = int(payload.get("in_flight", 0))
        rate = payload.get("rate_runs_per_s")
        status.rate = float(rate) if rate is not None else None
        eta = payload.get("eta_s")
        status.eta_s = float(eta) if eta is not None else None
        status.age_s = max(0.0, now - payload.get("updated", now))
        state = payload.get("state", "running")
        if state in ("done", "failed"):
            status.state = state
        elif status.age_s > stale_after:
            status.state = "dead"
            status.note = (
                f"heartbeat {status.age_s:.0f}s stale"
            )
        else:
            status.state = "running"
    running = [
        s.rate
        for s in statuses
        if s.state == "running" and s.rate
    ]
    if len(running) >= 2:
        fleet_median = median(running)
        for status in statuses:
            if (
                status.state == "running"
                and status.rate is not None
                and fleet_median > 0
                and status.rate < straggler_below * fleet_median
            ):
                status.straggler = True
                status.note = (
                    f"{status.rate:.2f} runs/s vs fleet median "
                    f"{fleet_median:.2f}"
                )
    return statuses


def _bar(done: int, total: int, width: int = 20) -> str:
    if total <= 0:
        return "·" * width
    filled = int(round(width * min(done, total) / total))
    return "#" * filled + "·" * (width - filled)


def render_fleet(
    plan: dict, statuses: Sequence[ShardStatus]
) -> str:
    """The fleet view ``repro sweep status`` prints."""
    total_planned = sum(s.planned for s in statuses)
    total_done = sum(s.done for s in statuses)
    header = (
        f"sweep fleet: figure {plan['figure']}"
        f"{' (quick)' if plan.get('quick') else ''} — "
        f"{len(statuses)} shard(s), "
        f"{total_done}/{total_planned} runs done"
    )
    lines = [header]
    for status in statuses:
        bar = _bar(status.done, status.planned)
        detail = (
            f"{status.computed} computed, {status.cached} cached"
        )
        if status.failed:
            detail += f", {status.failed} FAILED"
        if status.state == "running":
            rate = (
                f"{status.rate:.2f} runs/s"
                if status.rate is not None
                else "rate ?"
            )
            eta = (
                f"ETA {status.eta_s:.0f}s"
                if status.eta_s is not None
                else "ETA ?"
            )
            tail = f"{rate}  {eta}  running"
            if status.straggler:
                tail += f"  STRAGGLER ({status.note})"
        elif status.state == "dead":
            tail = f"DEAD ({status.note})"
        elif status.state == "missing":
            tail = "missing (no heartbeat)"
        elif status.state == "failed":
            tail = "FAILED"
        else:
            tail = "done"
        lines.append(
            f"shard {status.shard}  [{bar}]  "
            f"{status.done}/{status.planned} runs  "
            f"{detail}  {tail}"
        )
    return "\n".join(lines)
