"""Exporters: JSONL traces, CSV timeseries, human-readable run reports.

Three consumers, three formats:

* **JSONL** — one event per line, for tooling (``jq``, pandas) and for
  the ``repro trace`` CLI.  Round-trips losslessly: loading a dump
  yields events equal to the originals.
* **CSV** — every registry timeseries flattened to
  ``metric,time,value`` rows.
* **Run report** — what a human reads after a run: per-peer
  stall/startup summaries derived *from the trace alone* (so they can
  be cross-checked against :class:`~repro.p2p.swarm.SwarmResult`),
  event counts by category, metric totals, and the engine profile.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import IO, Iterable, TextIO

from ..errors import TraceError
from .context import Observability
from .events import TraceEvent, event_from_dict
from .metrics import MetricsRegistry

# -- JSONL -------------------------------------------------------------


def dump_jsonl(
    events: Iterable[TraceEvent], destination: str | TextIO
) -> int:
    """Write events as JSON Lines; returns the number written.

    Args:
        destination: a path or an open text file.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            return dump_jsonl(events, handle)
    count = 0
    for event in events:
        destination.write(json.dumps(event.to_dict(), sort_keys=True))
        destination.write("\n")
        count += 1
    return count


def load_jsonl(source: str | IO[str]) -> list[TraceEvent]:
    """Parse a JSONL trace back into typed events.

    Raises:
        TraceError: when the file is missing, a line is not valid
            JSON, or a record does not match any known event type.
    """
    if isinstance(source, str):
        try:
            handle: IO[str] = open(source, "r", encoding="utf-8")
        except OSError as exc:
            raise TraceError(f"cannot read trace {source!r}: {exc}") from exc
        with handle:
            return load_jsonl(handle)
    events: list[TraceEvent] = []
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceError(
                f"corrupt trace: line {lineno} is not JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise TraceError(
                f"corrupt trace: line {lineno} is not an object"
            )
        events.append(event_from_dict(payload))
    return events


def events_to_jsonl(events: Iterable[TraceEvent]) -> str:
    """The JSONL text for ``events`` (convenience for tests/examples)."""
    buffer = io.StringIO()
    dump_jsonl(events, buffer)
    return buffer.getvalue()


# -- JSON documents ----------------------------------------------------


def dump_json(payload: dict, destination: str | TextIO) -> None:
    """Write one JSON document (sorted keys, indented, trailing \\n).

    The one encoder every machine-readable artifact goes through —
    benchmark artifacts, run manifests — so diffs of committed
    artifacts stay minimal and stable.
    """
    if isinstance(destination, str):
        with open(destination, "w", encoding="utf-8") as handle:
            dump_json(payload, handle)
        return
    json.dump(payload, destination, indent=2, sort_keys=True)
    destination.write("\n")


# -- CSV ---------------------------------------------------------------


def timeseries_csv(registry: MetricsRegistry) -> str:
    """Flatten every registry timeseries to ``metric,time,value`` CSV."""
    lines = ["metric,time,value"]
    for name in sorted(registry.all_timeseries()):
        for time, value in registry.timeseries(name).samples:
            lines.append(f"{name},{time!r},{value!r}")
    return "\n".join(lines) + "\n"


# -- trace summarisation ----------------------------------------------


@dataclass(frozen=True, slots=True)
class PeerTraceSummary:
    """One peer's session, reconstructed purely from trace events.

    Matches :class:`~repro.player.metrics.StreamingMetrics` field for
    field when the trace is complete — the cross-check the integration
    tests enforce.

    Attributes:
        peer: the peer's name.
        joined: sim time the peer joined (None if never seen joining).
        startup_time: join-to-first-frame seconds (None = never
            started).
        stall_count: completed stalls (paired start/end events).
        total_stall_duration: summed stall seconds.
        finished: whether playback reached the end.
        departed: whether the peer churned out.
    """

    peer: str
    joined: float | None
    startup_time: float | None
    stall_count: int
    total_stall_duration: float
    finished: bool
    departed: bool


def summarize_trace(
    events: Iterable[TraceEvent],
) -> dict[str, PeerTraceSummary]:
    """Reduce a trace to per-peer session summaries.

    Stalls are counted only when both ``StallStarted`` and the matching
    ``StallEnded`` appear (an unpaired start means the run's safety cap
    cut the session short — exactly the convention of
    :class:`~repro.player.metrics.StreamingMetrics`, which records a
    stall only once it has ended).

    Raises:
        TraceError: when a ``StallEnded`` appears with no matching
            ``StallStarted``.
    """
    joined: dict[str, float] = {}
    startup: dict[str, float] = {}
    open_stalls: dict[str, tuple[float, int]] = {}
    stall_counts: dict[str, int] = {}
    stall_durations: dict[str, float] = {}
    finished: set[str] = set()
    departed: set[str] = set()
    peers: set[str] = set()

    for event in events:
        name = event.name
        peer = getattr(event, "peer", None)
        if peer is None:
            continue
        peers.add(peer)
        if name == "PeerJoined":
            joined.setdefault(peer, event.time)
        elif name == "PeerDeparted":
            departed.add(peer)
        elif name == "PlaybackStarted":
            startup.setdefault(peer, event.startup_time)
        elif name == "StallStarted":
            open_stalls[peer] = (event.time, event.segment)
        elif name == "StallEnded":
            opened = open_stalls.pop(peer, None)
            if opened is None:
                raise TraceError(
                    f"StallEnded for {peer!r} at t={event.time} has no "
                    "matching StallStarted"
                )
            stall_counts[peer] = stall_counts.get(peer, 0) + 1
            stall_durations[peer] = (
                stall_durations.get(peer, 0.0) + event.duration
            )
        elif name == "PlaybackFinished":
            finished.add(peer)

    return {
        peer: PeerTraceSummary(
            peer=peer,
            joined=joined.get(peer),
            startup_time=startup.get(peer),
            stall_count=stall_counts.get(peer, 0),
            total_stall_duration=stall_durations.get(peer, 0.0),
            finished=peer in finished,
            departed=peer in departed,
        )
        for peer in sorted(peers)
    }


def render_trace_summary(
    summaries: dict[str, PeerTraceSummary]
) -> str:
    """The per-peer table ``repro trace`` prints."""
    lines = [
        f"{'peer':<10s} {'joined':>8s} {'startup':>8s} {'stalls':>7s} "
        f"{'stall s':>8s} {'outcome':>9s}"
    ]
    for peer in sorted(summaries):
        summary = summaries[peer]
        joined = (
            f"{summary.joined:8.1f}" if summary.joined is not None
            else f"{'-':>8s}"
        )
        startup = (
            f"{summary.startup_time:8.2f}"
            if summary.startup_time is not None
            else f"{'-':>8s}"
        )
        if summary.departed:
            outcome = "departed"
        elif summary.finished:
            outcome = "finished"
        elif summary.startup_time is not None:
            outcome = "cut off"
        else:
            outcome = "waiting"
        lines.append(
            f"{peer:<10s} {joined} {startup} {summary.stall_count:>7d} "
            f"{summary.total_stall_duration:>8.1f} {outcome:>9s}"
        )
    return "\n".join(lines)


def event_counts(
    events: Iterable[TraceEvent],
) -> dict[str, dict[str, int]]:
    """``category -> event name -> count`` over a trace."""
    counts: dict[str, dict[str, int]] = {}
    for event in events:
        bucket = counts.setdefault(event.category, {})
        bucket[event.name] = bucket.get(event.name, 0) + 1
    return counts


# -- the run report ----------------------------------------------------


def render_run_report(obs: Observability) -> str:
    """Everything a run recorded, as one readable document."""
    parts: list[str] = ["# Run report"]
    events = obs.events()
    if events:
        parts += [
            "",
            "## Per-peer sessions (from trace)",
            "",
            render_trace_summary(summarize_trace(events)),
            "",
            "## Events by category",
            "",
        ]
        for category, names in sorted(event_counts(events).items()):
            total = sum(names.values())
            detail = ", ".join(
                f"{name} x{count}" for name, count in sorted(names.items())
            )
            parts.append(f"- {category} ({total}): {detail}")
    registry = obs.registry
    counters = registry.counters()
    if counters:
        parts += ["", "## Counters", ""]
        for name in sorted(counters):
            parts.append(f"- {name} = {counters[name].value:g}")
    gauges = registry.gauges()
    if gauges:
        parts += ["", "## Gauges", ""]
        for name in sorted(gauges):
            parts.append(f"- {name} = {gauges[name].value:g}")
    histograms = registry.histograms()
    if histograms:
        parts += ["", "## Time-weighted histograms", ""]
        for name in sorted(histograms):
            histogram = histograms[name]
            try:
                summary = histogram.summary()
            except TraceError:
                continue
            parts.append(
                f"- {name}: mean={summary.mean:.2f} "
                f"min={summary.minimum:g} max={summary.maximum:g} "
                f"over {summary.total_weight:.1f}s"
            )
    if obs.profile is not None and obs.profile.counts:
        parts += ["", "## Engine profile", "", obs.profile.render()]
    return "\n".join(parts) + "\n"
