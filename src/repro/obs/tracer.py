"""Structured event tracing with a zero-cost disabled path.

Instrumentation sites throughout the stack follow one pattern::

    if tracer.enabled:
        tracer.emit(StallStarted(time=sim.now, peer=name, segment=nxt))

so the disabled case — the default everywhere — costs a single
attribute check: no event object is built, no call is made.
:data:`NULL_TRACER` is the shared disabled singleton.

The enabled tracer keeps events in a bounded ring buffer (old events
fall off the front once ``capacity`` is reached, like a flight
recorder) and can filter by category and by minimum severity before
storing anything.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator

from ..errors import TraceError
from .events import TraceEvent, severity_rank


class NullTracer:
    """The disabled tracer: never records, never allocates.

    ``enabled`` is a class attribute so the hot-path check compiles to
    one attribute load; :meth:`emit` exists only for callers that
    (incorrectly) skip the check.
    """

    enabled: bool = False

    def emit(self, event: TraceEvent) -> None:
        """Discard the event."""

    def events(self) -> list[TraceEvent]:
        """Always empty."""
        return []

    def __len__(self) -> int:
        return 0


#: Shared disabled tracer — the default for every component.
NULL_TRACER = NullTracer()


class EventTracer:
    """Ring-buffer tracer with category/severity filtering.

    Args:
        capacity: maximum events retained; older events are dropped
            first (``None`` keeps everything).
        categories: only record events whose ``category`` is in this
            set (``None`` records all categories).
        min_severity: drop events below this severity (default
            ``"debug"`` records everything).
    """

    enabled: bool = True

    def __init__(
        self,
        capacity: int | None = 100_000,
        categories: Iterable[str] | None = None,
        min_severity: str = "debug",
    ) -> None:
        if capacity is not None and capacity < 1:
            raise TraceError(
                f"capacity must be >= 1 or None, got {capacity}"
            )
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self._categories = (
            frozenset(categories) if categories is not None else None
        )
        self._min_rank = severity_rank(min_severity)
        self.dropped = 0  # filtered out (not ring-buffer evictions)
        self.evicted = 0  # pushed off the front of a full ring buffer

    @property
    def capacity(self) -> int | None:
        """The ring buffer's size bound (``None`` = unbounded)."""
        return self._buffer.maxlen

    def emit(self, event: TraceEvent) -> None:
        """Record ``event`` if it passes the filters."""
        if (
            self._categories is not None
            and event.category not in self._categories
        ):
            self.dropped += 1
            return
        if severity_rank(event.severity) < self._min_rank:
            self.dropped += 1
            return
        if (
            self._buffer.maxlen is not None
            and len(self._buffer) == self._buffer.maxlen
        ):
            self.evicted += 1
        self._buffer.append(event)

    def events(self) -> list[TraceEvent]:
        """The retained events, oldest first."""
        return list(self._buffer)

    def clear(self) -> None:
        """Forget every retained event."""
        self._buffer.clear()
        self.dropped = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._buffer)


#: Either flavour, for annotations.
Tracer = NullTracer | EventTracer
