"""The trace-event taxonomy.

Every observable thing that happens during a simulated streaming
session is a frozen dataclass keyed on **simulator time** — never wall
clock — so traces from different machines are byte-identical for the
same seed.  Each event type declares a ``category`` (which layer of the
stack emitted it) and a ``severity``; tracers filter on both.

The taxonomy mirrors the stack:

========  =====================================================
category  events
========  =====================================================
engine    SimulationStarted, SimulationCompleted
tcp       TransferStarted, FlowRateChanged, TransferCompleted,
          TransferCancelled
swarm     PeerJoined, PeerDeparted
leecher   ManifestReceived, SegmentRequested, PieceReceived,
          RequestTimedOut, PoolResized, SelectionMade
player    PlaybackStarted, StallStarted, StallEnded,
          PlaybackFinished
========  =====================================================

Events round-trip losslessly through JSON (:mod:`repro.obs.export`);
:func:`event_type` resolves a class back from its name.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, ClassVar

from ..errors import TraceError

#: Severity levels, least to most severe.
SEVERITIES: tuple[str, ...] = ("debug", "info", "warning", "error")

#: name -> event class, populated as subclasses are defined.
EVENT_TYPES: dict[str, type["TraceEvent"]] = {}


def severity_rank(severity: str) -> int:
    """Position of ``severity`` in :data:`SEVERITIES` (for filtering).

    Raises:
        TraceError: on an unknown severity name.
    """
    try:
        return SEVERITIES.index(severity)
    except ValueError:
        raise TraceError(
            f"unknown severity {severity!r}; expected one of {SEVERITIES}"
        ) from None


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """Base class: one timestamped occurrence in the simulation.

    Attributes:
        time: simulated seconds since the run began.
    """

    time: float

    category: ClassVar[str] = "core"
    severity: ClassVar[str] = "info"

    def __init_subclass__(cls, **kwargs: Any) -> None:
        # No zero-arg super(): @dataclass(slots=True) recreates each
        # subclass, which breaks the implicit __class__ cell.
        EVENT_TYPES[cls.__name__] = cls

    @property
    def name(self) -> str:
        """The event's type name (what JSONL records)."""
        return type(self).__name__

    def to_dict(self) -> dict[str, Any]:
        """Flatten to a JSON-ready dict (type + category + fields)."""
        payload: dict[str, Any] = {
            "event": self.name,
            "category": self.category,
            "severity": self.severity,
        }
        payload.update(dataclasses.asdict(self))
        return payload


def event_type(name: str) -> type[TraceEvent]:
    """Look an event class up by name.

    Raises:
        TraceError: if no such event type exists.
    """
    try:
        return EVENT_TYPES[name]
    except KeyError:
        raise TraceError(f"unknown trace event type {name!r}") from None


def event_from_dict(payload: dict[str, Any]) -> TraceEvent:
    """Rebuild a typed event from :meth:`TraceEvent.to_dict` output.

    Raises:
        TraceError: on missing keys or mismatched fields.
    """
    try:
        cls = event_type(payload["event"])
    except KeyError:
        raise TraceError("trace record has no 'event' key") from None
    fields = {
        key: value
        for key, value in payload.items()
        if key not in ("event", "category", "severity")
    }
    try:
        event = cls(**fields)
    except TypeError as exc:
        raise TraceError(
            f"trace record for {cls.__name__} has wrong fields: {exc}"
        ) from exc
    # Tuples become lists through JSON; normalise them back.
    return event


# -- engine ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class SimulationStarted(TraceEvent):
    """The event loop began processing (one per ``Simulator.run``).

    Attributes:
        pending: events queued when the run began.
    """

    pending: int

    category: ClassVar[str] = "engine"


@dataclass(frozen=True, slots=True)
class SimulationCompleted(TraceEvent):
    """The event loop drained (or hit its horizon).

    Attributes:
        events_fired: callbacks executed during this run.
        wall_seconds: host wall-clock seconds the run took.  The only
            non-deterministic field in the taxonomy; simulated results
            are never derived from it.
    """

    events_fired: int
    wall_seconds: float

    category: ClassVar[str] = "engine"


# -- tcp ---------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TransferStarted(TraceEvent):
    """A TCP transfer finished its handshake and began moving data.

    Attributes:
        label: caller-assigned transfer label (``src->dst#segment``).
        size: wire bytes to move.
        rtt: the path round-trip time, seconds.
        loss_rate: the path's end-to-end loss probability.
    """

    label: str
    size: float
    rtt: float
    loss_rate: float

    category: ClassVar[str] = "tcp"


@dataclass(frozen=True, slots=True)
class FlowRateChanged(TraceEvent):
    """A transfer's congestion-window rate cap moved (slow start etc.).

    Attributes:
        label: transfer label.
        rate: the new window-implied cap, bytes/second (0.0 when the
            window outgrew the path and only the loss ceiling remains).
    """

    label: str
    rate: float

    category: ClassVar[str] = "tcp"
    severity: ClassVar[str] = "debug"


@dataclass(frozen=True, slots=True)
class TransferCompleted(TraceEvent):
    """The last byte of a transfer arrived.

    Attributes:
        label: transfer label.
        size: wire bytes moved.
        duration: open-to-last-byte seconds.
    """

    label: str
    size: float
    duration: float

    category: ClassVar[str] = "tcp"


@dataclass(frozen=True, slots=True)
class TransferCancelled(TraceEvent):
    """A transfer was aborted before completion.

    Attributes:
        label: transfer label.
        transferred: bytes that had already arrived.
    """

    label: str
    transferred: float

    category: ClassVar[str] = "tcp"
    severity: ClassVar[str] = "warning"


# -- swarm -------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PeerJoined(TraceEvent):
    """A peer joined the swarm.

    Attributes:
        peer: the peer's name.
    """

    peer: str

    category: ClassVar[str] = "swarm"


@dataclass(frozen=True, slots=True)
class PeerDeparted(TraceEvent):
    """A peer left (churn or session end).

    Attributes:
        peer: the peer's name.
        downloads_cancelled: in-flight downloads it abandoned.
    """

    peer: str
    downloads_cancelled: int

    category: ClassVar[str] = "swarm"
    severity: ClassVar[str] = "warning"


# -- leecher -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class ManifestReceived(TraceEvent):
    """A leecher learned the segment layout and swarm membership.

    Attributes:
        peer: the leecher.
        segments: number of segments in the video.
        known_peers: peers listed in the manifest.
    """

    peer: str
    segments: int
    known_peers: int

    category: ClassVar[str] = "leecher"


@dataclass(frozen=True, slots=True)
class SegmentRequested(TraceEvent):
    """A leecher asked a holder for one segment.

    Attributes:
        peer: the requesting leecher.
        segment: segment index.
        source: whom it asked.
        urgent: whether the request was playback-critical.
        expected_size: the segment's manifest size in bytes — the ``W``
            of Eq. 1, recorded so stall attribution never has to join
            against the splice table (-1.0 in pre-enrichment traces).
    """

    peer: str
    segment: int
    source: str
    urgent: bool
    expected_size: float = -1.0

    category: ClassVar[str] = "leecher"


@dataclass(frozen=True, slots=True)
class PieceReceived(TraceEvent):
    """A requested segment fully arrived.

    Attributes:
        peer: the receiving leecher.
        segment: segment index.
        source: who served it.
        size: payload bytes.
        wait: request-to-arrival seconds (-1.0 when unrequested, e.g.
            a duplicate landing after a timeout re-request).
    """

    peer: str
    segment: int
    source: str
    size: float
    wait: float

    category: ClassVar[str] = "leecher"


@dataclass(frozen=True, slots=True)
class RequestTimedOut(TraceEvent):
    """A request sat unanswered and was re-issued elsewhere.

    Attributes:
        peer: the leecher.
        segment: segment index.
        source: the source that went silent.
        retry_source: the replacement holder.
    """

    peer: str
    segment: int
    source: str
    retry_source: str

    category: ClassVar[str] = "leecher"
    severity: ClassVar[str] = "warning"


@dataclass(frozen=True, slots=True)
class PoolResized(TraceEvent):
    """Eq. 1 (or the fixed policy) changed the download-pool size.

    Attributes:
        peer: the leecher.
        size: the new pool size ``k``.
        buffered_playtime: Eq. 1's ``T`` at decision time, seconds.
        bandwidth: Eq. 1's ``B`` at decision time, bytes/second.
    """

    peer: str
    size: int
    buffered_playtime: float
    bandwidth: float

    category: ClassVar[str] = "leecher"


@dataclass(frozen=True, slots=True)
class SelectionMade(TraceEvent):
    """The piece selector ordered the candidate segments.

    Attributes:
        peer: the leecher.
        selector: the selector's name.
        head: the first few indices of the chosen order.
        candidates: how many segments were orderable.
    """

    peer: str
    selector: str
    head: tuple[int, ...]
    candidates: int

    category: ClassVar[str] = "leecher"
    severity: ClassVar[str] = "debug"

    def __post_init__(self) -> None:
        # JSON round-trips tuples as lists; normalise on construction.
        object.__setattr__(self, "head", tuple(self.head))


# -- player ------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PlaybackStarted(TraceEvent):
    """First frame played.

    Attributes:
        peer: the watching peer.
        startup_time: join-to-first-frame seconds (Fig. 4's metric).
    """

    peer: str
    startup_time: float

    category: ClassVar[str] = "player"


@dataclass(frozen=True, slots=True)
class StallStarted(TraceEvent):
    """The playhead reached a gap; playback froze.

    Attributes:
        peer: the stalling peer.
        segment: the missing segment blocking playback.
        expected_size: the blocking segment's manifest size in bytes
            (-1.0 when unknown, e.g. in pre-enrichment traces).
    """

    peer: str
    segment: int
    expected_size: float = -1.0

    category: ClassVar[str] = "player"
    severity: ClassVar[str] = "warning"


@dataclass(frozen=True, slots=True)
class StallEnded(TraceEvent):
    """The missing segment landed; playback resumed.

    Attributes:
        peer: the peer that resumed.
        segment: the segment whose arrival unblocked playback.
        duration: stall length in seconds.
        expected_size: the unblocking segment's manifest size in bytes
            (-1.0 when unknown, e.g. in pre-enrichment traces).
    """

    peer: str
    segment: int
    duration: float
    expected_size: float = -1.0

    category: ClassVar[str] = "player"
    severity: ClassVar[str] = "warning"


@dataclass(frozen=True, slots=True)
class PlaybackFinished(TraceEvent):
    """The video played to the end.

    Attributes:
        peer: the finishing peer.
        stalls: stalls suffered along the way.
        total_stall_duration: summed stall seconds.
    """

    peer: str
    stalls: int
    total_stall_duration: float

    category: ClassVar[str] = "player"
