"""Run manifests: the environment block every perf artifact embeds.

A benchmark number without its provenance is noise: 1,900 events/sec
on a throttled 1-core container and on a 32-core workstation are
different facts.  This module captures the provenance once —
interpreter, platform, CPU budget, git revision + dirty flag — in a
plain-dict form that is cheap to JSON-encode, so

* every ``BENCH_<suite>.json`` artifact embeds it (see
  :mod:`repro.obs.bench`),
* ``repro compare`` can warn when two artifacts came from different
  environments,
* ``repro --version`` prints it, making pasted reports
  self-describing, and
* ``reproduce --manifest PATH`` records it next to a figure run.

Everything here degrades gracefully: outside a git checkout the git
block is ``None``, on platforms without an affinity mask the usable
core count falls back to ``cpu_count``, and nothing raises.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from pathlib import Path

#: Version tag of the benchmark-artifact schema.  Bump the integer on
#: any backwards-incompatible change to the artifact layout; readers
#: reject artifacts whose tag they do not understand (see
#: ``docs/OBSERVABILITY.md`` for the policy).
ARTIFACT_SCHEMA = "repro.bench/1"

#: Version tag of the run-manifest schema (``reproduce --manifest``).
MANIFEST_SCHEMA = "repro.manifest/1"

_GIT_TIMEOUT_S = 5.0


def usable_cores() -> int:
    """Cores this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def numpy_version() -> str | None:
    """The numpy version in use, or ``None`` when unavailable.

    numpy is a runtime dependency of the cohort/fluid swarm tiers
    (see ``docs/SCALING.md``), so perf numbers depend on which build
    ran; the import is gated so environments without it (exact-tier
    only) still produce manifests.
    """
    try:
        import numpy
    except Exception:  # noqa: BLE001 - any broken install counts as absent
        return None
    version = getattr(numpy, "__version__", None)
    return str(version) if version is not None else None


def environment_block() -> dict:
    """The interpreter/platform/CPU facts a perf number depends on."""
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 1,
        "usable_cores": usable_cores(),
        "numpy": numpy_version(),
    }


def _git(root: Path, *argv: str) -> str | None:
    try:
        proc = subprocess.run(
            ["git", "-C", str(root), *argv],
            capture_output=True,
            text=True,
            timeout=_GIT_TIMEOUT_S,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    return proc.stdout


def git_info(root: str | Path | None = None) -> dict | None:
    """``{"sha": ..., "dirty": ...}`` for the checkout holding ``root``.

    Defaults to the directory of this source file, so artifacts
    describe the revision of the *code that ran*, not whatever
    directory the process happened to be started from.  Returns
    ``None`` when git is unavailable or ``root`` is not inside a work
    tree (e.g. an installed wheel).
    """
    base = Path(root) if root is not None else Path(__file__).parent
    sha = _git(base, "rev-parse", "HEAD")
    if sha is None:
        return None
    status = _git(base, "status", "--porcelain")
    return {
        "sha": sha.strip(),
        "dirty": bool(status.strip()) if status is not None else False,
    }


def build_manifest() -> dict:
    """The provenance block embedded in every benchmark artifact."""
    return {
        "env": environment_block(),
        "git": git_info(),
    }


def utc_timestamp() -> str:
    """Wall-clock creation stamp for artifacts (ISO-8601, UTC)."""
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def run_manifest(command: str, **extra) -> dict:
    """A self-describing record of one CLI invocation.

    Args:
        command: the command line being described (free text).
        extra: additional JSON-compatible facts (config digests,
            executor stats, elapsed seconds ...) stored verbatim.
    """
    payload = {
        "schema": MANIFEST_SCHEMA,
        "created": utc_timestamp(),
        "command": command,
        **build_manifest(),
    }
    payload.update(extra)
    return payload


def render_environment(manifest: dict | None = None) -> str:
    """The environment block as the lines ``repro --version`` prints."""
    manifest = manifest if manifest is not None else build_manifest()
    env = manifest.get("env", {})
    lines = [
        f"python {env.get('python', '?')} "
        f"({env.get('implementation', '?')}) on "
        f"{env.get('platform', '?')}",
        f"cpus {env.get('usable_cores', '?')} usable "
        f"of {env.get('cpu_count', '?')}",
        f"numpy {env.get('numpy') or 'absent'}",
    ]
    git = manifest.get("git")
    if git is not None:
        state = "dirty" if git.get("dirty") else "clean"
        lines.append(f"git {git.get('sha', '?')[:12]} ({state})")
    return "\n".join(lines)
