"""Structured benchmark artifacts: the ``BenchHarness`` and its schema.

Every benchmark under ``benchmarks/`` used to hand-roll its own timing
loop and print a free-text table; the only durable output was a
``.txt`` nobody could diff numerically.  This module is the shared
replacement:

* :class:`BenchHarness` times each **case** (best-of-N wall time with
  warmup discard, or repeat-until-budget for millisecond-scale cells),
  collects per-case scalars — simulated events/sec, key streaming
  metrics, the stall-cause histogram from the PR-5 analyzer, the
  :class:`~repro.obs.profile.EngineProfile` breakdown — and still
  prints/writes the human-readable tables exactly where they always
  went;
* :func:`build_artifact` wraps the cases in a **versioned JSON
  artifact** (schema ``repro.bench/1``) with a full run manifest: git
  SHA + dirty flag, python/platform/cpu environment block, and stable
  :func:`~repro.parallel.digest.content_digest`\\ s of each case's
  workload;
* :func:`validate_artifact` / :func:`load_artifact` enforce the schema
  on the way back in, so ``repro compare`` never diffs garbage.

A benchmark script participates by exposing::

    def run_suite(harness, quick=False): ...

which both its pytest wrapper (``benchmarks/conftest.py``'s
``harness`` fixture) and ``repro bench <suite>`` drive.  The artifact
lands next to the tables as ``benchmarks/results/BENCH_<suite>.json``
— the machine-readable perf trajectory the ROADMAP's scaling work is
judged against.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

from ..errors import ArtifactError, BenchError
from . import manifest as _manifest
from .export import dump_json

#: The schema tag written into and required from every artifact.
SCHEMA = _manifest.ARTIFACT_SCHEMA

#: Upper bound on repeat-until-budget rounds (runaway guard).
MAX_BUDGET_ROUNDS = 400


@dataclass(frozen=True, slots=True)
class CaseTiming:
    """Wall-time statistics of one benchmark case.

    Attributes:
        rounds: timed repetitions (after warmup).
        warmup: discarded untimed repetitions.
        best_s: minimum wall seconds over the rounds — the run least
            disturbed by scheduler noise, and the number regression
            gates compare.
        mean_s: mean wall seconds over the rounds.
        stdev_s: sample standard deviation (0 when rounds == 1);
            ``repro compare`` widens its threshold by this noise.
    """

    rounds: int
    warmup: int
    best_s: float
    mean_s: float
    stdev_s: float

    def to_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "warmup": self.warmup,
            "best_s": self.best_s,
            "mean_s": self.mean_s,
            "stdev_s": self.stdev_s,
        }


@dataclass
class BenchCase:
    """One measured case of a suite (a row of the artifact).

    Attributes:
        case_id: stable identity within the suite (``"star/100/
            incremental"``); ``repro compare`` matches cases on it.
        timing: wall-time statistics.
        params: the case's knobs, recorded verbatim for humans.
        digest: content digest of the workload description, so compare
            can distinguish "same workload, slower" from "different
            workload".
        events_fired: simulated events executed (one timed round).
        events_per_sec: ``events_fired / timing.best_s``.
        sim_seconds: simulated seconds the case covered.
        metrics: free-form scalar metrics (stall counts, startup
            means, speedups ...).
        causes: stall-cause histogram from the analyzer, when the
            suite ran with analysis.
        profile: engine wall-time breakdown (``EngineProfile``
            snapshot), when the suite profiled.
    """

    case_id: str
    timing: CaseTiming
    params: dict = field(default_factory=dict)
    digest: str | None = None
    events_fired: int | None = None
    events_per_sec: float | None = None
    sim_seconds: float | None = None
    metrics: dict[str, float] = field(default_factory=dict)
    causes: dict[str, int] | None = None
    profile: dict | None = None

    def to_dict(self) -> dict:
        return {
            "id": self.case_id,
            "timing": self.timing.to_dict(),
            "params": dict(self.params),
            "digest": self.digest,
            "events_fired": self.events_fired,
            "events_per_sec": self.events_per_sec,
            "sim_seconds": self.sim_seconds,
            "metrics": dict(self.metrics),
            "causes": None if self.causes is None else dict(self.causes),
            "profile": self.profile,
        }


class BenchHarness:
    """Times cases, keeps tables, and assembles the JSON artifact.

    Args:
        suite: suite name; the artifact is ``BENCH_<suite>.json``.
        results_dir: where tables and artifacts land (default:
            ``benchmarks/results`` relative to the current directory).
        quick: reduced-scale run.  Quick runs still produce a (quick-
            flagged) artifact but never overwrite the committed
            human-readable tables.
        clock: injectable monotonic clock (tests).
    """

    def __init__(
        self,
        suite: str,
        results_dir: str | Path | None = None,
        quick: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if not suite or "/" in suite:
            raise BenchError(f"invalid suite name: {suite!r}")
        self.suite = suite
        self.results_dir = Path(
            results_dir
            if results_dir is not None
            else Path("benchmarks") / "results"
        )
        self.quick = quick
        self._clock = clock
        self.cases: list[BenchCase] = []
        self._case_ids: set[str] = set()

    # -- measurement ---------------------------------------------------

    def case(
        self,
        case_id: str,
        fn: Callable[..., Any],
        *args: Any,
        kwargs: Mapping[str, Any] | None = None,
        rounds: int = 1,
        warmup: int = 0,
        budget_s: float | None = None,
        params: Mapping[str, Any] | None = None,
        digest_of: Any = None,
        self_timed: bool = False,
        profile: Any = None,
    ) -> Any:
        """Measure one case; returns ``fn``'s (last) return value.

        Timing modes:

        * fixed — ``warmup`` discarded calls, then ``rounds`` timed
          calls; the minimum wall time is the headline number;
        * budget (``budget_s``) — after warmup, repeat until the
          budget is spent (at least once, at most
          :data:`MAX_BUDGET_ROUNDS` rounds) and keep the minimum.
          Right for millisecond-scale cells where a fixed small N is
          all noise.

        Args:
            self_timed: ``fn`` returns ``(result, wall_seconds)``,
                timing only the section it cares about (e.g. the
                simulator loop, excluding topology construction).
            digest_of: any value describing the workload; its
                content digest is recorded on the case.
            profile: an :class:`~repro.obs.profile.EngineProfile` the
                run records into; the case stores the *delta* this
                case contributed.
        """
        if case_id in self._case_ids:
            raise BenchError(
                f"duplicate case id {case_id!r} in suite {self.suite!r}"
            )
        if rounds < 1:
            raise BenchError(f"rounds must be >= 1: {rounds}")
        if warmup < 0:
            raise BenchError(f"warmup must be >= 0: {warmup}")
        call_kwargs = dict(kwargs or {})
        before = profile.snapshot() if profile is not None else None

        for _ in range(warmup):
            self._call(fn, args, call_kwargs, self_timed)

        walls: list[float] = []
        result: Any = None
        spent = 0.0
        while True:
            result, wall = self._call(fn, args, call_kwargs, self_timed)
            walls.append(wall)
            spent += wall
            if budget_s is not None:
                if spent >= budget_s or len(walls) >= MAX_BUDGET_ROUNDS:
                    break
            elif len(walls) >= rounds:
                break

        timing = CaseTiming(
            rounds=len(walls),
            warmup=warmup,
            best_s=min(walls),
            mean_s=statistics.fmean(walls),
            stdev_s=(
                statistics.stdev(walls) if len(walls) > 1 else 0.0
            ),
        )
        case = BenchCase(
            case_id=case_id,
            timing=timing,
            params=dict(params or {}),
        )
        if digest_of is not None:
            from ..parallel.digest import content_digest

            case.digest = content_digest(digest_of)
        if profile is not None and before is not None:
            case.profile = _profile_delta(before, profile.snapshot())
        self.cases.append(case)
        self._case_ids.add(case_id)
        return result

    def _call(
        self,
        fn: Callable[..., Any],
        args: tuple,
        kwargs: dict,
        self_timed: bool,
    ) -> tuple[Any, float]:
        if self_timed:
            result, wall = fn(*args, **kwargs)
            if not isinstance(wall, (int, float)) or wall < 0:
                raise BenchError(
                    "self-timed case must return "
                    "(result, wall_seconds >= 0)"
                )
            return result, float(wall)
        start = self._clock()
        result = fn(*args, **kwargs)
        return result, self._clock() - start

    def annotate(
        self,
        case_id: str | None = None,
        *,
        events_fired: int | None = None,
        sim_seconds: float | None = None,
        causes: Mapping[str, int] | None = None,
        analysis: Any = None,
        **metrics: float,
    ) -> None:
        """Attach post-measurement facts to a case (default: the last).

        Args:
            events_fired: simulated events the case executed; also
                derives ``events_per_sec`` against the best wall time.
            causes: stall-cause histogram.
            analysis: a :class:`~repro.obs.analyze.CellAnalysis`-like
                object; its cause histogram, stall count, and transfer
                efficiency are folded in.
            metrics: any scalar worth tracking over time.
        """
        case = self._find(case_id)
        if events_fired is not None:
            case.events_fired = int(events_fired)
            if case.timing.best_s > 0:
                case.events_per_sec = events_fired / case.timing.best_s
        if sim_seconds is not None:
            case.sim_seconds = float(sim_seconds)
        if analysis is not None:
            case.causes = dict(getattr(analysis, "causes", {}) or {})
            stall_count = getattr(analysis, "stall_count", None)
            if stall_count is not None:
                case.metrics.setdefault(
                    "attributed_stalls", float(stall_count)
                )
            efficiency = getattr(
                analysis, "mean_transfer_efficiency", None
            )
            if efficiency is not None:
                case.metrics.setdefault(
                    "transfer_efficiency", float(efficiency)
                )
        if causes is not None:
            case.causes = dict(causes)
        for name, value in metrics.items():
            case.metrics[name] = float(value)

    def _find(self, case_id: str | None) -> BenchCase:
        if not self.cases:
            raise BenchError("no case measured yet")
        if case_id is None:
            return self.cases[-1]
        for case in self.cases:
            if case.case_id == case_id:
                return case
        raise BenchError(
            f"unknown case {case_id!r} in suite {self.suite!r}"
        )

    # -- human-readable output -----------------------------------------

    def emit(self, text: str, name: str | None = None) -> None:
        """Print a table and persist it under ``results/<name>.txt``.

        Exactly the contract the old per-script ``emit`` fixture had
        (stdout copy + durable file), except quick runs print only —
        a reduced-scale run must never overwrite a committed
        full-scale table.
        """
        print()
        print(text)
        if self.quick:
            return
        self.results_dir.mkdir(parents=True, exist_ok=True)
        target = self.results_dir / f"{name or self.suite}.txt"
        target.write_text(text + "\n")

    # -- the artifact --------------------------------------------------

    def artifact(self) -> dict:
        """The suite's artifact payload (schema-valid by construction)."""
        return build_artifact(
            self.suite, self.cases, quick=self.quick
        )

    def write(self, path: str | Path | None = None) -> Path:
        """Write ``BENCH_<suite>.json``; returns the path written."""
        target = Path(
            path
            if path is not None
            else self.results_dir / f"BENCH_{self.suite}.json"
        )
        target.parent.mkdir(parents=True, exist_ok=True)
        payload = self.artifact()
        validate_artifact(payload)
        dump_json(payload, str(target))
        return target

    # -- conveniences for suites ---------------------------------------

    def paper_setup(self, quick: bool | None = None):
        """The paper's experiment config + encoded video, memoized.

        Quick mode mirrors the CLI's ``--quick`` convention (9 peers,
        one seed).  The video comes from the process-wide
        :mod:`repro.parallel.cache`, so seventeen suites in one
        process encode it once.
        """
        from ..experiments.config import ExperimentConfig
        from ..parallel.cache import cached_video
        from ..parallel.spec import VideoSpec

        quick = self.quick if quick is None else quick
        config = (
            ExperimentConfig(n_leechers=9, seeds=(7,))
            if quick
            else ExperimentConfig()
        )
        video = cached_video(VideoSpec(seed=config.video_seed))
        return config, video


def figure_metrics(result: Any) -> dict[str, float]:
    """Flatten a ``FigureResult`` to per-series key metrics.

    For every series the figure's own metric plus the two headline
    streaming metrics (stall count, startup time) are averaged over
    the bandwidth axis — the scalars future PRs get compared on.
    """
    metrics: dict[str, float] = {}
    for label, cells in result.series.items():
        names = {result.metric, "stall_count", "startup_time"}
        for name in sorted(names):
            values = [float(getattr(cell, name)) for cell in cells]
            if values:
                metrics[f"{label}.mean_{name}"] = statistics.fmean(
                    values
                )
    return metrics


def _profile_delta(before: dict, after: dict) -> dict:
    counts = {
        category: after["counts"][category]
        - before["counts"].get(category, 0)
        for category in after["counts"]
        if after["counts"][category]
        - before["counts"].get(category, 0)
    }
    wall = {
        category: after["wall_seconds"][category]
        - before["wall_seconds"].get(category, 0.0)
        for category in after["wall_seconds"]
        if category in counts
    }
    return {"counts": counts, "wall_seconds": wall}


# -- artifact build / validate / load ---------------------------------


def build_artifact(
    suite: str, cases: Iterable[BenchCase], quick: bool = False
) -> dict:
    """Assemble the versioned artifact payload for ``cases``."""
    return {
        "schema": SCHEMA,
        "suite": suite,
        "quick": bool(quick),
        "created": _manifest.utc_timestamp(),
        "manifest": _manifest.build_manifest(),
        "cases": [case.to_dict() for case in cases],
    }


def _fail(path: str, message: str) -> None:
    raise ArtifactError(f"invalid artifact: {path}: {message}")


def _expect_number(
    value: Any, path: str, minimum: float | None = None
) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        _fail(path, f"expected a number, got {value!r}")
    if minimum is not None and value < minimum:
        _fail(path, f"must be >= {minimum}, got {value!r}")


def _expect_scalar_map(value: Any, path: str) -> None:
    if not isinstance(value, dict):
        _fail(path, f"expected an object, got {value!r}")
    for key, item in value.items():
        if not isinstance(key, str):
            _fail(path, f"non-string key {key!r}")
        _expect_number(item, f"{path}[{key!r}]")


def _validate_timing(timing: Any, path: str) -> None:
    if not isinstance(timing, dict):
        _fail(path, "timing must be an object")
    for name in ("rounds", "warmup"):
        value = timing.get(name)
        if not isinstance(value, int) or isinstance(value, bool):
            _fail(f"{path}.{name}", f"expected an integer, got {value!r}")
    if timing["rounds"] < 1:
        _fail(f"{path}.rounds", "must be >= 1")
    if timing["warmup"] < 0:
        _fail(f"{path}.warmup", "must be >= 0")
    for name in ("best_s", "mean_s", "stdev_s"):
        _expect_number(timing.get(name), f"{path}.{name}", minimum=0.0)
    if timing["best_s"] > timing["mean_s"] * (1 + 1e-9):
        _fail(path, "best_s exceeds mean_s")


def _validate_case(case: Any, index: int, seen: set[str]) -> None:
    path = f"cases[{index}]"
    if not isinstance(case, dict):
        _fail(path, "case must be an object")
    case_id = case.get("id")
    if not isinstance(case_id, str) or not case_id:
        _fail(f"{path}.id", f"expected a non-empty string, got {case_id!r}")
    if case_id in seen:
        _fail(f"{path}.id", f"duplicate case id {case_id!r}")
    seen.add(case_id)
    _validate_timing(case.get("timing"), f"{path}.timing")
    if not isinstance(case.get("params"), dict):
        _fail(f"{path}.params", "expected an object")
    digest = case.get("digest")
    if digest is not None and not isinstance(digest, str):
        _fail(f"{path}.digest", f"expected a string or null, got {digest!r}")
    events = case.get("events_fired")
    if events is not None:
        if not isinstance(events, int) or isinstance(events, bool):
            _fail(f"{path}.events_fired", f"expected an integer, got {events!r}")
        if events < 0:
            _fail(f"{path}.events_fired", "must be >= 0")
    for name in ("events_per_sec", "sim_seconds"):
        value = case.get(name)
        if value is not None:
            _expect_number(value, f"{path}.{name}", minimum=0.0)
    _expect_scalar_map(case.get("metrics"), f"{path}.metrics")
    causes = case.get("causes")
    if causes is not None:
        if not isinstance(causes, dict):
            _fail(f"{path}.causes", "expected an object or null")
        for cause, count in causes.items():
            if (
                not isinstance(cause, str)
                or not isinstance(count, int)
                or isinstance(count, bool)
                or count < 0
            ):
                _fail(
                    f"{path}.causes",
                    f"bad entry {cause!r}: {count!r}",
                )
    profile = case.get("profile")
    if profile is not None:
        if not isinstance(profile, dict):
            _fail(f"{path}.profile", "expected an object or null")
        _expect_scalar_map(
            profile.get("counts"), f"{path}.profile.counts"
        )
        _expect_scalar_map(
            profile.get("wall_seconds"), f"{path}.profile.wall_seconds"
        )


def validate_artifact(payload: Any) -> None:
    """Check an artifact against schema ``repro.bench/1``.

    Raises:
        ArtifactError: naming the first offending field.
    """
    if not isinstance(payload, dict):
        _fail("$", "artifact must be a JSON object")
    schema = payload.get("schema")
    if schema != SCHEMA:
        _fail(
            "schema",
            f"unsupported schema {schema!r} (this reader understands "
            f"{SCHEMA!r})",
        )
    suite = payload.get("suite")
    if not isinstance(suite, str) or not suite:
        _fail("suite", f"expected a non-empty string, got {suite!r}")
    if not isinstance(payload.get("quick"), bool):
        _fail("quick", "expected a boolean")
    if not isinstance(payload.get("created"), str):
        _fail("created", "expected a string timestamp")
    manifest = payload.get("manifest")
    if not isinstance(manifest, dict):
        _fail("manifest", "expected an object")
    env = manifest.get("env")
    if not isinstance(env, dict):
        _fail("manifest.env", "expected an object")
    for name in ("python", "platform"):
        if not isinstance(env.get(name), str):
            _fail(f"manifest.env.{name}", "expected a string")
    git = manifest.get("git")
    if git is not None:
        if not isinstance(git, dict):
            _fail("manifest.git", "expected an object or null")
        if not isinstance(git.get("sha"), str):
            _fail("manifest.git.sha", "expected a string")
        if not isinstance(git.get("dirty"), bool):
            _fail("manifest.git.dirty", "expected a boolean")
    cases = payload.get("cases")
    if not isinstance(cases, list):
        _fail("cases", "expected a list")
    seen: set[str] = set()
    for index, case in enumerate(cases):
        _validate_case(case, index, seen)


def load_artifact(path: str | Path) -> dict:
    """Read and validate one ``BENCH_*.json`` artifact.

    Raises:
        ArtifactError: unreadable file, bad JSON, or schema violation.
    """
    import json

    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ArtifactError(
            f"cannot read artifact {str(path)!r}: {exc}"
        ) from exc
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ArtifactError(
            f"artifact {str(path)!r} is not valid JSON: {exc}"
        ) from exc
    validate_artifact(payload)
    return payload


# -- suite discovery (for ``repro bench``) ----------------------------


def discover_suites(bench_dir: str | Path) -> dict[str, Path]:
    """Map suite name -> script path for ``bench_*.py`` files."""
    base = Path(bench_dir)
    return {
        script.stem.removeprefix("bench_"): script
        for script in sorted(base.glob("bench_*.py"))
    }


def load_suite(name: str, script: str | Path):
    """Import a benchmark script by path; returns its module.

    The module must expose ``run_suite(harness, quick=False)``.
    """
    import importlib.util
    import sys

    script = Path(script)
    spec = importlib.util.spec_from_file_location(
        f"repro_bench.{name}", script
    )
    if spec is None or spec.loader is None:
        raise BenchError(f"cannot import benchmark script {script}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise BenchError(
            f"benchmark script {script} failed to import: "
            f"{type(exc).__name__}: {exc}"
        ) from exc
    if not callable(getattr(module, "run_suite", None)):
        raise BenchError(
            f"benchmark script {script} does not define "
            "run_suite(harness, quick=False)"
        )
    return module
