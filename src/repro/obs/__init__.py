"""Observability: sim-time tracing, metrics, profiles, exporters.

The paper's entire evaluation is observational — stall counts, stall
durations, startup times, pool sizes — and this package is the layer
every other subsystem records into:

* :mod:`repro.obs.events` — the typed event taxonomy, keyed on
  simulator time;
* :mod:`repro.obs.tracer` — ring-buffer event recording with a
  one-attribute-check disabled path (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — counters, gauges, sim-time-weighted
  histograms, raw timeseries;
* :mod:`repro.obs.profile` — event-loop wall-time profiling by
  handler category;
* :mod:`repro.obs.context` — :class:`Observability`, the bundle
  threaded through :class:`~repro.p2p.swarm.Swarm` and the experiment
  harness;
* :mod:`repro.obs.export` — JSONL traces, CSV timeseries, and the
  human-readable run report;
* :mod:`repro.obs.analyze` (with :mod:`~repro.obs.timeline`,
  :mod:`~repro.obs.causes`, :mod:`~repro.obs.render`) — the diagnosis
  layer: per-peer timeline reconstruction, stall root-cause
  attribution, swarm-health rollups, and the cause-marked ASCII Gantt;
* :mod:`repro.obs.span` / :mod:`repro.obs.ops` — *wall-clock*
  operational telemetry for the sweep orchestration layer
  (``repro.ops/1`` span logs, shard heartbeats, and the fleet view
  behind ``repro sweep status``), cleanly separated from the sim-time
  tracer above.

Tracing a run::

    from repro import Observability, Swarm, SwarmConfig
    from repro.obs import dump_jsonl, render_run_report

    obs = Observability.tracing()
    result = Swarm(splice, SwarmConfig(bandwidth=64e3), obs=obs).run()
    dump_jsonl(obs.events(), "run.jsonl")
    print(render_run_report(obs))
"""

from .analyze import (
    CellAnalysis,
    RunAnalysis,
    analyze_events,
    analyze_file,
    analyze_observability,
    merge_analyses,
    render_analysis,
    render_attributions,
    render_cause_table,
)
from .causes import (
    SEEDER_CONCURRENCY_THRESHOLD,
    STALL_CAUSES,
    StallAttribution,
    attribute_stalls,
    cause_histogram,
)
from .bench import (
    BenchCase,
    BenchHarness,
    CaseTiming,
    build_artifact,
    figure_metrics,
    load_artifact,
    validate_artifact,
)
from .compare import (
    Comparison,
    MetricDelta,
    compare_artifacts,
    render_comparison,
)
from .context import Observability
from .events import (
    EVENT_TYPES,
    SEVERITIES,
    FlowRateChanged,
    ManifestReceived,
    PeerDeparted,
    PeerJoined,
    PieceReceived,
    PlaybackFinished,
    PlaybackStarted,
    PoolResized,
    RequestTimedOut,
    SegmentRequested,
    SelectionMade,
    SimulationCompleted,
    SimulationStarted,
    StallEnded,
    StallStarted,
    TraceEvent,
    TransferCancelled,
    TransferCompleted,
    TransferStarted,
    event_from_dict,
    event_type,
)
from .export import (
    PeerTraceSummary,
    dump_json,
    dump_jsonl,
    event_counts,
    events_to_jsonl,
    load_jsonl,
    render_run_report,
    render_trace_summary,
    summarize_trace,
    timeseries_csv,
)
from .metrics import (
    Counter,
    Gauge,
    HistogramSummary,
    MetricsRegistry,
    Timeseries,
    TimeWeightedHistogram,
)
from .manifest import (
    build_manifest,
    environment_block,
    git_info,
    render_environment,
    run_manifest,
)
from .ops import (
    NULL_HEARTBEAT,
    NULL_OPS,
    OpsLog,
    ShardHeartbeat,
    ShardStatus,
    find_heartbeats,
    fleet_status,
    heartbeat_path,
    load_ops,
    merge_ops_path,
    ops_root,
    read_heartbeat,
    render_fleet,
    shard_ops_path,
)
from .profile import EngineProfile, handler_category
from .render import CAUSE_SYMBOLS, render_gantt
from .timeline import (
    InvariantViolation,
    PeerTimeline,
    PoolDecision,
    SegmentFetch,
    StallSpan,
    TimelineSet,
    TransferRecord,
    build_timelines,
)
from .span import (
    OPS_SCHEMA,
    Span,
    critical_path,
    render_critical_path,
    render_span_tree,
    span_from_dict,
)
from .tracer import NULL_TRACER, EventTracer, NullTracer, Tracer

__all__ = [
    "CAUSE_SYMBOLS",
    "EVENT_TYPES",
    "NULL_HEARTBEAT",
    "NULL_OPS",
    "NULL_TRACER",
    "OPS_SCHEMA",
    "SEEDER_CONCURRENCY_THRESHOLD",
    "SEVERITIES",
    "STALL_CAUSES",
    "BenchCase",
    "BenchHarness",
    "CaseTiming",
    "CellAnalysis",
    "Comparison",
    "Counter",
    "EngineProfile",
    "EventTracer",
    "FlowRateChanged",
    "Gauge",
    "HistogramSummary",
    "InvariantViolation",
    "ManifestReceived",
    "MetricDelta",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "OpsLog",
    "PeerDeparted",
    "PeerJoined",
    "PeerTimeline",
    "PeerTraceSummary",
    "PieceReceived",
    "PlaybackFinished",
    "PlaybackStarted",
    "PoolDecision",
    "PoolResized",
    "RequestTimedOut",
    "RunAnalysis",
    "SegmentFetch",
    "SegmentRequested",
    "SelectionMade",
    "ShardHeartbeat",
    "ShardStatus",
    "SimulationCompleted",
    "SimulationStarted",
    "Span",
    "StallAttribution",
    "StallEnded",
    "StallSpan",
    "StallStarted",
    "TimelineSet",
    "Timeseries",
    "TimeWeightedHistogram",
    "TraceEvent",
    "Tracer",
    "TransferCancelled",
    "TransferCompleted",
    "TransferRecord",
    "TransferStarted",
    "analyze_events",
    "analyze_file",
    "analyze_observability",
    "attribute_stalls",
    "build_artifact",
    "build_manifest",
    "build_timelines",
    "cause_histogram",
    "compare_artifacts",
    "critical_path",
    "dump_json",
    "dump_jsonl",
    "environment_block",
    "event_counts",
    "event_from_dict",
    "event_type",
    "events_to_jsonl",
    "figure_metrics",
    "find_heartbeats",
    "fleet_status",
    "git_info",
    "handler_category",
    "heartbeat_path",
    "load_artifact",
    "load_jsonl",
    "load_ops",
    "merge_analyses",
    "merge_ops_path",
    "ops_root",
    "read_heartbeat",
    "render_analysis",
    "render_attributions",
    "render_cause_table",
    "render_comparison",
    "render_critical_path",
    "render_environment",
    "render_fleet",
    "render_gantt",
    "render_run_report",
    "render_span_tree",
    "render_trace_summary",
    "run_manifest",
    "shard_ops_path",
    "span_from_dict",
    "summarize_trace",
    "timeseries_csv",
    "validate_artifact",
]
