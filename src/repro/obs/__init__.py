"""Observability: sim-time tracing, metrics, profiles, exporters.

The paper's entire evaluation is observational — stall counts, stall
durations, startup times, pool sizes — and this package is the layer
every other subsystem records into:

* :mod:`repro.obs.events` — the typed event taxonomy, keyed on
  simulator time;
* :mod:`repro.obs.tracer` — ring-buffer event recording with a
  one-attribute-check disabled path (:data:`NULL_TRACER`);
* :mod:`repro.obs.metrics` — counters, gauges, sim-time-weighted
  histograms, raw timeseries;
* :mod:`repro.obs.profile` — event-loop wall-time profiling by
  handler category;
* :mod:`repro.obs.context` — :class:`Observability`, the bundle
  threaded through :class:`~repro.p2p.swarm.Swarm` and the experiment
  harness;
* :mod:`repro.obs.export` — JSONL traces, CSV timeseries, and the
  human-readable run report.

Tracing a run::

    from repro import Observability, Swarm, SwarmConfig
    from repro.obs import dump_jsonl, render_run_report

    obs = Observability.tracing()
    result = Swarm(splice, SwarmConfig(bandwidth=64e3), obs=obs).run()
    dump_jsonl(obs.events(), "run.jsonl")
    print(render_run_report(obs))
"""

from .context import Observability
from .events import (
    EVENT_TYPES,
    SEVERITIES,
    FlowRateChanged,
    ManifestReceived,
    PeerDeparted,
    PeerJoined,
    PieceReceived,
    PlaybackFinished,
    PlaybackStarted,
    PoolResized,
    RequestTimedOut,
    SegmentRequested,
    SelectionMade,
    SimulationCompleted,
    SimulationStarted,
    StallEnded,
    StallStarted,
    TraceEvent,
    TransferCancelled,
    TransferCompleted,
    TransferStarted,
    event_from_dict,
    event_type,
)
from .export import (
    PeerTraceSummary,
    dump_jsonl,
    event_counts,
    events_to_jsonl,
    load_jsonl,
    render_run_report,
    render_trace_summary,
    summarize_trace,
    timeseries_csv,
)
from .metrics import (
    Counter,
    Gauge,
    HistogramSummary,
    MetricsRegistry,
    Timeseries,
    TimeWeightedHistogram,
)
from .profile import EngineProfile, handler_category
from .tracer import NULL_TRACER, EventTracer, NullTracer, Tracer

__all__ = [
    "EVENT_TYPES",
    "NULL_TRACER",
    "SEVERITIES",
    "Counter",
    "EngineProfile",
    "EventTracer",
    "FlowRateChanged",
    "Gauge",
    "HistogramSummary",
    "ManifestReceived",
    "MetricsRegistry",
    "NullTracer",
    "Observability",
    "PeerDeparted",
    "PeerJoined",
    "PeerTraceSummary",
    "PieceReceived",
    "PlaybackFinished",
    "PlaybackStarted",
    "PoolResized",
    "RequestTimedOut",
    "SegmentRequested",
    "SelectionMade",
    "SimulationCompleted",
    "SimulationStarted",
    "StallEnded",
    "StallStarted",
    "Timeseries",
    "TimeWeightedHistogram",
    "TraceEvent",
    "Tracer",
    "TransferCancelled",
    "TransferCompleted",
    "TransferStarted",
    "dump_jsonl",
    "event_counts",
    "event_from_dict",
    "event_type",
    "events_to_jsonl",
    "handler_category",
    "load_jsonl",
    "render_run_report",
    "render_trace_summary",
    "summarize_trace",
    "timeseries_csv",
]
