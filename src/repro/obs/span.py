"""Wall-clock operation spans: the data model behind ``repro.ops/1``.

The sim-time tracer (:mod:`repro.obs.tracer`) answers "what happened
inside the simulated swarm"; this module answers "where did the *wall*
time of the orchestration layer go" — planning a sweep, running a
shard, executing one cell, committing a store entry, merging shard
stores.  A :class:`Span` is one timed operation with a parent link, so
a shard's log reconstructs into a tree whose root is the shard run and
whose leaves are individual cell runs and store commits.

This module is deliberately pure: spans are plain data plus tree /
critical-path / rendering helpers, and **nothing here reads the wall
clock** — the clock lives in :mod:`repro.obs.ops`, the one module the
lint D1 allowlist sanctions for orchestration-side wall-clock reads.
Keeping the data model clock-free means renderers and tests never need
a sanctioned module and never depend on the host's clock.

Span names form a small taxonomy mirroring the sweep protocol::

    plan            repro sweep plan expanding + digesting a figure
    shard           one `repro sweep run` shard executing its runs
    merge           repro sweep merge absorbing stores + replaying
    store-absorb    one source store unioned into the target
    cell-run        one (cell, seed) run (attrs: cell, seed, cached,
                    pid; cached hits have zero duration *here* — the
                    original compute cost lives in the store entry)
    store-commit    one atomic result-store write
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import OpsError

#: Version tag of the ops-log document (header + span records).  Bump
#: the integer on any change to the record layout; readers reject logs
#: they do not understand (the policy mirrors ``repro.bench/1``, see
#: ``docs/OBSERVABILITY.md``).
OPS_SCHEMA = "repro.ops/1"

#: Span statuses a well-formed log may contain.
SPAN_STATUSES = ("ok", "failed")


@dataclass(slots=True)
class Span:
    """One timed wall-clock operation in an ops log.

    Attributes:
        id: log-unique span id (allocation order, 1-based).
        parent: enclosing span's id, or ``None`` for a root.
        name: operation name from the module taxonomy above.
        start: wall-clock start (seconds since the Unix epoch).
        end: wall-clock end; ``end >= start`` always.
        status: ``"ok"`` or ``"failed"``.
        attrs: JSON-compatible operation attributes (cell label,
            seed, cached flag, worker pid, ...).  Mutable so code
            holding an open span can attach facts it only learns
            mid-operation.
    """

    id: int
    parent: int | None
    name: str
    start: float
    end: float = 0.0
    status: str = "ok"
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Wall seconds the operation took."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict:
        """The span as the JSONL record the log stores."""
        return {
            "kind": "span",
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "status": self.status,
            "attrs": self.attrs,
        }


def span_from_dict(record: object) -> Span:
    """Rebuild a :class:`Span` from a parsed JSONL record.

    Raises:
        OpsError: when the record is not a structurally valid span.
    """
    if not isinstance(record, dict) or record.get("kind") != "span":
        raise OpsError(f"not a span record: {record!r}")
    span_id = record.get("id")
    if not isinstance(span_id, int) or span_id < 1:
        raise OpsError(f"span id must be a positive int: {span_id!r}")
    parent = record.get("parent")
    if parent is not None and not isinstance(parent, int):
        raise OpsError(f"span parent must be an int or null: {parent!r}")
    name = record.get("name")
    if not isinstance(name, str) or not name:
        raise OpsError(f"span #{span_id} has no name")
    start = record.get("start")
    end = record.get("end")
    if not isinstance(start, (int, float)) or not isinstance(
        end, (int, float)
    ):
        raise OpsError(f"span #{span_id} has non-numeric bounds")
    status = record.get("status")
    if status not in SPAN_STATUSES:
        raise OpsError(
            f"span #{span_id} status {status!r} is not one of "
            f"{', '.join(SPAN_STATUSES)}"
        )
    attrs = record.get("attrs")
    if attrs is None:
        attrs = {}
    if not isinstance(attrs, dict):
        raise OpsError(f"span #{span_id} attrs must be an object")
    return Span(
        id=span_id,
        parent=parent,
        name=name,
        start=float(start),
        end=float(end),
        status=str(status),
        attrs=attrs,
    )


def children_of(spans: list[Span]) -> dict[int | None, list[Span]]:
    """Index spans by parent id; children keep log (start) order."""
    index: dict[int | None, list[Span]] = {}
    for span in spans:
        index.setdefault(span.parent, []).append(span)
    for group in index.values():
        group.sort(key=lambda s: (s.start, s.id))
    return index


def critical_path(spans: list[Span]) -> list[Span]:
    """The chain of spans that bounded the log's wall time.

    Walks from the longest root down, at each level following the
    child whose *end* is latest — the operation the parent was still
    waiting on when it finished.  For a shard this surfaces the cell
    run (or store commit) that the sweep could not have finished
    without.
    """
    if not spans:
        return []
    index = children_of(spans)
    roots = index.get(None, [])
    if not roots:
        # An orphaned log (parent spans lost mid-crash): treat the
        # earliest span as the root so rendering still works.
        roots = [min(spans, key=lambda s: (s.start, s.id))]
    node = max(roots, key=lambda s: (s.duration, -s.id))
    path = [node]
    while True:
        kids = index.get(node.id, [])
        if not kids:
            return path
        node = max(kids, key=lambda s: (s.end, s.id))
        path.append(node)


def _span_label(span: Span) -> str:
    """``name`` plus the attrs that identify the operation."""
    parts = [span.name]
    cell = span.attrs.get("cell")
    if cell:
        seed = span.attrs.get("seed")
        tag = f"{cell}" if seed is None else f"{cell} seed {seed}"
        parts.append(f"[{tag}]")
    if span.attrs.get("cached"):
        parts.append("(cached)")
    if span.status != "ok":
        parts.append("FAILED")
    return " ".join(parts)


def render_span_tree(spans: list[Span], max_depth: int = 8) -> str:
    """The log as an indented wall-clock tree, one span per line."""
    if not spans:
        return "(empty ops log)"
    index = children_of(spans)
    known = {span.id for span in spans}
    roots = index.get(None, []) + [
        span
        for parent, group in index.items()
        if parent is not None and parent not in known
        for span in group
    ]
    roots.sort(key=lambda s: (s.start, s.id))
    lines: list[str] = []

    def walk(span: Span, depth: int) -> None:
        indent = "  " * depth
        lines.append(
            f"{indent}{_span_label(span)}  {span.duration:.3f}s"
        )
        if depth + 1 >= max_depth:
            return
        for child in index.get(span.id, []):
            walk(child, depth + 1)

    for root in roots:
        walk(root, 0)
    return "\n".join(lines)


def render_critical_path(spans: list[Span]) -> str:
    """The critical path with each hop's share of total wall time."""
    path = critical_path(spans)
    if not path:
        return "critical path: (empty ops log)"
    total = path[0].duration
    lines = [f"critical path ({total:.3f}s total wall):"]
    for depth, span in enumerate(path):
        share = (
            100.0 * span.duration / total if total > 0 else 100.0
        )
        arrow = "" if depth == 0 else "  " * (depth - 1) + "└ "
        lines.append(
            f"  {arrow}{_span_label(span)}  "
            f"{span.duration:.3f}s  {share:5.1f}%"
        )
    return "\n".join(lines)
