"""Metrics registry: counters, gauges, and sim-time-weighted series.

Components publish numbers here instead of growing private ad-hoc
lists; exporters (:mod:`repro.obs.export`) then render every metric the
same way.  All time arguments are **simulated** seconds.

Three primitives cover the stack's needs:

* :class:`Counter` — monotonically increasing totals (segments
  received, retries, stalls);
* :class:`Gauge` — a current value (active flows, pool size);
* :class:`TimeWeightedHistogram` — distribution of a value weighted by
  how long it was held.  A pool that sat at ``k=4`` for 60 s and
  ``k=1`` for 2 s has a time-weighted mean near 4, where a
  per-decision mean would mislead.  Multiple independent keys (one per
  peer) may feed one histogram; each key's value is weighted by its
  own holding time, so the result reads as *peer-seconds at value v*.
* :class:`Timeseries` — raw ``(time, value)`` samples for CSV export.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import TraceError


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise TraceError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


class Gauge:
    """A value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = value

    def add(self, delta: float) -> None:
        """Shift the current value by ``delta``."""
        self.value += delta


@dataclass(frozen=True, slots=True)
class HistogramSummary:
    """Summary statistics of a time-weighted histogram.

    Attributes:
        mean: time-weighted mean value.
        minimum: smallest value held for any time.
        maximum: largest value held for any time.
        total_weight: summed holding time, seconds (peer-seconds when
            several keys feed the histogram).
    """

    mean: float
    minimum: float
    maximum: float
    total_weight: float


class TimeWeightedHistogram:
    """Distribution of a value weighted by sim-time held.

    Call :meth:`observe` whenever the value *changes*; the previous
    value is credited with the elapsed interval.  Independent sources
    (e.g. one per peer) pass distinct ``key`` values.  Call
    :meth:`finalize` at the end of the run to credit each key's last
    value through the end time.
    """

    __slots__ = ("name", "_weights", "_last")

    def __init__(self, name: str) -> None:
        self.name = name
        self._weights: dict[float, float] = {}  # value -> seconds held
        self._last: dict[str, tuple[float, float]] = {}  # key -> (t, v)

    def observe(self, time: float, value: float, key: str = "") -> None:
        """The source ``key`` switched to ``value`` at sim ``time``."""
        previous = self._last.get(key)
        if previous is not None:
            last_time, last_value = previous
            if time < last_time:
                raise TraceError(
                    f"histogram {self.name!r} observed time {time} before "
                    f"{last_time} for key {key!r}"
                )
            held = time - last_time
            if held > 0:
                self._weights[last_value] = (
                    self._weights.get(last_value, 0.0) + held
                )
        self._last[key] = (time, value)

    def add_weight(self, value: float, seconds: float) -> None:
        """Credit ``value`` with ``seconds`` of holding time directly.

        Used when merging already-finalized histograms (e.g. reducing
        worker-process snapshots back into a parent registry); normal
        instrumentation should call :meth:`observe` instead.
        """
        if seconds < 0:
            raise TraceError(
                f"histogram {self.name!r} cannot add negative weight "
                f"({seconds})"
            )
        if seconds:
            self._weights[value] = self._weights.get(value, 0.0) + seconds

    def finalize(self, time: float) -> None:
        """Credit every key's current value through ``time`` and close
        all open intervals.

        Accumulated weights persist, but per-key tracking resets — so
        one histogram may span several runs whose sim clocks each
        restart at zero (the seed-averaged cells of the experiment
        runner), accumulating cross-run totals.
        """
        for last_time, last_value in self._last.values():
            if time > last_time:
                self._weights[last_value] = (
                    self._weights.get(last_value, 0.0) + (time - last_time)
                )
        self._last.clear()

    @property
    def total_weight(self) -> float:
        """Summed holding time across all observed values."""
        return sum(self._weights.values())

    def weights(self) -> dict[float, float]:
        """Mapping of value -> seconds held (a copy)."""
        return dict(self._weights)

    def summary(self) -> HistogramSummary:
        """Time-weighted summary statistics.

        Raises:
            TraceError: when nothing has accumulated any weight yet.
        """
        if not self._weights:
            raise TraceError(
                f"histogram {self.name!r} has no weighted observations"
            )
        total = self.total_weight
        mean = (
            sum(value * weight for value, weight in self._weights.items())
            / total
        )
        return HistogramSummary(
            mean=mean,
            minimum=min(self._weights),
            maximum=max(self._weights),
            total_weight=total,
        )


class Timeseries:
    """Raw ``(sim_time, value)`` samples, in arrival order."""

    __slots__ = ("name", "samples")

    def __init__(self, name: str) -> None:
        self.name = name
        self.samples: list[tuple[float, float]] = []

    def sample(self, time: float, value: float) -> None:
        """Append one sample."""
        self.samples.append((time, value))

    def values(self) -> list[float]:
        """Just the sampled values, in order."""
        return [value for _, value in self.samples]

    def __len__(self) -> int:
        return len(self.samples)


class MetricsRegistry:
    """Get-or-create home for every metric of a run.

    Names are free-form dotted strings (``"p2p.segments_received"``,
    ``"net.link.hub->peer-1.utilization"``).  A name belongs to exactly
    one metric kind; reusing it across kinds raises.
    """

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, TimeWeightedHistogram] = {}
        self._timeseries: dict[str, Timeseries] = {}

    def _claim(self, name: str, kind: dict) -> None:
        for registry in (
            self._counters,
            self._gauges,
            self._histograms,
            self._timeseries,
        ):
            if registry is not kind and name in registry:
                raise TraceError(
                    f"metric name {name!r} already used by another kind"
                )

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        metric = self._counters.get(name)
        if metric is None:
            self._claim(name, self._counters)
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        metric = self._gauges.get(name)
        if metric is None:
            self._claim(name, self._gauges)
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> TimeWeightedHistogram:
        """The histogram called ``name`` (created on first use)."""
        metric = self._histograms.get(name)
        if metric is None:
            self._claim(name, self._histograms)
            metric = self._histograms[name] = TimeWeightedHistogram(name)
        return metric

    def timeseries(self, name: str) -> Timeseries:
        """The timeseries called ``name`` (created on first use)."""
        metric = self._timeseries.get(name)
        if metric is None:
            self._claim(name, self._timeseries)
            metric = self._timeseries[name] = Timeseries(name)
        return metric

    def counters(self) -> dict[str, Counter]:
        """All counters, by name (a copy)."""
        return dict(self._counters)

    def gauges(self) -> dict[str, Gauge]:
        """All gauges, by name (a copy)."""
        return dict(self._gauges)

    def histograms(self) -> dict[str, TimeWeightedHistogram]:
        """All histograms, by name (a copy)."""
        return dict(self._histograms)

    def all_timeseries(self) -> dict[str, Timeseries]:
        """All timeseries, by name (a copy)."""
        return dict(self._timeseries)

    def __len__(self) -> int:
        return (
            len(self._counters)
            + len(self._gauges)
            + len(self._histograms)
            + len(self._timeseries)
        )
