"""Stall root-cause attribution.

Classifies every completed stall span in a reconstructed timeline into
the paper's causal vocabulary, with the evidence window (event ids,
times, the blocking segment and flow) that justifies the verdict.

The taxonomy, in precedence order (first matching rule wins):

``churn-loss``
    The blocking fetch lost its source mid-flight: a request timeout,
    the source's departure, or the serving transfer's cancellation
    falls inside the stall's evidence window.
``oversized-segment``
    Section IV's condition: the blocking segment's size ``W`` exceeds
    ``B * T`` — more bytes than the pool's bandwidth could deliver in
    the playtime that was buffered when it was requested.  This is the
    signature failure of GOP/scene splicing's long segments.
``pool-undersubscription``
    The playhead reached the gap *before* the pool ever asked for the
    segment: Eq. 1's ``k`` (or the fixed policy) kept the request
    parked while capacity sat idle.
``seeder-bottleneck``
    The blocking transfer came from a seeder that was fanning out to
    :data:`SEEDER_CONCURRENCY_THRESHOLD` or more concurrent downloads
    while the stall ran — the origin, not the path, was the choke
    point.
``connection-overhead``
    Per-segment TCP setup dominated: handshake + slow start took at
    least as long as moving the data.  The signature failure of
    duration splicing's many tiny segments.
``startup``
    Fallback: nothing above matched (typically early-session stalls
    while the swarm warms up, or no fetch record survives in the
    trace).

Attribution is pure and deterministic: same trace in, same verdicts
out, regardless of how many worker processes produced sibling runs.
Only *complete* spans (both endpoints observed) are attributed, so a
run's cause histogram sums exactly to its
:class:`~repro.player.metrics.StreamingMetrics` stall count, which
counts the same paired stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from .timeline import PeerTimeline, SegmentFetch, StallSpan, TimelineSet

#: The documented taxonomy, in attribution precedence order.
STALL_CAUSES: tuple[str, ...] = (
    "churn-loss",
    "oversized-segment",
    "pool-undersubscription",
    "seeder-bottleneck",
    "connection-overhead",
    "startup",
)

#: Concurrent downloads from one seeder that mark it saturated.
SEEDER_CONCURRENCY_THRESHOLD = 4

_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class StallAttribution:
    """One stall's verdict plus the evidence that justifies it.

    Attributes:
        peer: the stalling peer.
        segment: the blocking segment.
        start: stall begin time.
        end: stall end time.
        duration: stall length, seconds.
        cause: one of :data:`STALL_CAUSES`.
        evidence: human-readable clauses supporting the verdict.
        event_ids: trace indices of the events cited as evidence,
            sorted ascending.
        window: the ``(from, to)`` sim-time span the evidence covers
            (request time through stall end when a fetch exists).
        blocking_source: the peer serving the blocking segment (""
            unknown).
        blocking_label: the blocking TCP transfer's label ("" unknown).
    """

    peer: str
    segment: int
    start: float
    end: float
    duration: float
    cause: str
    evidence: tuple[str, ...]
    event_ids: tuple[int, ...]
    window: tuple[float, float]
    blocking_source: str = ""
    blocking_label: str = ""


def attribute_stalls(timelines: TimelineSet) -> list[StallAttribution]:
    """Attribute every complete stall span in ``timelines``.

    Returns attributions ordered by (peer, start time) — a stable,
    process-count-independent order.
    """
    out: list[StallAttribution] = []
    for line in timelines.timelines.values():
        for span in line.stalls:
            if not span.complete:
                continue
            out.append(_attribute(span, line, timelines))
    out.sort(key=lambda a: (a.peer, a.start, a.segment))
    return out


def _attribute(
    span: StallSpan, line: PeerTimeline, timelines: TimelineSet
) -> StallAttribution:
    assert span.start is not None and span.end is not None
    start, end = span.start, span.end
    fetch = line.fetch_for(span.segment, before=end)

    evidence: list[str] = []
    event_ids: set[int] = set()
    if span.start_event_id >= 0:
        event_ids.add(span.start_event_id)
    if span.end_event_id >= 0:
        event_ids.add(span.end_event_id)

    window_from = start
    if fetch is not None and fetch.requested_at is not None:
        window_from = min(window_from, fetch.requested_at)
        if fetch.request_event_id >= 0:
            event_ids.add(fetch.request_event_id)
    window = (window_from, end)

    source = (fetch.source if fetch is not None else None) or ""
    label = ""
    transfer = None
    if fetch is not None:
        for record in timelines.transfers:
            if (
                record.dst == span.peer
                and record.segment == span.segment
                and record.overlaps(window_from, end)
            ):
                transfer = record
                label = record.label
                break

    def verdict(cause: str) -> StallAttribution:
        return StallAttribution(
            peer=span.peer,
            segment=span.segment,
            start=start,
            end=end,
            duration=end - start,
            cause=cause,
            evidence=tuple(evidence),
            event_ids=tuple(sorted(event_ids)),
            window=window,
            blocking_source=source,
            blocking_label=label,
        )

    # 1. churn-loss: the fetch lost its source inside the window.
    if fetch is not None:
        retry = next(
            (
                r
                for r in fetch.retries
                if window_from - _EPS <= r.time <= end + _EPS
            ),
            None,
        )
        if retry is not None:
            evidence.append(
                f"request to {retry.source!r} timed out at "
                f"t={retry.time:.3f} and was re-issued to "
                f"{retry.retry_source!r}"
            )
            event_ids.add(retry.event_id)
            return verdict("churn-loss")
        if source:
            src_line = timelines.timelines.get(source)
            if (
                src_line is not None
                and src_line.departed_at is not None
                and window_from - _EPS
                <= src_line.departed_at
                <= end + _EPS
            ):
                evidence.append(
                    f"source {source!r} departed at "
                    f"t={src_line.departed_at:.3f} while serving the "
                    "blocking segment"
                )
                return verdict("churn-loss")
        if (
            transfer is not None
            and transfer.cancelled
            and transfer.ended_at is not None
            and window_from - _EPS <= transfer.ended_at <= end + _EPS
        ):
            evidence.append(
                f"blocking transfer {transfer.label!r} was cancelled "
                f"at t={transfer.ended_at:.3f}"
            )
            return verdict("churn-loss")

    # 2. oversized-segment: W > B*T at request time (Section IV).
    expected = span.expected_size
    if expected <= 0 and fetch is not None:
        if fetch.expected_size > 0:
            expected = fetch.expected_size
        elif fetch.size is not None and fetch.size > 0:
            expected = fetch.size
    decision_time = (
        fetch.requested_at
        if fetch is not None and fetch.requested_at is not None
        else start
    )
    decision = line.pool_decision_at(decision_time)
    if expected > 0 and decision is not None:
        budget = decision.bandwidth * decision.buffered_playtime
        if decision.buffered_playtime > 0 and expected > budget + _EPS:
            evidence.append(
                f"blocking segment weighs W={expected:.0f} B but the "
                f"pool could deliver only B*T="
                f"{decision.bandwidth:.0f}*"
                f"{decision.buffered_playtime:.2f}={budget:.0f} B "
                "before the buffer drained (Section IV)"
            )
            event_ids.add(decision.event_id)
            return verdict("oversized-segment")

    # 3. pool-undersubscription: the pool asked only after the
    #    playhead had already reached the gap.
    if fetch is not None and fetch.requested_at is not None:
        if fetch.requested_at >= start - _EPS:
            evidence.append(
                f"segment {span.segment} was first requested at "
                f"t={fetch.requested_at:.3f}, after the stall began at "
                f"t={start:.3f} — the pool had not subscribed it"
            )
            return verdict("pool-undersubscription")

    # 4. seeder-bottleneck: the origin was fanning out to many peers.
    if source.startswith("seeder"):
        probe_from = (
            fetch.requested_at
            if fetch is not None and fetch.requested_at is not None
            else start
        )
        concurrent = [
            record
            for record in timelines.transfers_from(source)
            if record.overlaps(probe_from, end)
        ]
        if len(concurrent) >= SEEDER_CONCURRENCY_THRESHOLD:
            evidence.append(
                f"seeder {source!r} served {len(concurrent)} "
                "concurrent transfers during the stall window "
                f"(threshold {SEEDER_CONCURRENCY_THRESHOLD})"
            )
            return verdict("seeder-bottleneck")

    # 5. connection-overhead: setup >= data time on the blocking flow.
    if (
        fetch is not None
        and fetch.requested_at is not None
        and fetch.transfer_started_at is not None
        and fetch.received_at is not None
    ):
        setup = fetch.transfer_started_at - fetch.requested_at
        data = fetch.received_at - fetch.transfer_started_at
        if setup >= data - _EPS and setup > 0:
            evidence.append(
                f"connection setup took {setup:.3f}s vs {data:.3f}s "
                "of data transfer on the blocking flow — handshake "
                "and slow start dominated"
            )
            if fetch.received_event_id >= 0:
                event_ids.add(fetch.received_event_id)
            return verdict("connection-overhead")

    # 6. startup: nothing above matched.
    if fetch is None:
        evidence.append(
            "no surviving fetch record for the blocking segment; "
            "early-session warm-up assumed"
        )
    else:
        evidence.append(
            "no churn, size, pool, seeder, or setup signature matched; "
            "residual (warm-up or general bandwidth scarcity)"
        )
    return verdict("startup")


def cause_histogram(
    attributions: list[StallAttribution],
) -> dict[str, int]:
    """Count attributions per cause, keyed in taxonomy order.

    Every cause appears, zero-valued when unseen, so tables render
    with a stable shape.
    """
    histogram = {cause: 0 for cause in STALL_CAUSES}
    for attribution in attributions:
        histogram[attribution.cause] += 1
    return histogram
