"""Event-loop profiling: events fired and wall-time per handler category.

Attached to a :class:`~repro.net.engine.Simulator`, the profile times
every callback the event loop fires and buckets it by the handler's
defining module (``net.tcp``, ``p2p.leecher``, ``player.player`` …).
This answers the optimisation question the ROADMAP poses — *where does
a simulated run actually spend its host time?* — without touching any
simulated clock: profiling changes wall time only, never results.
"""

from __future__ import annotations

from typing import Callable


def handler_category(callback: Callable[..., object]) -> str:
    """Bucket a callback by its defining module.

    ``repro.p2p.leecher`` becomes ``p2p.leecher``; callables from
    outside the package keep their full module path; anything without
    a module lands in ``"other"``.
    """
    func = getattr(callback, "__func__", callback)
    module = getattr(func, "__module__", None)
    if not module:
        return "other"
    prefix = "repro."
    if module.startswith(prefix):
        return module[len(prefix):]
    return module


class EngineProfile:
    """Accumulated per-category event counts and wall-clock seconds."""

    __slots__ = ("counts", "wall_seconds", "_cache")

    def __init__(self) -> None:
        self.counts: dict[str, int] = {}
        self.wall_seconds: dict[str, float] = {}
        self._cache: dict[object, str] = {}

    def record(
        self, callback: Callable[..., object], seconds: float
    ) -> None:
        """Credit one fired event to ``callback``'s category."""
        func = getattr(callback, "__func__", callback)
        category = self._cache.get(func)
        if category is None:
            category = self._cache[func] = handler_category(callback)
        self.counts[category] = self.counts.get(category, 0) + 1
        self.wall_seconds[category] = (
            self.wall_seconds.get(category, 0.0) + seconds
        )

    def snapshot(self) -> dict:
        """Plain-dict copy of the totals (picklable, JSON-encodable).

        The shape (``{"counts": ..., "wall_seconds": ...}``) is what
        benchmark artifacts embed and what pool workers ship back to
        the parent for :meth:`merge`.
        """
        return {
            "counts": dict(self.counts),
            "wall_seconds": dict(self.wall_seconds),
        }

    def merge(
        self,
        counts: dict[str, int],
        wall_seconds: dict[str, float],
    ) -> None:
        """Add another profile's totals (e.g. a pool worker's) here."""
        for category, count in counts.items():
            self.counts[category] = (
                self.counts.get(category, 0) + count
            )
        for category, seconds in wall_seconds.items():
            self.wall_seconds[category] = (
                self.wall_seconds.get(category, 0.0) + seconds
            )

    @property
    def events_fired(self) -> int:
        """Total callbacks timed across all categories."""
        return sum(self.counts.values())

    @property
    def total_wall_seconds(self) -> float:
        """Total host seconds spent inside handlers."""
        return sum(self.wall_seconds.values())

    def publish(self, registry) -> None:
        """Copy the totals into a metrics registry.

        Writes ``engine.events.<category>`` counters and
        ``engine.wall_seconds.<category>`` gauges.
        """
        for category, count in self.counts.items():
            counter = registry.counter(f"engine.events.{category}")
            counter.inc(count - counter.value)
        for category, seconds in self.wall_seconds.items():
            registry.gauge(f"engine.wall_seconds.{category}").set(seconds)

    def render(self) -> str:
        """Human-readable table, hottest category first."""
        if not self.counts:
            return "engine profile: no events recorded"
        lines = [
            f"{'handler category':<24s} {'events':>10s} "
            f"{'wall ms':>10s} {'us/event':>9s}"
        ]
        for category in sorted(
            self.counts, key=lambda c: -self.wall_seconds[c]
        ):
            count = self.counts[category]
            wall = self.wall_seconds[category]
            lines.append(
                f"{category:<24s} {count:>10d} {wall * 1e3:>10.1f} "
                f"{wall / count * 1e6:>9.1f}"
            )
        return "\n".join(lines)
