"""Cohort-aware metric aggregation for the vectorized swarm tiers.

The exact engine increments counters one peer-event at a time; the
``repro.p2p.scale`` backends advance whole cohorts, so their counters
arrive pre-aggregated.  This module maps per-cohort summaries onto the
exact engine's counter names — weighted by cohort population — so
``repro.obs`` consumers (`repro analyze`, run manifests, sweeps) read
identical surfaces from every fidelity tier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .metrics import MetricsRegistry


@dataclass(frozen=True, slots=True)
class CohortSummary:
    """One cohort's end-of-run totals, before population weighting.

    Attributes:
        peers: number of peers the cohort represents.
        segments_received: contiguous segments each member downloaded.
        bytes_downloaded: payload bytes each member downloaded.
        stalls: completed stall events each member experienced.
        stall_seconds: total stalled seconds per member.
        started: whether the cohort's players left the waiting state.
        finished: whether the cohort's players reached the last frame.
    """

    peers: int
    segments_received: int
    bytes_downloaded: float
    stalls: int
    stall_seconds: float
    started: bool
    finished: bool


def publish_cohort_aggregates(
    registry: "MetricsRegistry",
    summaries: Iterable[CohortSummary],
    departures: int = 0,
) -> None:
    """Publish cohort totals under the exact engine's counter names.

    Every per-peer counter the exact swarm increments event-by-event
    (``swarm.joins``, ``p2p.segments_received``, ``p2p.bytes_downloaded``,
    ``player.*``) is bumped once here, weighted by cohort population,
    so dashboards and manifests aggregate identically across fidelity
    tiers.

    Args:
        registry: the run's metrics registry.
        summaries: one :class:`CohortSummary` per cohort.
        departures: peers that left the swarm before the run ended.
    """
    joins = 0
    segments = 0
    bytes_downloaded = 0.0
    stalls = 0
    stall_seconds = 0.0
    startups = 0
    finished = 0
    for cohort in summaries:
        joins += cohort.peers
        segments += cohort.peers * cohort.segments_received
        bytes_downloaded += cohort.peers * cohort.bytes_downloaded
        stalls += cohort.peers * cohort.stalls
        stall_seconds += cohort.peers * cohort.stall_seconds
        if cohort.started:
            startups += cohort.peers
        if cohort.finished:
            finished += cohort.peers
    registry.counter("swarm.joins").inc(joins)
    if departures:
        registry.counter("swarm.departures").inc(departures)
    registry.counter("p2p.segments_received").inc(segments)
    registry.counter("p2p.bytes_downloaded").inc(bytes_downloaded)
    registry.counter("player.stalls").inc(stalls)
    registry.counter("player.stall_seconds").inc(stall_seconds)
    registry.counter("player.startups").inc(startups)
    registry.counter("player.finished").inc(finished)
