"""Per-peer timeline reconstruction from a trace.

The analyzer's first pass: turn a flat event stream back into what
each leecher actually *lived through* — an ordered lifecycle of
segment request -> TCP transfer -> piece receipt -> playback state —
plus the swarm-level transfer ledger the attribution pass joins
against.

Reconstruction is defensive on purpose.  Real traces are imperfect
(the tracer's ring buffer wraps, category filters drop layers, a run's
safety cap cuts sessions mid-stall), so event-ordering invariants are
*validated* and violations reported in the result rather than raised:
a malformed trace yields a partial timeline with an explanation, never
a crash.  :class:`TimelineSet.truncated` flags a trace whose head fell
off a capacity-bounded ring buffer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from .events import TraceEvent

#: Tolerance when comparing two simulator timestamps.
_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class InvariantViolation:
    """One event-ordering rule a trace broke.

    Attributes:
        time: sim time of the offending event.
        peer: the peer involved ("" for swarm-wide rules).
        rule: short rule name (e.g. ``"stall-end-unmatched"``).
        detail: human-readable explanation.
        event_id: index of the offending event in the trace.
    """

    time: float
    peer: str
    rule: str
    detail: str
    event_id: int


@dataclass(slots=True)
class RequestRetry:
    """One timeout-driven re-request of an in-flight segment.

    Attributes:
        time: when the timeout fired.
        source: the holder that went silent.
        retry_source: the replacement holder.
        event_id: trace index of the ``RequestTimedOut`` event.
    """

    time: float
    source: str
    retry_source: str
    event_id: int


@dataclass(slots=True)
class SegmentFetch:
    """One segment's journey from request to receipt for one peer.

    Attributes:
        peer: the requesting leecher.
        segment: segment index.
        requested_at: first request time (None for unrequested
            duplicates, which the leecher records with ``wait=-1``).
        source: holder of the most recent request.
        urgent: whether any request for it was playback-critical.
        expected_size: manifest size from the request event (-1.0 when
            the trace predates the enrichment).
        retries: timeout re-requests, in order.
        transfer_started_at: when the serving TCP transfer finished
            its handshake and began moving data (None if never seen).
        received_at: when the piece fully arrived (None if in flight
            when the trace ended).
        size: received payload bytes (None until received).
        wait: request-to-arrival seconds as the leecher recorded it.
        request_event_id: trace index of the first request event.
        received_event_id: trace index of the receipt event.
    """

    peer: str
    segment: int
    requested_at: float | None
    source: str | None
    urgent: bool = False
    expected_size: float = -1.0
    retries: list[RequestRetry] = field(default_factory=list)
    transfer_started_at: float | None = None
    received_at: float | None = None
    size: float | None = None
    wait: float | None = None
    request_event_id: int = -1
    received_event_id: int = -1

    @property
    def pending(self) -> bool:
        """Whether the fetch was still in flight when the trace ended."""
        return self.received_at is None


@dataclass(slots=True)
class StallSpan:
    """One playback interruption, as the trace recorded it.

    Attributes:
        peer: the stalling peer.
        segment: the blocking segment.
        start: stall begin time (None when the ``StallStarted`` fell
            off a truncated trace).
        end: stall end time (None when the run was cut mid-stall).
        expected_size: the blocking segment's manifest size (-1.0
            unknown).
        start_event_id: trace index of ``StallStarted`` (-1 missing).
        end_event_id: trace index of ``StallEnded`` (-1 missing).
    """

    peer: str
    segment: int
    start: float | None
    end: float | None = None
    expected_size: float = -1.0
    start_event_id: int = -1
    end_event_id: int = -1

    @property
    def complete(self) -> bool:
        """Whether both endpoints of the stall were observed."""
        return self.start is not None and self.end is not None

    @property
    def duration(self) -> float | None:
        """Stall length in seconds (None unless complete)."""
        if self.start is None or self.end is None:
            return None
        return self.end - self.start


@dataclass(frozen=True, slots=True)
class PoolDecision:
    """One Eq. 1 (or fixed-policy) pool resize.

    Attributes:
        time: decision time.
        size: the new pool size ``k``.
        buffered_playtime: Eq. 1's ``T`` at decision time.
        bandwidth: Eq. 1's ``B`` at decision time.
        event_id: trace index of the ``PoolResized`` event.
    """

    time: float
    size: int
    buffered_playtime: float
    bandwidth: float
    event_id: int


@dataclass(slots=True)
class TransferRecord:
    """One TCP transfer's data phase, parsed from its label.

    Labels follow the peer layer's ``src->dst#segment`` convention;
    transfers with unparseable labels are kept with ``segment=-1`` so
    concurrency counts stay correct.

    Attributes:
        label: the transfer label.
        src: serving peer.
        dst: receiving peer.
        segment: segment index (-1 when not encoded in the label).
        started_at: handshake-done / first-data time.
        ended_at: completion or cancellation time (None if open).
        size: wire bytes (None until completed).
        cancelled: whether the transfer was aborted.
    """

    label: str
    src: str
    dst: str
    segment: int
    started_at: float
    ended_at: float | None = None
    size: float | None = None
    cancelled: bool = False

    def overlaps(self, start: float, end: float) -> bool:
        """Whether the data phase intersects ``[start, end]``."""
        ended = self.ended_at if self.ended_at is not None else end
        return self.started_at <= end + _EPS and ended >= start - _EPS


@dataclass(slots=True)
class PeerTimeline:
    """One peer's reconstructed session.

    Attributes:
        peer: the peer's name.
        joined: join time (None if the join fell off the trace).
        manifest_at: manifest arrival time.
        playback_started_at: first-frame time.
        startup_time: join-to-first-frame seconds as traced.
        finished_at: playback completion time.
        departed_at: churn-out time.
        fetches: segment fetches in first-request order.
        stalls: stall spans in start order.
        pool_decisions: Eq. 1 decisions in time order.
    """

    peer: str
    joined: float | None = None
    manifest_at: float | None = None
    playback_started_at: float | None = None
    startup_time: float | None = None
    finished_at: float | None = None
    departed_at: float | None = None
    fetches: list[SegmentFetch] = field(default_factory=list)
    stalls: list[StallSpan] = field(default_factory=list)
    pool_decisions: list[PoolDecision] = field(default_factory=list)

    def fetch_for(
        self, segment: int, before: float | None = None
    ) -> SegmentFetch | None:
        """The latest fetch of ``segment`` requested at/before ``before``."""
        best: SegmentFetch | None = None
        for fetch in self.fetches:
            if fetch.segment != segment:
                continue
            if (
                before is not None
                and fetch.requested_at is not None
                and fetch.requested_at > before + _EPS
            ):
                continue
            best = fetch
        return best

    def pool_decision_at(self, time: float) -> PoolDecision | None:
        """The pool decision in force at ``time`` (None before any)."""
        current: PoolDecision | None = None
        for decision in self.pool_decisions:
            if decision.time > time + _EPS:
                break
            current = decision
        return current

    def inflight_at(self, time: float) -> int:
        """Requests in flight at ``time`` (requested, not yet arrived)."""
        count = 0
        for fetch in self.fetches:
            if fetch.requested_at is None or fetch.requested_at > time:
                continue
            if fetch.received_at is None or fetch.received_at > time:
                count += 1
        return count


@dataclass(slots=True)
class TimelineSet:
    """Everything the timeline pass reconstructed from one trace.

    Attributes:
        timelines: per-peer timelines, by peer name.
        transfers: every TCP transfer seen, in start order.
        violations: event-ordering invariants the trace broke.
        truncated: whether the trace's head was lost (ring-buffer
            wraparound: a non-empty trace with no ``SimulationStarted``).
        notes: human-readable caveats about the reconstruction.
        first_time: earliest event time (0.0 for an empty trace).
        last_time: latest event time.
        event_count: events consumed.
    """

    timelines: dict[str, PeerTimeline]
    transfers: list[TransferRecord]
    violations: list[InvariantViolation]
    truncated: bool
    notes: list[str]
    first_time: float = 0.0
    last_time: float = 0.0
    event_count: int = 0

    def transfers_from(self, src: str) -> list[TransferRecord]:
        """Transfers served by ``src``, in start order."""
        return [t for t in self.transfers if t.src == src]


def parse_transfer_label(label: str) -> tuple[str, str, int] | None:
    """Split a ``src->dst#segment`` transfer label.

    Returns ``None`` when the label does not follow the convention
    (e.g. transfers started outside the peer layer).
    """
    head, sep, seg = label.rpartition("#")
    if not sep:
        return None
    src, sep, dst = head.partition("->")
    if not sep or not src or not dst:
        return None
    try:
        return src, dst, int(seg)
    except ValueError:
        return None


def build_timelines(
    events: Sequence[TraceEvent] | Iterable[TraceEvent],
    truncated: bool = False,
) -> TimelineSet:
    """Reconstruct per-peer timelines from a trace.

    Never raises on a structurally odd trace: ordering problems become
    :class:`InvariantViolation` entries and partial sessions are
    flagged through ``truncated``/``notes``.

    Args:
        events: the trace, oldest first (list or any iterable).
        truncated: caller-supplied hint that the trace head was
            dropped (e.g. a live tracer whose ring buffer filled);
            OR-ed with the trace's own evidence of truncation.
    """
    events = list(events)
    timelines: dict[str, PeerTimeline] = {}
    transfers: list[TransferRecord] = []
    open_transfers: dict[str, TransferRecord] = {}
    open_stalls: dict[str, StallSpan] = {}
    violations: list[InvariantViolation] = []
    notes: list[str] = []

    saw_start = any(e.name == "SimulationStarted" for e in events)
    truncated = truncated or (bool(events) and not saw_start)
    if truncated:
        notes.append(
            "trace is truncated (ring-buffer wraparound dropped its "
            "head); timelines and attribution cover only the retained "
            "window"
        )

    def timeline(peer: str) -> PeerTimeline:
        line = timelines.get(peer)
        if line is None:
            line = timelines[peer] = PeerTimeline(peer=peer)
        return line

    def violate(
        event_id: int, time: float, peer: str, rule: str, detail: str
    ) -> None:
        violations.append(
            InvariantViolation(
                time=time,
                peer=peer,
                rule=rule,
                detail=detail,
                event_id=event_id,
            )
        )

    previous_time = None
    for index, event in enumerate(events):
        name = event.name
        time = event.time
        if previous_time is not None and time < previous_time - _EPS:
            violate(
                index,
                time,
                getattr(event, "peer", "") or "",
                "time-order",
                f"{name} at t={time:.6g} precedes previous event at "
                f"t={previous_time:.6g}",
            )
        previous_time = max(previous_time or time, time)

        peer = getattr(event, "peer", None)
        if peer is not None:
            line = timeline(peer)
            if (
                line.departed_at is not None
                and name != "PeerJoined"
                and time > line.departed_at + _EPS
            ):
                violate(
                    index,
                    time,
                    peer,
                    "post-departure",
                    f"{name} for {peer!r} at t={time:.6g} after its "
                    f"departure at t={line.departed_at:.6g}",
                )

        if name == "PeerJoined":
            line = timeline(event.peer)
            if line.joined is None:
                line.joined = time
        elif name == "PeerDeparted":
            timeline(event.peer).departed_at = time
        elif name == "ManifestReceived":
            line = timeline(event.peer)
            if line.manifest_at is None:
                line.manifest_at = time
        elif name == "SegmentRequested":
            line = timeline(event.peer)
            fetch = line.fetch_for(event.segment)
            if fetch is not None and fetch.pending:
                # A re-request of an in-flight segment (timeout path);
                # the RequestTimedOut event carries the retry detail,
                # here we just track the current source.
                fetch.source = event.source
                fetch.urgent = fetch.urgent or event.urgent
            else:
                line.fetches.append(
                    SegmentFetch(
                        peer=event.peer,
                        segment=event.segment,
                        requested_at=time,
                        source=event.source,
                        urgent=event.urgent,
                        expected_size=event.expected_size,
                        request_event_id=index,
                    )
                )
        elif name == "RequestTimedOut":
            line = timeline(event.peer)
            fetch = line.fetch_for(event.segment)
            if fetch is not None and fetch.pending:
                fetch.retries.append(
                    RequestRetry(
                        time=time,
                        source=event.source,
                        retry_source=event.retry_source,
                        event_id=index,
                    )
                )
            elif not truncated:
                violate(
                    index,
                    time,
                    event.peer,
                    "timeout-without-request",
                    f"RequestTimedOut for segment {event.segment} with "
                    "no pending request",
                )
        elif name == "PieceReceived":
            line = timeline(event.peer)
            fetch = line.fetch_for(event.segment)
            if fetch is None or not fetch.pending:
                # Unrequested duplicate (the leecher records wait=-1)
                # or the request fell off a truncated trace.
                fetch = SegmentFetch(
                    peer=event.peer,
                    segment=event.segment,
                    requested_at=None,
                    source=event.source,
                )
                line.fetches.append(fetch)
            fetch.received_at = time
            fetch.size = event.size
            fetch.wait = event.wait
            fetch.received_event_id = index
            if fetch.source is None:
                fetch.source = event.source
        elif name == "PoolResized":
            timeline(event.peer).pool_decisions.append(
                PoolDecision(
                    time=time,
                    size=event.size,
                    buffered_playtime=event.buffered_playtime,
                    bandwidth=event.bandwidth,
                    event_id=index,
                )
            )
        elif name == "PlaybackStarted":
            line = timeline(event.peer)
            if line.playback_started_at is None:
                line.playback_started_at = time
                line.startup_time = event.startup_time
        elif name == "StallStarted":
            line = timeline(event.peer)
            open_span = open_stalls.get(event.peer)
            if open_span is not None:
                violate(
                    index,
                    time,
                    event.peer,
                    "stall-start-while-stalled",
                    f"StallStarted at t={time:.6g} while the stall on "
                    f"segment {open_span.segment} is still open",
                )
            span = StallSpan(
                peer=event.peer,
                segment=event.segment,
                start=time,
                expected_size=event.expected_size,
                start_event_id=index,
            )
            open_stalls[event.peer] = span
            line.stalls.append(span)
        elif name == "StallEnded":
            line = timeline(event.peer)
            span = open_stalls.pop(event.peer, None)
            if span is None:
                if not truncated:
                    violate(
                        index,
                        time,
                        event.peer,
                        "stall-end-unmatched",
                        f"StallEnded for segment {event.segment} at "
                        f"t={time:.6g} has no matching StallStarted",
                    )
                span = StallSpan(
                    peer=event.peer,
                    segment=event.segment,
                    start=None,
                    expected_size=event.expected_size,
                )
                line.stalls.append(span)
            elif span.segment != event.segment:
                violate(
                    index,
                    time,
                    event.peer,
                    "stall-segment-mismatch",
                    f"StallEnded names segment {event.segment} but the "
                    f"open stall waits on segment {span.segment}",
                )
            span.end = time
            span.end_event_id = index
            if span.expected_size < 0:
                span.expected_size = event.expected_size
        elif name == "PlaybackFinished":
            line = timeline(event.peer)
            line.finished_at = time
            if event.peer in open_stalls:
                violate(
                    index,
                    time,
                    event.peer,
                    "finish-while-stalled",
                    "PlaybackFinished while a stall is still open",
                )
        elif name == "TransferStarted":
            parsed = parse_transfer_label(event.label)
            src, dst, segment = parsed or ("", "", -1)
            record = TransferRecord(
                label=event.label,
                src=src,
                dst=dst,
                segment=segment,
                started_at=time,
                size=event.size,
            )
            transfers.append(record)
            open_transfers[event.label] = record
            if parsed is not None:
                line = timelines.get(dst)
                if line is not None:
                    fetch = line.fetch_for(segment)
                    if (
                        fetch is not None
                        and fetch.pending
                        and fetch.transfer_started_at is None
                    ):
                        fetch.transfer_started_at = time
        elif name in ("TransferCompleted", "TransferCancelled"):
            record = open_transfers.pop(event.label, None)
            if record is not None:
                record.ended_at = time
                record.cancelled = name == "TransferCancelled"
                if name == "TransferCompleted":
                    record.size = event.size

    unpaired = sum(
        1
        for line in timelines.values()
        for span in line.stalls
        if not span.complete
    )
    if unpaired:
        notes.append(
            f"{unpaired} stall span(s) missing an endpoint (run cut "
            "mid-stall or trace truncated); only complete stalls are "
            "attributed"
        )

    first_time = events[0].time if events else 0.0
    last_time = previous_time if previous_time is not None else 0.0
    return TimelineSet(
        timelines=dict(sorted(timelines.items())),
        transfers=transfers,
        violations=violations,
        truncated=truncated,
        notes=notes,
        first_time=first_time,
        last_time=last_time,
        event_count=len(events),
    )
