"""The run-scoped observability context handed through the stack.

One :class:`Observability` object bundles everything a run may record
into — a tracer, a metrics registry, and an optional engine profile —
so constructors take a single optional argument instead of three.  The
absent context (``obs=None`` everywhere) is the fast path: components
fall back to :data:`~repro.obs.tracer.NULL_TRACER` and skip registry
publishing entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .metrics import MetricsRegistry
from .profile import EngineProfile
from .tracer import NULL_TRACER, EventTracer, NullTracer, Tracer


@dataclass
class Observability:
    """What one run records.

    Attributes:
        tracer: the event tracer (disabled by default).
        registry: the metrics registry (always present — publishing is
            gated by the component-side ``metrics is not None`` check,
            which is only wired up when a context is passed at all).
        profile: optional event-loop profile; ``None`` disables
            per-handler wall-clock timing.
    """

    tracer: Tracer = NULL_TRACER
    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    profile: EngineProfile | None = None

    @classmethod
    def tracing(
        cls,
        capacity: int | None = None,
        categories: Iterable[str] | None = None,
        min_severity: str = "debug",
        profile: bool = False,
    ) -> "Observability":
        """A context with event tracing (and optionally profiling) on.

        Args:
            capacity: tracer ring-buffer bound (``None`` = unbounded).
            categories: restrict tracing to these categories.
            min_severity: drop events below this severity.
            profile: also time event-loop handlers by category.
        """
        return cls(
            tracer=EventTracer(
                capacity=capacity,
                categories=categories,
                min_severity=min_severity,
            ),
            profile=EngineProfile() if profile else None,
        )

    @classmethod
    def metrics_only(cls) -> "Observability":
        """A context that aggregates metrics but records no events."""
        return cls(tracer=NULL_TRACER)

    @property
    def tracing_enabled(self) -> bool:
        """Whether the tracer records events."""
        return self.tracer.enabled

    def events(self) -> list:
        """The tracer's retained events (empty when disabled)."""
        return self.tracer.events()


__all__ = ["Observability", "NullTracer", "EventTracer", "NULL_TRACER"]
