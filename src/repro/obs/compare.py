"""``repro compare``: diff two benchmark artifacts, gate on regression.

Given a baseline and a candidate ``BENCH_*.json`` (see
:mod:`repro.obs.bench`), this module matches cases by id, computes
per-metric deltas, and classifies each as **regression**,
**improvement**, or **neutral** against a noise-aware threshold:

* the caller's ``--threshold`` percentage is the floor;
* when a case was timed over several rounds, the threshold widens to
  three relative standard *errors* (stdev / sqrt(rounds)) of whichever
  artifact is noisier — a 12% slowdown inside a measurement whose
  aggregate is only pinned to ±6% is not a verdict.

Direction matters: wall-time metrics regress *upward*, throughput
metrics (``events_per_sec``) regress *downward*.  Workload digests are
cross-checked so "same case id, different workload" is reported as
incomparable instead of being scored.

The intended CI shape: run a quick suite, ``repro compare`` it against
the committed artifact, and fail the job on exit code 1.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import ArtifactError

#: Metrics compared by default, in report order.
DEFAULT_METRICS = ("best_s", "events_per_sec")

#: Metrics that live under ``case["timing"]``.
TIMING_METRICS = frozenset({"best_s", "mean_s", "stdev_s"})

#: Metrics where a larger candidate value is an improvement.
HIGHER_IS_BETTER = frozenset({"events_per_sec"})

#: Noise widening: this many relative standard errors.
NOISE_SIGMAS = 3.0

VERDICT_REGRESSION = "regression"
VERDICT_IMPROVEMENT = "improvement"
VERDICT_NEUTRAL = "neutral"


@dataclass(frozen=True, slots=True)
class MetricDelta:
    """One (case, metric) comparison.

    Attributes:
        case_id: the matched case.
        metric: metric name (``best_s``, ``events_per_sec``, or a
            ``metrics.<name>`` scalar).
        baseline: baseline value.
        candidate: candidate value.
        delta_pct: percentage change, candidate vs baseline.
        threshold_pct: effective (noise-widened) threshold applied.
        verdict: ``regression`` / ``improvement`` / ``neutral``.
    """

    case_id: str
    metric: str
    baseline: float
    candidate: float
    delta_pct: float
    threshold_pct: float
    verdict: str


@dataclass(frozen=True, slots=True)
class Comparison:
    """The full verdict of one artifact pair.

    Attributes:
        baseline_suite: suite of the baseline artifact.
        candidate_suite: suite of the candidate artifact.
        rows: per-(case, metric) deltas, in case order.
        missing: case ids present only in the baseline.
        added: case ids present only in the candidate.
        notes: comparability caveats (suite/quick/env mismatches,
            digest conflicts, unscorable values).
    """

    baseline_suite: str
    candidate_suite: str
    rows: tuple[MetricDelta, ...]
    missing: tuple[str, ...]
    added: tuple[str, ...]
    notes: tuple[str, ...]

    @property
    def regressions(self) -> tuple[MetricDelta, ...]:
        return tuple(
            row for row in self.rows if row.verdict == VERDICT_REGRESSION
        )

    @property
    def improvements(self) -> tuple[MetricDelta, ...]:
        return tuple(
            row
            for row in self.rows
            if row.verdict == VERDICT_IMPROVEMENT
        )

    @property
    def ok(self) -> bool:
        """Whether nothing regressed (the CI gate)."""
        return not self.regressions


def _metric_value(case: dict, metric: str) -> float | None:
    if metric in TIMING_METRICS:
        value = case["timing"].get(metric)
    elif metric.startswith("metrics."):
        value = case["metrics"].get(metric[len("metrics."):])
    else:
        value = case.get(metric)
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _noise_pct(case: dict) -> float:
    """Relative timing noise of one case, as a percentage.

    The headline numbers (``best_s``, ``mean_s``) are aggregates over
    ``rounds`` samples, so their uncertainty is the standard *error*,
    not the per-round standard deviation: stdev / sqrt(rounds).  A
    400-round budget case with 40% per-round jitter still pins its
    aggregate to ~2%, and must not get a 120%-wide free pass.
    """
    timing = case["timing"]
    rounds = timing["rounds"]
    if rounds < 2 or timing["mean_s"] <= 0:
        return 0.0
    stderr = timing["stdev_s"] / math.sqrt(rounds)
    return 100.0 * NOISE_SIGMAS * stderr / timing["mean_s"]


def compare_artifacts(
    baseline: dict,
    candidate: dict,
    threshold_pct: float = 10.0,
    metrics: Sequence[str] = DEFAULT_METRICS,
) -> Comparison:
    """Compare two validated artifacts (see module docstring).

    Args:
        baseline: the reference artifact (usually committed).
        candidate: the freshly measured artifact.
        threshold_pct: minimum percentage change that counts.
        metrics: which metrics to score; timing names, top-level case
            fields, or ``metrics.<name>`` scalars.

    Raises:
        ArtifactError: non-positive threshold, or no metric given.
    """
    if threshold_pct <= 0:
        raise ArtifactError(
            f"threshold must be positive: {threshold_pct}"
        )
    if not metrics:
        raise ArtifactError("at least one metric is required")

    notes: list[str] = []
    if baseline["suite"] != candidate["suite"]:
        notes.append(
            f"comparing different suites: {baseline['suite']!r} vs "
            f"{candidate['suite']!r}"
        )
    if baseline["quick"] != candidate["quick"]:
        notes.append(
            "quick/full mismatch: baseline "
            f"{'quick' if baseline['quick'] else 'full'}, candidate "
            f"{'quick' if candidate['quick'] else 'full'}"
        )
    base_env = baseline["manifest"]["env"]
    cand_env = candidate["manifest"]["env"]
    for key in ("python", "platform", "usable_cores"):
        if base_env.get(key) != cand_env.get(key):
            notes.append(
                f"environment differs ({key}): "
                f"{base_env.get(key)!r} vs {cand_env.get(key)!r}"
            )

    base_cases = {case["id"]: case for case in baseline["cases"]}
    cand_cases = {case["id"]: case for case in candidate["cases"]}
    missing = tuple(
        case_id for case_id in base_cases if case_id not in cand_cases
    )
    added = tuple(
        case_id for case_id in cand_cases if case_id not in base_cases
    )

    rows: list[MetricDelta] = []
    for case_id, base_case in base_cases.items():
        cand_case = cand_cases.get(case_id)
        if cand_case is None:
            continue
        base_digest = base_case.get("digest")
        cand_digest = cand_case.get("digest")
        if (
            base_digest is not None
            and cand_digest is not None
            and base_digest != cand_digest
        ):
            notes.append(
                f"case {case_id!r}: workload digests differ "
                f"({base_digest} vs {cand_digest}); not scored"
            )
            continue
        noise = max(_noise_pct(base_case), _noise_pct(cand_case))
        effective = max(threshold_pct, noise)
        for metric in metrics:
            base_value = _metric_value(base_case, metric)
            cand_value = _metric_value(cand_case, metric)
            if base_value is None or cand_value is None:
                continue
            if base_value <= 0:
                notes.append(
                    f"case {case_id!r}: {metric} baseline is "
                    f"{base_value:g}; not scored"
                )
                continue
            delta_pct = 100.0 * (cand_value - base_value) / base_value
            worse = (
                delta_pct < -effective
                if metric in HIGHER_IS_BETTER
                else delta_pct > effective
            )
            better = (
                delta_pct > effective
                if metric in HIGHER_IS_BETTER
                else delta_pct < -effective
            )
            verdict = (
                VERDICT_REGRESSION
                if worse
                else VERDICT_IMPROVEMENT
                if better
                else VERDICT_NEUTRAL
            )
            rows.append(
                MetricDelta(
                    case_id=case_id,
                    metric=metric,
                    baseline=base_value,
                    candidate=cand_value,
                    delta_pct=delta_pct,
                    threshold_pct=effective,
                    verdict=verdict,
                )
            )

    return Comparison(
        baseline_suite=baseline["suite"],
        candidate_suite=candidate["suite"],
        rows=tuple(rows),
        missing=missing,
        added=added,
        notes=tuple(notes),
    )


def _format_value(value: float) -> str:
    if value >= 1000:
        return f"{value:12.0f}"
    return f"{value:12.4g}"


def render_comparison(comparison: Comparison) -> str:
    """The per-case delta table ``repro compare`` prints."""
    lines = [
        f"{'case':<32} {'metric':<18} {'baseline':>12} "
        f"{'candidate':>12} {'delta':>8}  verdict"
    ]
    for row in comparison.rows:
        verdict = (
            row.verdict.upper()
            if row.verdict == VERDICT_REGRESSION
            else row.verdict
        )
        lines.append(
            f"{row.case_id:<32} {row.metric:<18} "
            f"{_format_value(row.baseline)} "
            f"{_format_value(row.candidate)} "
            f"{row.delta_pct:>+7.1f}%  {verdict}"
        )
    for case_id in comparison.missing:
        lines.append(f"{case_id:<32} (missing from candidate)")
    for case_id in comparison.added:
        lines.append(f"{case_id:<32} (new in candidate)")
    counts = _verdict_counts(comparison.rows)
    lines.append("")
    lines.append(
        f"{counts[VERDICT_REGRESSION]} regression(s), "
        f"{counts[VERDICT_IMPROVEMENT]} improvement(s), "
        f"{counts[VERDICT_NEUTRAL]} neutral"
    )
    for note in comparison.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def _verdict_counts(rows: Iterable[MetricDelta]) -> dict[str, int]:
    counts = {
        VERDICT_REGRESSION: 0,
        VERDICT_IMPROVEMENT: 0,
        VERDICT_NEUTRAL: 0,
    }
    for row in rows:
        counts[row.verdict] += 1
    return counts


def mean_delta_pct(rows: Iterable[MetricDelta]) -> float | None:
    """Mean percentage delta over rows (None when empty)."""
    values = [row.delta_pct for row in rows]
    if not values:
        return None
    return statistics.fmean(values)
