"""``repro.lint`` — determinism & sim-safety static analysis.

The reproduction's guarantees — bit-identical sweeps at any worker
count, golden-trace digest stability, cross-process workload digests —
are runtime-verified by parity and golden tests, which only fail
*after* a stray wall-clock read or unordered ``set`` iteration has
already poisoned a run.  This package checks the invariants
statically: an AST rule engine with per-rule ids, fix hints,
``# repro: lint-ok[RULE] reason`` suppressions (stale ones fail the
run), pyproject-scoped module classification, and a versioned JSON
findings schema, surfaced as ``repro lint`` and a CI gate.

Catalog (see docs/LINTING.md for rationale and blind spots):

==== ==========================================================
D1   no wall-clock reads in sim-path modules
D2   no module-level or un-seeded random / numpy.random use
D3   no unordered set/frozenset/dict.keys() iteration without
     sorted(...) in sim-path code
D4   sweep spec dataclasses picklable by construction
D5   tracer.emit(...) only inside a tracer-enabled guard
E1   every raise uses the repro.errors hierarchy
==== ==========================================================

Programmatic use::

    from repro.lint import lint_paths, load_config

    result = lint_paths(["src/repro"], config=load_config())
    assert result.clean, result.findings
"""

from .config import (
    DEFAULT_SIM_PATH,
    DEFAULT_WALLCLOCK_ALLOW,
    LintConfig,
    find_pyproject,
    load_config,
)
from .report import (
    Finding,
    UnusedSuppression,
    render_statistics,
    render_text,
)
from .rules import (
    CATALOG_VERSION,
    RULE_CATALOG,
    Rule,
    catalog_description,
    rule_ids,
)
from .runner import (
    LintResult,
    lint_paths,
    lint_source,
    resolve_rules,
)
from .schema import (
    LINT_SCHEMA,
    build_payload,
    load_payload,
    validate_payload,
)
from .suppressions import Suppression, parse_suppressions
from .walker import ModuleContext, discover, in_scope, module_name

__all__ = [
    "CATALOG_VERSION",
    "DEFAULT_SIM_PATH",
    "DEFAULT_WALLCLOCK_ALLOW",
    "Finding",
    "LINT_SCHEMA",
    "LintConfig",
    "LintResult",
    "ModuleContext",
    "RULE_CATALOG",
    "Rule",
    "Suppression",
    "UnusedSuppression",
    "build_payload",
    "catalog_description",
    "discover",
    "find_pyproject",
    "in_scope",
    "lint_paths",
    "lint_source",
    "load_config",
    "load_payload",
    "module_name",
    "parse_suppressions",
    "render_statistics",
    "render_text",
    "resolve_rules",
    "rule_ids",
    "validate_payload",
]
