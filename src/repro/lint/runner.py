"""The lint engine: discovery -> rules -> suppressions -> result.

:func:`lint_paths` is the programmatic entry point the CLI, CI gate,
and self-lint test all share; :func:`lint_source` runs the same
pipeline over an in-memory snippet (how the per-rule fixture tests
exercise the catalog without touching disk).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from ..errors import LintError
from .config import LintConfig
from .report import Finding, UnusedSuppression
from .rules import RULE_CATALOG
from .suppressions import apply_suppressions, parse_suppressions
from .walker import ModuleContext, discover


@dataclass(frozen=True, slots=True)
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: surviving (unsuppressed) findings, location-sorted.
        suppressed: findings silenced by ``lint-ok`` comments.
        unused_suppressions: stale ``lint-ok`` comments.
        modules: number of modules scanned.
    """

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    unused_suppressions: list[UnusedSuppression] = field(
        default_factory=list
    )
    modules: int = 0

    @property
    def clean(self) -> bool:
        """Exit-0 condition: no findings, no stale suppressions."""
        return not self.findings and not self.unused_suppressions

    def statistics(self) -> dict:
        """The ``--statistics`` / JSON ``statistics`` block."""
        per_rule: dict[str, dict[str, int]] = {}
        for finding in self.findings:
            entry = per_rule.setdefault(
                finding.rule, {"findings": 0, "suppressed": 0}
            )
            entry["findings"] += 1
        for finding in self.suppressed:
            entry = per_rule.setdefault(
                finding.rule, {"findings": 0, "suppressed": 0}
            )
            entry["suppressed"] += 1
        return {
            "modules": self.modules,
            "findings": len(self.findings),
            "suppressed": len(self.suppressed),
            "unused_suppressions": len(self.unused_suppressions),
            "per_rule": per_rule,
        }


def resolve_rules(
    select: tuple[str, ...] | None,
    ignore: tuple[str, ...] | None,
    config: LintConfig,
) -> frozenset[str]:
    """The effective enabled-rule set for a run.

    CLI flags override config: an explicit ``select``/``ignore``
    argument replaces the corresponding ``[tool.repro.lint]`` list
    entirely rather than merging with it.

    Raises:
        LintError: an unknown rule id anywhere in the selection.
    """
    known = frozenset(RULE_CATALOG)
    select = select if select is not None else config.select
    ignore = ignore if ignore is not None else config.ignore
    for rule_id in (*select, *ignore):
        if rule_id not in known:
            raise LintError(
                f"unknown rule id {rule_id!r} (known: "
                f"{', '.join(sorted(known))})"
            )
    enabled = frozenset(select) if select else known
    return enabled - frozenset(ignore)


def lint_module(
    ctx: ModuleContext,
    config: LintConfig,
    enabled: frozenset[str],
) -> tuple[list[Finding], list[Finding], list[UnusedSuppression]]:
    """Run every enabled rule over one parsed module."""
    findings: list[Finding] = []
    for rule_id in sorted(enabled):
        findings.extend(RULE_CATALOG[rule_id].check(ctx, config))
    suppressions = parse_suppressions(ctx.source, str(ctx.path))
    return apply_suppressions(
        findings,
        suppressions,
        enabled_rules=enabled,
        known_rules=frozenset(RULE_CATALOG),
    )


def lint_paths(
    paths: list[str | Path],
    *,
    config: LintConfig | None = None,
    select: tuple[str, ...] | None = None,
    ignore: tuple[str, ...] | None = None,
) -> LintResult:
    """Lint files/directories and aggregate one :class:`LintResult`.

    Args:
        paths: files or directories (directories expand to ``*.py``,
            sorted, so output order is reproducible).
        config: scoping configuration (``None``: library defaults —
            the CLI passes the pyproject-loaded config explicitly).
        select: enable only these rule ids (``None``: config/all).
        ignore: disable these rule ids on top of the selection.

    Raises:
        LintError: missing path, unparseable source, malformed
            suppression comment, or unknown rule id.
    """
    config = config if config is not None else LintConfig()
    enabled = resolve_rules(select, ignore, config)
    findings: list[Finding] = []
    suppressed: list[Finding] = []
    unused: list[UnusedSuppression] = []
    files = discover(paths)
    for file in files:
        ctx = ModuleContext.parse(file)
        kept, silenced, stale = lint_module(ctx, config, enabled)
        findings.extend(kept)
        suppressed.extend(silenced)
        unused.extend(stale)
    findings.sort(key=Finding.sort_key)
    suppressed.sort(key=Finding.sort_key)
    unused.sort(key=UnusedSuppression.sort_key)
    return LintResult(
        findings=findings,
        suppressed=suppressed,
        unused_suppressions=unused,
        modules=len(files),
    )


def lint_source(
    source: str,
    *,
    module: str = "snippet",
    path: str = "<snippet>",
    config: LintConfig | None = None,
    select: tuple[str, ...] | None = None,
    ignore: tuple[str, ...] | None = None,
) -> LintResult:
    """Lint one in-memory source snippet (test/fixture entry point).

    ``module`` controls scope classification: pass a sim-path-shaped
    name (e.g. ``"repro.p2p.fixture"``) to exercise sim-path rules.
    """
    config = config if config is not None else LintConfig()
    enabled = resolve_rules(select, ignore, config)
    ctx = ModuleContext.parse(path, source=source, module=module)
    kept, silenced, stale = lint_module(ctx, config, enabled)
    return LintResult(
        findings=sorted(kept, key=Finding.sort_key),
        suppressed=sorted(silenced, key=Finding.sort_key),
        unused_suppressions=sorted(
            stale, key=UnusedSuppression.sort_key
        ),
        modules=1,
    )
