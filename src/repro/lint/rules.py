"""The determinism / sim-safety rule catalog.

Each rule is a pure function of one :class:`~repro.lint.walker.
ModuleContext` plus the :class:`~repro.lint.config.LintConfig` that
scopes it, yielding :class:`~repro.lint.report.Finding`s.  Rules are
AST-only — no imports, no type inference — so every check here is a
conservative syntactic approximation of the runtime invariant it
guards; the docs/LINTING.md catalog states each rule's rationale and
its known blind spots.

The catalog:

* **D1** — no wall-clock reads in sim-path modules.
* **D2** — no global / un-seeded RNG use.
* **D3** — no unordered ``set`` / ``frozenset`` / ``dict.keys()``
  iteration in sim-path code without ``sorted(...)``.
* **D4** — sweep specs must be picklable by construction.
* **D5** — event emission must sit inside a tracer-enabled guard.
* **E1** — every ``raise`` uses the ``repro.errors`` hierarchy.

``RULE_CATALOG`` maps rule id -> instance; adding a rule is one class
plus one ``@register`` line (see docs/LINTING.md, "Adding a rule").
"""

from __future__ import annotations

import ast
from typing import Iterator

from .config import LintConfig
from .report import Finding
from .walker import ModuleContext, in_scope

#: Bumped whenever a rule is added, removed, or materially changes
#: what it flags — the findings *schema* is versioned separately
#: (``repro.lint/1``); this versions the catalog's behaviour.
CATALOG_VERSION = 1

RULE_CATALOG: dict[str, "Rule"] = {}


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to :data:`RULE_CATALOG`."""
    rule = cls()
    RULE_CATALOG[rule.rule_id] = rule
    return cls


class Rule:
    """One static check: identity, severity, fix hint, and a visitor.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`finding` stamps the shared fields so rule bodies only
    supply a location and a message.
    """

    rule_id: str = ""
    severity: str = "error"
    summary: str = ""
    hint: str = ""

    def check(
        self, ctx: ModuleContext, config: LintConfig
    ) -> Iterator[Finding]:
        """Yield every violation of this rule in ``ctx``."""
        raise NotImplementedError

    def finding(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            rule=self.rule_id,
            severity=self.severity,
            path=str(ctx.path),
            module=ctx.module,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            hint=self.hint,
        )


#: Wall-clock reads that leak host time into simulated behaviour.
#: ``time.perf_counter`` is deliberately absent: it is the sanctioned
#: *profiling* clock (engine wall-time profile, worker timing) and
#: never feeds simulation state — see docs/LINTING.md.
_WALLCLOCK_NAMES = frozenset({
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


@register
class WallClockRule(Rule):
    """D1: sim-path modules must not read the wall clock.

    Sim-path code runs on the simulated clock (``sim.now``); a host
    clock read makes behaviour depend on machine speed and breaks
    bit-identical replay.  Matches both calls and bare references
    (``clock=time.monotonic`` stores the banned clock just as
    surely as calling it).
    """

    rule_id = "D1"
    summary = (
        "no wall-clock reads (time.time/monotonic, datetime.now) in "
        "sim-path modules"
    )
    hint = (
        "use the simulated clock (sim.now) or move the measurement "
        "into an allowlisted module (wallclock-allow in "
        "[tool.repro.lint]); time.perf_counter is the sanctioned "
        "profiling clock"
    )

    def check(self, ctx, config):
        if not in_scope(ctx.module, config.sim_path):
            return
        if in_scope(ctx.module, config.wallclock_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Attribute chains resolve at their outermost node only:
            # flagging "time.monotonic" must not also flag the inner
            # "time" Name.
            parent = ctx.parents.get(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            dotted = ctx.dotted(node)
            if dotted in _WALLCLOCK_NAMES:
                yield self.finding(
                    ctx, node,
                    f"wall-clock read '{dotted}' in sim-path module "
                    f"{ctx.module}",
                )


#: ``numpy.random`` entry points that *construct* an RNG rather than
#: touching the hidden global generator; allowed when given a seed.
#: Includes the bit-generator classes so spec-seeded compositions like
#: ``Generator(PCG64(seed))`` or ``SeedSequence(seed).spawn(n)`` (the
#: vectorized swarm backend's idiom) pass, while their un-seeded forms
#: — which seed themselves from OS entropy — are still flagged.
_NUMPY_CONSTRUCTORS = frozenset({
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
})


@register
class GlobalRandomRule(Rule):
    """D2: no module-level or un-seeded RNG use.

    All randomness must flow from spec-carried seeds through
    ``random.Random(seed)`` instances (or seeded numpy generators):
    the process-global generators (``random.random()``,
    ``numpy.random.*``) are shared mutable state that couples runs
    together and diverges across worker processes.
    """

    rule_id = "D2"
    summary = (
        "no module-level or un-seeded random/numpy.random use "
        "outside spec-seeded RNG plumbing"
    )
    hint = (
        "thread a seeded random.Random(seed) (or "
        "numpy.random.default_rng(seed)) down from the run spec "
        "instead of touching the global generator"
    )

    def check(self, ctx, config):
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted(node.func)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                yield from self._check_stdlib(ctx, node, dotted)
            elif dotted.startswith("numpy.random."):
                yield from self._check_numpy(ctx, node, dotted)

    def _check_stdlib(self, ctx, node, dotted):
        name = dotted[len("random."):]
        if name == "Random":
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node,
                    "un-seeded random.Random() (seeds itself from "
                    "the OS entropy pool)",
                )
            elif self._at_module_level(ctx, node):
                yield self.finding(
                    ctx, node,
                    "module-level random.Random(...) is shared "
                    "mutable state across runs",
                )
        elif "." not in name:
            yield self.finding(
                ctx, node,
                f"'{dotted}' uses the process-global random "
                f"generator",
            )

    def _check_numpy(self, ctx, node, dotted):
        name = dotted[len("numpy.random."):]
        if name in _NUMPY_CONSTRUCTORS:
            if not node.args and not node.keywords:
                yield self.finding(
                    ctx, node, f"un-seeded '{dotted}()'"
                )
        elif "." not in name:
            yield self.finding(
                ctx, node,
                f"'{dotted}' uses numpy's global random state",
            )

    @staticmethod
    def _at_module_level(ctx, node):
        return (
            ctx.enclosing_function(node) is None
            and ctx.enclosing_class(node) is None
        )


#: Annotation heads that mark a binding as set-typed.
_SET_ANNOTATIONS = frozenset({
    "set", "frozenset", "Set", "FrozenSet", "AbstractSet",
    "MutableSet",
})

#: Calls whose result is a set.
_SET_CONSTRUCTORS = frozenset({"set", "frozenset"})

#: Iteration-consuming builtins that preserve the receiver's order —
#: feeding them a set leaks the unordered sequence onward.
_ORDER_LEAKING_CALLS = frozenset({"list", "tuple", "iter", "enumerate"})


@register
class UnorderedIterRule(Rule):
    """D3: no unordered iteration in sim-path code.

    Iterating a ``set``/``frozenset`` (or ``dict.keys()``) drives
    event scheduling in hash order; for str/object elements that
    order varies across processes and interpreter runs, which is
    exactly the class of bug that breaks golden traces and
    cross-worker digest parity.  Wrap the receiver in ``sorted(...)``
    or suppress with a reason when every per-element operation is
    provably order-independent (commutative reductions).

    Detection is name-based: a receiver is set-typed when it was
    annotated or assigned a set in the same scope (function body,
    ``self.X`` across the class, or module level).  Literal set
    displays are exempt per the rule definition.
    """

    rule_id = "D3"
    summary = (
        "no iteration over set/frozenset/dict.keys() in sim-path "
        "code without an enclosing sorted(...)"
    )
    hint = (
        "iterate sorted(<receiver>) to pin the order, or suppress "
        "with '# repro: lint-ok[D3] <why order cannot matter>'"
    )

    def check(self, ctx, config):
        if not in_scope(ctx.module, config.sim_path):
            return
        set_names = self._collect_set_bindings(ctx)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                yield from self._check_iter(ctx, node.iter, set_names)
            elif isinstance(
                node,
                (ast.ListComp, ast.SetComp, ast.DictComp,
                 ast.GeneratorExp),
            ):
                for generator in node.generators:
                    yield from self._check_iter(
                        ctx, generator.iter, set_names
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Name)
                    and func.id in _ORDER_LEAKING_CALLS
                    and node.args
                ):
                    yield from self._check_iter(
                        ctx, node.args[0], set_names
                    )

    def _check_iter(self, ctx, iter_node, set_names):
        described = self._describe_set(ctx, iter_node, set_names)
        if described is not None:
            yield self.finding(
                ctx, iter_node,
                f"iteration over unordered {described}",
            )

    def _describe_set(self, ctx, node, set_names) -> str | None:
        """Why ``node`` is set-valued, or ``None`` if it is not."""
        if isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in _SET_CONSTRUCTORS
            ):
                return f"{func.id}(...) result"
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "keys"
                and not isinstance(func.value, (ast.Dict, ast.DictComp))
            ):
                return ".keys() view"
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = self._binding_key(ctx, node)
            if key is not None and key in set_names:
                label = (
                    node.id if isinstance(node, ast.Name)
                    else ast.unparse(node)
                )
                return f"set-typed binding '{label}'"
        return None

    # -- set-binding collection ---------------------------------------

    def _collect_set_bindings(self, ctx) -> set[tuple]:
        """Keys of every name/attribute bound to a set.

        Keys are ``(scope-node-or-None, kind, name)``: function-local
        names scope to their function, ``self.X`` attributes to their
        class, plain module-level names to the module (``None``).
        """
        bindings: set[tuple] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.AnnAssign):
                if self._is_set_annotation(node.annotation):
                    self._add_binding(ctx, bindings, node.target)
                continue
            if isinstance(node, ast.Assign):
                if self._is_set_value(node.value):
                    for target in node.targets:
                        self._add_binding(ctx, bindings, target)
        return bindings

    def _add_binding(self, ctx, bindings, target):
        key = self._binding_key(ctx, target)
        if key is not None:
            bindings.add(key)

    def _binding_key(self, ctx, node) -> tuple | None:
        if isinstance(node, ast.Name):
            function = ctx.enclosing_function(node)
            if function is not None:
                return (function, "local", node.id)
            return (None, "global", node.id)
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return (ctx.enclosing_class(node), "attr", node.attr)
        return None

    @staticmethod
    def _is_set_annotation(annotation) -> bool:
        head = annotation
        if isinstance(head, ast.Subscript):
            head = head.value
        if isinstance(head, ast.Attribute):  # typing.Set[...]
            return head.attr in _SET_ANNOTATIONS
        return (
            isinstance(head, ast.Name) and head.id in _SET_ANNOTATIONS
        )

    @staticmethod
    def _is_set_value(value) -> bool:
        if isinstance(value, ast.SetComp):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _SET_CONSTRUCTORS
        )


@register
class SpecPicklableRule(Rule):
    """D4: sweep specs must be picklable by construction.

    ``RunSpec``/``CellSpec`` instances cross process boundaries; a
    lambda, nested-function closure, or open file handle anywhere in
    a spec dataclass's field defaults turns into a runtime
    ``PicklingError`` inside a worker, far from the definition site.
    """

    rule_id = "D4"
    summary = (
        "spec dataclasses must not carry lambdas, closures, or open "
        "files in their field definitions"
    )
    hint = (
        "give the field a picklable default (scalar, tuple, module-"
        "level function) or reconstruct the resource inside the "
        "worker"
    )

    def check(self, ctx, config):
        if not in_scope(ctx.module, config.spec_modules):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_dataclass(ctx, node):
                continue
            for statement in node.body:
                if not isinstance(
                    statement, (ast.Assign, ast.AnnAssign)
                ):
                    continue
                value = statement.value
                if value is None:
                    continue
                yield from self._check_default(ctx, node, value)

    def _check_default(self, ctx, cls, value):
        for sub in ast.walk(value):
            if isinstance(sub, ast.Lambda):
                yield self.finding(
                    ctx, sub,
                    f"lambda in field default of spec dataclass "
                    f"{cls.name} (unpicklable)",
                )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id == "open"
            ):
                yield self.finding(
                    ctx, sub,
                    f"open file in field default of spec dataclass "
                    f"{cls.name} (unpicklable)",
                )

    @staticmethod
    def _is_dataclass(ctx, node) -> bool:
        for decorator in node.decorator_list:
            target = decorator
            if isinstance(target, ast.Call):
                target = target.func
            dotted = ctx.dotted(target)
            if dotted is not None and (
                dotted == "dataclass"
                or dotted.endswith(".dataclass")
            ):
                return True
        return False


@register
class NullPathRule(Rule):
    """D5: event emission only inside a tracer-enabled guard.

    The zero-cost null path (PR 1) rests on the call-site pattern
    ``if tracer.enabled: tracer.emit(Event(...))`` — the disabled
    case pays one attribute check.  An unguarded ``emit`` builds the
    event object (f-strings, dicts, dataclass allocation) on every
    call even when tracing is off, which is exactly the overhead the
    null path exists to avoid.

    A guard is an enclosing ``if``/ternary whose test reads
    ``.enabled``, or reads a local that was assigned from an
    expression containing ``.enabled`` (the engine hoists
    ``tracing = tracer is not None and tracer.enabled`` out of its
    hot loop).
    """

    rule_id = "D5"
    summary = (
        "tracer.emit(...) call sites must sit inside a "
        "tracer-enabled guard (zero-cost null path)"
    )
    hint = (
        "wrap the call site: 'if tracer.enabled: "
        "tracer.emit(Event(...))' so the disabled path allocates "
        "nothing"
    )

    def check(self, ctx, config):
        if not in_scope(ctx.module, config.sim_path):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute) and func.attr == "emit"
            ):
                continue
            if not self._is_tracer(func.value):
                continue
            if not self._guarded(ctx, node):
                receiver = ast.unparse(func.value)
                yield self.finding(
                    ctx, node,
                    f"'{receiver}.emit(...)' outside a tracer-"
                    f"enabled guard allocates events on the null "
                    f"path",
                )

    @staticmethod
    def _is_tracer(receiver) -> bool:
        """Whether the receiver expression names a tracer."""
        name = None
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        return name is not None and "tracer" in name.lower()

    def _guarded(self, ctx, node) -> bool:
        guard_names = self._guard_names(ctx, node)
        child = node
        for ancestor in ctx.ancestors(node):
            if isinstance(ancestor, ast.If) and self._is_guard_test(
                ancestor.test, guard_names
            ):
                # Guarded only on the *then* side; the else branch of
                # "if tracer.enabled" is the null path itself.
                if child in ancestor.orelse:
                    return False
                return True
            if isinstance(ancestor, ast.IfExp) and self._is_guard_test(
                ancestor.test, guard_names
            ):
                return child is ancestor.body
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return False
            child = ancestor
        return False

    @staticmethod
    def _guard_names(ctx, node) -> set[str]:
        """Locals assigned from an ``.enabled``-bearing expression."""
        function = ctx.enclosing_function(node)
        if function is None:
            return set()
        names: set[str] = set()
        for statement in ast.walk(function):
            if not isinstance(statement, ast.Assign):
                continue
            if not any(
                isinstance(sub, ast.Attribute) and sub.attr == "enabled"
                for sub in ast.walk(statement.value)
            ):
                continue
            for target in statement.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _is_guard_test(test, guard_names) -> bool:
        for sub in ast.walk(test):
            if isinstance(sub, ast.Attribute) and sub.attr == "enabled":
                return True
            if isinstance(sub, ast.Name) and sub.id in guard_names:
                return True
        return False


#: Builtin exceptions that must not be raised directly: every failure
#: surfaced by the library goes through ``repro.errors`` so callers
#: can catch ``ReproError`` once.  ``NotImplementedError`` (abstract
#: method protocol) and ``SystemExit``/``KeyboardInterrupt`` (process
#: control) are deliberately not listed.
_BUILTIN_EXCEPTIONS = frozenset({
    "ArithmeticError", "AssertionError", "AttributeError",
    "BaseException", "BufferError", "EOFError", "Exception",
    "FileExistsError", "FileNotFoundError", "IOError", "IndexError",
    "KeyError", "LookupError", "MemoryError", "NameError",
    "OSError", "OverflowError", "PermissionError", "RuntimeError",
    "StopAsyncIteration", "StopIteration", "TypeError",
    "UnicodeDecodeError", "UnicodeEncodeError", "ValueError",
    "ZeroDivisionError",
})


@register
class RaiseHierarchyRule(Rule):
    """E1: every raise uses the ``repro.errors`` hierarchy.

    Bare builtin exceptions escape the library's documented contract
    ("catch :class:`ReproError` once") and cannot be attributed to a
    subsystem by sweep-failure reporting.  Re-raises (``raise`` /
    ``raise exc``) and exception *chaining* are untouched; only
    direct ``raise ValueError(...)``-style statements are flagged.
    """

    rule_id = "E1"
    summary = (
        "raise repro.errors classes, not bare builtin exceptions"
    )
    hint = (
        "raise the closest repro.errors subclass (add one if no "
        "subsystem error fits), or allowlist the module via "
        "raise-allow in [tool.repro.lint]"
    )

    def check(self, ctx, config):
        if in_scope(ctx.module, config.raise_allow):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            if not isinstance(exc, ast.Name):
                continue
            name = exc.id
            if name in _BUILTIN_EXCEPTIONS:
                yield self.finding(
                    ctx, node,
                    f"raise of builtin {name} outside the "
                    f"repro.errors hierarchy",
                )


def rule_ids() -> tuple[str, ...]:
    """Every registered rule id, sorted."""
    return tuple(sorted(RULE_CATALOG))


def catalog_description() -> list[dict]:
    """JSON-ready catalog block for reports and ``--version``."""
    return [
        {
            "id": rule.rule_id,
            "severity": rule.severity,
            "summary": rule.summary,
        }
        for _, rule in sorted(RULE_CATALOG.items())
    ]
