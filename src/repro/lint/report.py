"""Findings and their human-readable rendering.

A :class:`Finding` is one rule violation at one source location; the
text renderer prints them ``path:line:col: RULE message`` (the format
editors and CI log scrapers already parse), sorted by location so
output order is independent of rule-evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        rule: rule identifier (``"D3"``).
        severity: ``"error"`` (all catalog rules today; the field is
            part of the schema so future advisory rules don't bump it).
        path: source file.
        module: dotted module name.
        line: 1-based source line.
        col: 0-based column.
        message: what is wrong at this site.
        hint: how to fix it (rule-level, actionable).
    """

    rule: str
    severity: str
    path: str
    module: str
    line: int
    col: int
    message: str
    hint: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def to_dict(self) -> dict:
        """JSON-ready form (schema ``repro.lint/1`` findings entry)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "module": self.module,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


@dataclass(frozen=True, slots=True)
class UnusedSuppression:
    """A ``lint-ok`` comment that suppressed nothing.

    Stale suppressions are themselves failures: they hide the next
    real finding at that line, so the CI gate treats them like
    findings rather than letting them rot.
    """

    path: str
    line: int
    rule: str
    reason: str

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.rule)

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "reason": self.reason,
        }


def render_text(
    findings: list[Finding],
    unused: list[UnusedSuppression],
    *,
    statistics: dict | None = None,
) -> str:
    """The default ``repro lint`` output.

    One line per finding with its fix hint indented beneath, then
    unused suppressions, then (optionally) the statistics block.
    """
    lines: list[str] = []
    for finding in sorted(findings, key=Finding.sort_key):
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} {finding.message}"
        )
        lines.append(f"    hint: {finding.hint}")
    for entry in sorted(unused, key=UnusedSuppression.sort_key):
        detail = f" ({entry.reason})" if entry.reason else ""
        lines.append(
            f"{entry.path}:{entry.line}: unused suppression "
            f"lint-ok[{entry.rule}]{detail}"
        )
    if statistics is not None:
        if lines:
            lines.append("")
        lines.extend(render_statistics(statistics))
    if not findings and not unused:
        summary = "clean"
    else:
        summary = (
            f"{len(findings)} finding(s), "
            f"{len(unused)} unused suppression(s)"
        )
    if lines:
        lines.append("")
    if statistics is None:
        lines.append(summary)
    return "\n".join(lines)


def render_statistics(statistics: dict) -> list[str]:
    """The ``--statistics`` block as output lines."""
    lines = [
        f"modules scanned: {statistics['modules']}",
        f"findings: {statistics['findings']} "
        f"(suppressed: {statistics['suppressed']}, "
        f"unused suppressions: {statistics['unused_suppressions']})",
    ]
    per_rule = statistics.get("per_rule", {})
    for rule_id in sorted(per_rule):
        counts = per_rule[rule_id]
        lines.append(
            f"  {rule_id}: {counts['findings']} finding(s), "
            f"{counts['suppressed']} suppressed"
        )
    return lines


def relative_path(path: str | Path) -> str:
    """``path`` relative to the cwd when possible (stable reports)."""
    path = Path(path)
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)
