"""The versioned ``repro.lint/1`` findings schema.

``repro lint --format=json`` emits one self-describing JSON document
per run, following the same conventions as the ``repro.bench/1``
artifacts (PR 6): a ``schema`` tag readers must recognise, flat
JSON-native types throughout, and a validator that rejects drift
loudly instead of letting consumers misparse.

Layout::

    {
      "schema": "repro.lint/1",
      "catalog": {"version": 1, "rules": [{id, severity, summary}]},
      "paths": [...],                  # as given on the command line
      "select": [...], "ignore": [...],
      "findings": [
        {rule, severity, path, module, line, col, message, hint}
      ],
      "unused_suppressions": [{path, line, rule, reason}],
      "statistics": {
        "modules": N, "findings": N, "suppressed": N,
        "unused_suppressions": N,
        "per_rule": {"D1": {"findings": N, "suppressed": N}, ...}
      },
      "clean": bool                    # exit-0 <=> true
    }

Bump the schema integer on any backwards-incompatible layout change
(schema-version policy: docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import json

from ..errors import LintError

#: Schema tag of the JSON findings document.
LINT_SCHEMA = "repro.lint/1"

_FINDING_KEYS = frozenset({
    "rule", "severity", "path", "module", "line", "col", "message",
    "hint",
})
_UNUSED_KEYS = frozenset({"path", "line", "rule", "reason"})
_STATISTICS_KEYS = frozenset({
    "modules", "findings", "suppressed", "unused_suppressions",
    "per_rule",
})


def build_payload(
    result,
    *,
    paths: list[str],
    select: tuple[str, ...],
    ignore: tuple[str, ...],
) -> dict:
    """The JSON document for one lint run.

    Args:
        result: a :class:`~repro.lint.runner.LintResult`.
        paths: the paths as requested (not the expanded file list).
        select: effective rule selection (empty = all).
        ignore: effective rule ignores.
    """
    from .rules import CATALOG_VERSION, catalog_description

    return {
        "schema": LINT_SCHEMA,
        "catalog": {
            "version": CATALOG_VERSION,
            "rules": catalog_description(),
        },
        "paths": [str(path) for path in paths],
        "select": list(select),
        "ignore": list(ignore),
        "findings": [
            finding.to_dict() for finding in result.findings
        ],
        "unused_suppressions": [
            entry.to_dict() for entry in result.unused_suppressions
        ],
        "statistics": result.statistics(),
        "clean": result.clean,
    }


def validate_payload(payload: dict) -> dict:
    """Check ``payload`` against ``repro.lint/1``; return it.

    Raises:
        LintError: the payload is not a recognisable lint document
            (wrong/missing schema tag, missing sections, or findings
            entries with missing keys).
    """
    if not isinstance(payload, dict):
        raise LintError("lint payload must be a JSON object")
    schema = payload.get("schema")
    if schema != LINT_SCHEMA:
        raise LintError(
            f"unrecognised lint schema {schema!r} "
            f"(expected {LINT_SCHEMA!r})"
        )
    for key in ("catalog", "findings", "unused_suppressions",
                "statistics", "clean"):
        if key not in payload:
            raise LintError(f"lint payload missing {key!r}")
    if not isinstance(payload["findings"], list):
        raise LintError("lint payload 'findings' must be a list")
    for entry in payload["findings"]:
        missing = _FINDING_KEYS - set(entry)
        if missing:
            raise LintError(
                f"finding entry missing keys: "
                f"{', '.join(sorted(missing))}"
            )
    for entry in payload["unused_suppressions"]:
        missing = _UNUSED_KEYS - set(entry)
        if missing:
            raise LintError(
                f"unused-suppression entry missing keys: "
                f"{', '.join(sorted(missing))}"
            )
    statistics = payload["statistics"]
    missing = _STATISTICS_KEYS - set(statistics)
    if missing:
        raise LintError(
            f"statistics block missing keys: "
            f"{', '.join(sorted(missing))}"
        )
    return payload


def load_payload(path: str) -> dict:
    """Read and validate a lint JSON document from ``path``.

    Raises:
        LintError: unreadable file, invalid JSON, or schema drift.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise LintError(f"cannot read '{path}': {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintError(f"'{path}' is not valid JSON: {exc}") from exc
    return validate_payload(payload)
