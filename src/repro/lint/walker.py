"""Source discovery and per-module AST context for the linter.

The linter never imports the code it checks: a module is a path, its
source text, and a parsed AST.  :class:`ModuleContext` adds the three
derived views every rule needs —

* a parent map (``ast`` has no child→parent links, but "is this call
  inside a tracer-enabled guard?" is an ancestor question),
* import-alias resolution, so ``from time import monotonic as clock``
  and ``import time as t`` both resolve a call site back to the
  canonical dotted name ``time.monotonic``,
* dotted module naming derived from the file path, so scope rules
  ("sim-path modules only") match on ``repro.p2p.leecher`` rather
  than on filesystem layout.

Discovery is deterministic: directories expand to their ``*.py``
files in sorted path order, so two runs over the same tree emit
findings in the same order — the linter holds itself to the
invariants it checks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from ..errors import LintError


def discover(paths: list[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files.

    Raises:
        LintError: a named path does not exist.
    """
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(path.rglob("*.py"))
        elif path.is_file():
            files.add(path)
        else:
            raise LintError(f"no such file or directory: '{raw}'")
    return sorted(files)


def module_name(path: Path) -> str:
    """Dotted module name for ``path``, anchored at the package root.

    Walks up from the file through directories that contain an
    ``__init__.py`` (the enclosing package chain); outside any
    package the bare stem is used.  ``__init__.py`` itself names the
    package: ``src/repro/p2p/__init__.py`` -> ``repro.p2p``.
    """
    resolved = Path(path).resolve()
    parts = [resolved.stem]
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.append(parent.name)
        parent = parent.parent
    parts.reverse()
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else resolved.stem


@dataclass
class ModuleContext:
    """One module, parsed and indexed for rule evaluation.

    Attributes:
        path: source file location (as given, for reporting).
        module: dotted module name (see :func:`module_name`).
        source: full source text.
        tree: parsed AST.
        parents: child AST node -> parent AST node.
        module_aliases: local name -> imported module dotted name
            (``import numpy.random as npr`` -> ``npr: numpy.random``).
        name_imports: local name -> ``(module, original)`` for
            ``from M import x as y`` bindings.
    """

    path: Path
    module: str
    source: str
    tree: ast.AST
    parents: dict[ast.AST, ast.AST] = field(default_factory=dict)
    module_aliases: dict[str, str] = field(default_factory=dict)
    name_imports: dict[str, tuple[str, str]] = field(
        default_factory=dict
    )

    @classmethod
    def parse(
        cls, path: str | Path, source: str | None = None,
        module: str | None = None,
    ) -> "ModuleContext":
        """Parse ``path`` (or explicit ``source``) into a context.

        Raises:
            LintError: the file cannot be read or does not parse.
        """
        path = Path(path)
        if source is None:
            try:
                source = path.read_text(encoding="utf-8")
            except OSError as exc:
                raise LintError(f"cannot read '{path}': {exc}") from exc
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError as exc:
            raise LintError(
                f"cannot parse '{path}': {exc.msg} (line {exc.lineno})"
            ) from exc
        ctx = cls(
            path=path,
            module=module if module is not None else module_name(path),
            source=source,
            tree=tree,
        )
        ctx._index()
        return ctx

    def _index(self) -> None:
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self.parents[child] = node
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds
                    # "c" to the full dotted path.
                    target = alias.name if alias.asname else local
                    self.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    # Relative imports stay package-local; record them
                    # with a leading dot so absolute-name matching
                    # (e.g. "time.monotonic") can never collide.
                    base = "." * (node.level or 0) + (node.module or "")
                else:
                    base = node.module
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.name_imports[local] = (base, alias.name)

    # -- resolution helpers -------------------------------------------

    def dotted(self, node: ast.AST) -> str | None:
        """The canonical dotted name a Name/Attribute refers to.

        Resolves through import aliases: with ``import time as t``,
        ``t.monotonic`` -> ``"time.monotonic"``; with ``from datetime
        import datetime``, ``datetime.now`` ->
        ``"datetime.datetime.now"``.  Returns ``None`` for anything
        that is not a plain dotted chain rooted at a name (calls,
        subscripts, literals ...).
        """
        chain: list[str] = []
        while isinstance(node, ast.Attribute):
            chain.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        chain.append(node.id)
        chain.reverse()
        root = chain[0]
        if root in self.module_aliases:
            chain[0] = self.module_aliases[root]
        elif root in self.name_imports:
            base, original = self.name_imports[root]
            chain[0] = f"{base}.{original}"
        return ".".join(chain)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, innermost first."""
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest enclosing function definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(
                ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The nearest enclosing class definition, if any."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None


def in_scope(module: str, prefixes: tuple[str, ...]) -> bool:
    """Whether ``module`` falls under any dotted ``prefixes`` entry.

    A prefix matches itself and its submodules: ``repro.p2p`` covers
    ``repro.p2p`` and ``repro.p2p.leecher`` but not
    ``repro.p2p_extras``.
    """
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )
