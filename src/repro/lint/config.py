"""``[tool.repro.lint]`` configuration.

Rule *logic* lives in :mod:`repro.lint.rules`; rule *scoping* — which
modules count as sim-path, which modules may read the wall clock or
raise outside the ``repro.errors`` hierarchy, which rules run by
default — lives here, loaded from ``pyproject.toml`` so tightening or
relaxing a boundary is a config diff, not a code change.

The in-code defaults mirror the repository's committed
``[tool.repro.lint]`` section, so the linter behaves identically when
no pyproject is found (e.g. linting a single file from a scratch
directory).  Keys accept both ``kebab-case`` (TOML convention) and
``snake_case``.

``tomllib`` ships with Python 3.11+; on 3.10 the loader degrades to
the defaults rather than importing a third-party parser.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from pathlib import Path

try:  # pragma: no cover - always present on the CI interpreters
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - python 3.10
    tomllib = None  # type: ignore[assignment]

from ..errors import LintError

#: Modules whose code executes under the simulated clock and must be
#: deterministic (D1/D3/D5 scope).
DEFAULT_SIM_PATH = (
    "repro.net",
    "repro.p2p",
    "repro.experiments",
    "repro.abr",
    "repro.player",
)

#: Sim-path-adjacent modules explicitly allowed to read the wall
#: clock: benchmarking, profiling, progress reporting, and the ops
#: telemetry layer measure the host, not the simulation.
DEFAULT_WALLCLOCK_ALLOW = (
    "repro.obs.bench",
    "repro.obs.ops",
    "repro.obs.profile",
    "repro.parallel.progress",
)

#: Modules exempt from E1 (raise outside ``repro.errors``).  Empty:
#: deliberate one-off exceptions use suppression comments instead, so
#: each carries its reason next to the raise.
DEFAULT_RAISE_ALLOW: tuple[str, ...] = ()

#: Modules holding the picklable sweep specs checked by D4.
DEFAULT_SPEC_MODULES = ("repro.parallel.spec",)


@dataclass(frozen=True, slots=True)
class LintConfig:
    """Resolved lint configuration.

    Attributes:
        sim_path: dotted prefixes of simulation-path modules.
        wallclock_allow: modules exempt from D1.
        raise_allow: modules exempt from E1.
        spec_modules: modules D4 checks for picklable specs.
        select: rule ids enabled by default (empty = all).
        ignore: rule ids disabled by default.
    """

    sim_path: tuple[str, ...] = DEFAULT_SIM_PATH
    wallclock_allow: tuple[str, ...] = DEFAULT_WALLCLOCK_ALLOW
    raise_allow: tuple[str, ...] = DEFAULT_RAISE_ALLOW
    spec_modules: tuple[str, ...] = DEFAULT_SPEC_MODULES
    select: tuple[str, ...] = ()
    ignore: tuple[str, ...] = ()


def find_pyproject(start: str | Path | None = None) -> Path | None:
    """The nearest ``pyproject.toml`` at or above ``start`` (cwd)."""
    current = Path(start) if start is not None else Path.cwd()
    current = current.resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(pyproject: str | Path | None = None) -> LintConfig:
    """Load ``[tool.repro.lint]`` from ``pyproject``.

    Args:
        pyproject: path to a ``pyproject.toml``; ``None`` searches
            upward from the cwd.  A missing file (or a file without
            the table, or Python 3.10 without ``tomllib``) yields the
            defaults.

    Raises:
        LintError: the file exists but cannot be parsed, or the table
            contains an unknown key or a non-list value.
    """
    if pyproject is None:
        pyproject = find_pyproject()
    if pyproject is None or tomllib is None:
        return LintConfig()
    path = Path(pyproject)
    if not path.is_file():
        return LintConfig()
    try:
        with open(path, "rb") as handle:
            payload = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise LintError(f"cannot read '{path}': {exc}") from exc
    table = (
        payload.get("tool", {}).get("repro", {}).get("lint", {})
    )
    if not isinstance(table, dict):
        raise LintError(
            f"[tool.repro.lint] in '{path}' must be a table"
        )
    return _apply(table, path)


def _apply(table: dict, path: Path) -> LintConfig:
    known = {f.name for f in fields(LintConfig)}
    config = LintConfig()
    overrides: dict[str, tuple[str, ...]] = {}
    for raw_key, value in table.items():
        key = raw_key.replace("-", "_")
        if key not in known:
            raise LintError(
                f"unknown [tool.repro.lint] key {raw_key!r} in "
                f"'{path}' (expected one of: "
                f"{', '.join(sorted(known))})"
            )
        if not isinstance(value, list) or not all(
            isinstance(item, str) for item in value
        ):
            raise LintError(
                f"[tool.repro.lint] {raw_key!r} in '{path}' must be "
                f"a list of strings"
            )
        overrides[key] = tuple(value)
    return replace(config, **overrides)
