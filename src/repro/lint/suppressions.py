"""``# repro: lint-ok[RULE]`` suppression comments.

A deliberate rule violation is annotated at the site::

    for flow in unfrozen:  # repro: lint-ok[D3] commutative update
        flow._rate += delta

The bracket names one or more rule ids (comma-separated); everything
after the bracket is the required human reason.  A suppression on its
own line covers the *next* line, so long statements keep their
annotation adjacent::

    # repro: lint-ok[D1] wall elapsed for the report header only
    started = time.monotonic()

Suppressions are parsed with :mod:`tokenize` rather than a regex over
raw lines, so the marker inside a string literal is never mistaken
for a real annotation.

Every suppression must earn its keep: one that matches no finding of
its rule is reported as *unused* and fails the run — a stale
``lint-ok`` would otherwise silently swallow the next real finding
at that line.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path

from ..errors import LintError
from .report import Finding, UnusedSuppression

_PATTERN = re.compile(
    r"#\s*repro:\s*lint-ok\[([A-Za-z0-9_,\s]+)\]\s*(.*)\Z"
)


@dataclass(frozen=True, slots=True)
class Suppression:
    """One parsed ``lint-ok`` comment.

    Attributes:
        path: source file holding the comment.
        line: the comment's own line.
        rules: rule ids it names.
        reason: free text after the bracket.
        standalone: the comment is alone on its line (covers the
            next line instead of its own).
    """

    path: str
    line: int
    rules: tuple[str, ...]
    reason: str
    standalone: bool

    @property
    def target_line(self) -> int:
        """The source line whose findings this comment suppresses."""
        return self.line + 1 if self.standalone else self.line


def parse_suppressions(
    source: str, path: str | Path
) -> list[Suppression]:
    """Every ``lint-ok`` comment in ``source``.

    Raises:
        LintError: a marker has an empty rule list or no reason —
            a suppression without a why is worse than none.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = list(
            tokenize.generate_tokens(io.StringIO(source).readline)
        )
    except (tokenize.TokenError, SyntaxError):
        # The AST parse will have reported the real problem.
        return []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PATTERN.match(token.string.strip())
        if match is None:
            continue
        rules = tuple(
            part.strip()
            for part in match.group(1).split(",")
            if part.strip()
        )
        reason = match.group(2).strip()
        line = token.start[0]
        if not rules:
            raise LintError(
                f"{path}:{line}: lint-ok comment names no rule"
            )
        if not reason:
            raise LintError(
                f"{path}:{line}: lint-ok[{','.join(rules)}] needs a "
                f"reason after the bracket"
            )
        standalone = token.line[: token.start[1]].strip() == ""
        suppressions.append(
            Suppression(
                path=str(path),
                line=line,
                rules=rules,
                reason=reason,
                standalone=standalone,
            )
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    *,
    enabled_rules: frozenset[str],
    known_rules: frozenset[str],
) -> tuple[list[Finding], list[Finding], list[UnusedSuppression]]:
    """Split findings into (kept, suppressed) and report stale comments.

    A suppression is *used* when some finding of a named rule sits on
    its target line.  Unused detection only considers rules that are
    both known and enabled for this run: a ``--select D1`` run must
    not flag every D3 annotation in the tree as stale, while a
    suppression naming a rule that does not exist at all is always
    stale (likely a typo).
    """
    by_site: dict[tuple[str, int, str], list[Suppression]] = {}
    for suppression in suppressions:
        for rule in suppression.rules:
            by_site.setdefault(
                (suppression.path, suppression.target_line, rule), []
            ).append(suppression)

    kept: list[Finding] = []
    suppressed: list[Finding] = []
    used: set[tuple[int, str]] = set()
    for finding in findings:
        matches = by_site.get(
            (finding.path, finding.line, finding.rule), []
        )
        if matches:
            suppressed.append(finding)
            for match in matches:
                used.add((match.line, finding.rule))
        else:
            kept.append(finding)

    unused: list[UnusedSuppression] = []
    for suppression in suppressions:
        for rule in suppression.rules:
            if (suppression.line, rule) in used:
                continue
            if rule in known_rules and rule not in enabled_rules:
                continue
            note = suppression.reason
            if rule not in known_rules:
                note = f"unknown rule id; {note}" if note else (
                    "unknown rule id"
                )
            unused.append(
                UnusedSuppression(
                    path=suppression.path,
                    line=suppression.line,
                    rule=rule,
                    reason=note,
                )
            )
    return kept, suppressed, unused
