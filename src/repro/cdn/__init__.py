"""Hybrid CDN + P2P streaming (paper Section IV).

"Many of the P2P video streaming services adopted hybrid architecture
where contents are served by peers as well as a CDN.  When a video is
served by a CDN, peers can download one segment at a time ... In that
case, the maximum size of the segment will be ``B * T``."

:class:`HybridSession` runs that architecture: the origin is a CDN
from which each peer keeps at most one request in flight, peers still
exchange segments with each other, and the segment duration can be
chosen by the Section-IV sizing rule.
"""

from .hybrid import HybridConfig, HybridSession, cdn_segment_duration

__all__ = ["HybridConfig", "HybridSession", "cdn_segment_duration"]
