"""Hybrid CDN + P2P session orchestration."""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.segment_size import max_cdn_segment_size
from ..core.segments import SpliceResult
from ..core.splicer import DurationSplicer
from ..errors import ConfigurationError
from ..p2p.swarm import Swarm, SwarmConfig, SwarmResult
from ..video.bitstream import Bitstream


def cdn_segment_duration(
    bitrate: float,
    bandwidth: float,
    target_buffer: float,
    candidates: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
) -> float:
    """Pick a CDN segment duration by the paper's Section-IV rule.

    With one-at-a-time CDN fetching, a segment must be no larger than
    ``B * T`` bytes or it cannot finish before the buffer drains.  At a
    steady-state buffer of ``target_buffer`` seconds, a segment of
    duration ``d`` is ``bitrate/8 * d`` bytes, so the rule admits every
    ``d`` with ``bitrate/8 * d <= B * target_buffer``; the largest
    admissible candidate maximizes throughput ("keeping the segment
    large ... increases the total throughput") while staying safe.

    Args:
        bitrate: video bitrate in bits/second.
        bandwidth: CDN-path bandwidth ``B`` in bytes/second.
        target_buffer: steady-state buffered playtime ``T``, seconds.
        candidates: allowed segment durations, seconds.

    Returns:
        The chosen duration in seconds (the smallest candidate when
        none is admissible — a too-small segment stalls less than a
        too-large one).
    """
    if bitrate <= 0:
        raise ConfigurationError(f"bitrate must be positive: {bitrate}")
    if not candidates:
        raise ConfigurationError("candidates must be non-empty")
    limit = max_cdn_segment_size(bandwidth, target_buffer)
    admissible = [
        d for d in candidates if bitrate / 8.0 * d <= limit
    ]
    if not admissible:
        return min(candidates)
    return max(admissible)


@dataclass(frozen=True, slots=True)
class HybridConfig:
    """Configuration of a hybrid CDN+P2P session.

    Attributes:
        swarm: the underlying swarm parameters; its
            ``origin_one_at_a_time`` flag is forced on and its
            ``seeder_bandwidth`` doubles as the CDN capacity.
        auto_segment_duration: when True, ignore the supplied splice
            and re-splice the video at the Section-IV duration for the
            configured bandwidth.
        target_buffer: the steady-state buffer ``T`` used by the
            sizing rule, seconds.
    """

    swarm: SwarmConfig
    auto_segment_duration: bool = False
    target_buffer: float = 8.0

    def __post_init__(self) -> None:
        if self.target_buffer <= 0:
            raise ConfigurationError(
                f"target_buffer must be positive: {self.target_buffer}"
            )


class HybridSession:
    """A CDN-origin swarm: peers help each other, the CDN backstops.

    Args:
        source: either a ready :class:`SpliceResult` or, when
            ``config.auto_segment_duration`` is set, the raw
            :class:`Bitstream` to splice at the computed duration.
        config: session parameters.
    """

    def __init__(
        self, source: SpliceResult | Bitstream, config: HybridConfig
    ) -> None:
        swarm_config = replace(config.swarm, origin_one_at_a_time=True)
        if config.auto_segment_duration:
            if not isinstance(source, Bitstream):
                raise ConfigurationError(
                    "auto_segment_duration requires a raw Bitstream source"
                )
            duration = cdn_segment_duration(
                source.bitrate,
                swarm_config.bandwidth,
                config.target_buffer,
            )
            splice = DurationSplicer(duration).splice(source)
        else:
            if not isinstance(source, SpliceResult):
                raise ConfigurationError(
                    "provide a SpliceResult, or set auto_segment_duration"
                )
            splice = source
        self.splice = splice
        self.swarm = Swarm(splice, swarm_config)

    @property
    def segment_duration(self) -> float:
        """The (mean) segment duration actually streamed, seconds."""
        durations = self.splice.segment_durations()
        return sum(durations) / len(durations)

    def run(self) -> SwarmResult:
        """Run the hybrid session to completion."""
        return self.swarm.run()
