"""RSpec v3 documents (GENI resource specifications).

A faithful-but-minimal model of the GENI RSpec the paper used: Xen VM
nodes, point-to-point links with shaped capacity / latency / packet
loss (the paper's Fig. 1 shows exactly such a link element), and
install/execute services for software deployment.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from ..errors import RSpecError

RSPEC_NS = "http://www.geni.net/resources/rspec/3"

#: Default disk image the paper's nodes ran (Ubuntu 64-bit on Xen).
DEFAULT_DISK_IMAGE = (
    "urn:publicid:IDN+emulab.net+image+emulab-ops//UBUNTU14-64-STD"
)
DEFAULT_SLIVER_TYPE = "emulab-xen"


@dataclass(frozen=True, slots=True)
class SoftwareInstall:
    """An install service on a node.

    Attributes:
        url: tarball to fetch and unpack.
        install_path: where to unpack it.
        manual: True for packages whose licences blocked RSpec
            automation (the paper had to install those by hand).
    """

    url: str
    install_path: str = "/local"
    manual: bool = False


@dataclass(frozen=True, slots=True)
class RSpecNode:
    """One Xen VM in the slice.

    Attributes:
        client_id: node name within the slice.
        sliver_type: virtualization flavour (paper: Xen VMs).
        disk_image: OS image URN.
        installs: software install services.
        execute: shell commands run at boot.
    """

    client_id: str
    sliver_type: str = DEFAULT_SLIVER_TYPE
    disk_image: str = DEFAULT_DISK_IMAGE
    installs: tuple[SoftwareInstall, ...] = field(default_factory=tuple)
    execute: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.client_id:
            raise RSpecError("node client_id must be non-empty")


@dataclass(frozen=True, slots=True)
class RSpecLink:
    """A shaped point-to-point link between two node interfaces.

    Attributes:
        client_id: link name within the slice.
        endpoints: the two node client_ids the link joins.
        capacity_kbps: shaped rate in kilobits/second (RSpec convention).
        latency_ms: one-way delay in milliseconds.
        packet_loss: loss probability in [0, 1).
    """

    client_id: str
    endpoints: tuple[str, str]
    capacity_kbps: int
    latency_ms: float = 0.0
    packet_loss: float = 0.0

    def __post_init__(self) -> None:
        if not self.client_id:
            raise RSpecError("link client_id must be non-empty")
        if len(self.endpoints) != 2 or self.endpoints[0] == self.endpoints[1]:
            raise RSpecError(
                f"link {self.client_id}: endpoints must be two distinct "
                f"nodes, got {self.endpoints}"
            )
        if self.capacity_kbps <= 0:
            raise RSpecError(
                f"link {self.client_id}: capacity_kbps must be positive"
            )
        if self.latency_ms < 0:
            raise RSpecError(
                f"link {self.client_id}: latency_ms must be >= 0"
            )
        if not 0.0 <= self.packet_loss < 1.0:
            raise RSpecError(
                f"link {self.client_id}: packet_loss must be in [0, 1)"
            )

    @property
    def capacity_bytes_per_s(self) -> float:
        """Shaped rate in bytes/second."""
        return self.capacity_kbps * 1000 / 8.0

    @property
    def latency_seconds(self) -> float:
        """One-way delay in seconds."""
        return self.latency_ms / 1000.0


@dataclass(frozen=True, slots=True)
class RSpecDocument:
    """A whole request RSpec: nodes plus links."""

    nodes: tuple[RSpecNode, ...]
    links: tuple[RSpecLink, ...]

    def __post_init__(self) -> None:
        names = [node.client_id for node in self.nodes]
        if len(set(names)) != len(names):
            raise RSpecError("duplicate node client_ids")
        known = set(names)
        for link in self.links:
            for endpoint in link.endpoints:
                if endpoint not in known:
                    raise RSpecError(
                        f"link {link.client_id} references unknown node "
                        f"{endpoint!r}"
                    )

    def node(self, client_id: str) -> RSpecNode:
        """Look a node up by client_id."""
        for node in self.nodes:
            if node.client_id == client_id:
                return node
        raise RSpecError(f"unknown node {client_id!r}")

    def links_of(self, client_id: str) -> list[RSpecLink]:
        """All links touching a node."""
        return [
            link for link in self.links if client_id in link.endpoints
        ]

    def to_xml(self) -> str:
        """Serialize to GENI request-RSpec XML."""
        root = ET.Element(
            "rspec", {"type": "request", "xmlns": RSPEC_NS}
        )
        for node in self.nodes:
            node_el = ET.SubElement(
                root, "node", {"client_id": node.client_id}
            )
            ET.SubElement(
                node_el, "sliver_type", {"name": node.sliver_type}
            ).append(
                ET.Element("disk_image", {"name": node.disk_image})
            )
            if node.installs or node.execute:
                services = ET.SubElement(node_el, "services")
                for install in node.installs:
                    ET.SubElement(
                        services,
                        "install",
                        {
                            "url": install.url,
                            "install_path": install.install_path,
                            "manual": "true" if install.manual else "false",
                        },
                    )
                for command in node.execute:
                    ET.SubElement(
                        services,
                        "execute",
                        {"shell": "sh", "command": command},
                    )
        for link in self.links:
            link_el = ET.SubElement(
                root, "link", {"client_id": link.client_id}
            )
            for endpoint in link.endpoints:
                ET.SubElement(
                    link_el,
                    "interface_ref",
                    {"client_id": f"{endpoint}:if-{link.client_id}"},
                )
            ET.SubElement(
                link_el,
                "property",
                {
                    "source_id": link.endpoints[0],
                    "dest_id": link.endpoints[1],
                    "capacity": str(link.capacity_kbps),
                    "latency": str(link.latency_ms),
                    "packet_loss": str(link.packet_loss),
                },
            )
        ET.indent(root)
        return ET.tostring(root, encoding="unicode")


def parse_rspec(xml: str) -> RSpecDocument:
    """Parse request-RSpec XML back into an :class:`RSpecDocument`.

    Raises:
        RSpecError: on malformed XML or missing required attributes.
    """
    try:
        root = ET.fromstring(xml)
    except ET.ParseError as exc:
        raise RSpecError(f"malformed RSpec XML: {exc}") from exc
    ns = {"r": RSPEC_NS}
    nodes: list[RSpecNode] = []
    for node_el in root.findall("r:node", ns):
        client_id = node_el.get("client_id")
        if not client_id:
            raise RSpecError("node missing client_id")
        sliver = node_el.find("r:sliver_type", ns)
        sliver_type = (
            sliver.get("name", DEFAULT_SLIVER_TYPE)
            if sliver is not None
            else DEFAULT_SLIVER_TYPE
        )
        disk = (
            sliver.find("r:disk_image", ns) if sliver is not None else None
        )
        disk_image = (
            disk.get("name", DEFAULT_DISK_IMAGE)
            if disk is not None
            else DEFAULT_DISK_IMAGE
        )
        installs: list[SoftwareInstall] = []
        execute: list[str] = []
        services = node_el.find("r:services", ns)
        if services is not None:
            for install_el in services.findall("r:install", ns):
                url = install_el.get("url")
                if not url:
                    raise RSpecError(
                        f"install on {client_id} missing url"
                    )
                installs.append(
                    SoftwareInstall(
                        url=url,
                        install_path=install_el.get(
                            "install_path", "/local"
                        ),
                        manual=install_el.get("manual") == "true",
                    )
                )
            for execute_el in services.findall("r:execute", ns):
                command = execute_el.get("command")
                if command:
                    execute.append(command)
        nodes.append(
            RSpecNode(
                client_id=client_id,
                sliver_type=sliver_type,
                disk_image=disk_image,
                installs=tuple(installs),
                execute=tuple(execute),
            )
        )
    links: list[RSpecLink] = []
    for link_el in root.findall("r:link", ns):
        client_id = link_el.get("client_id")
        if not client_id:
            raise RSpecError("link missing client_id")
        prop = link_el.find("r:property", ns)
        if prop is None:
            raise RSpecError(f"link {client_id} missing property element")
        source = prop.get("source_id")
        dest = prop.get("dest_id")
        capacity = prop.get("capacity")
        if not (source and dest and capacity):
            raise RSpecError(
                f"link {client_id} property missing "
                "source_id/dest_id/capacity"
            )
        links.append(
            RSpecLink(
                client_id=client_id,
                endpoints=(source, dest),
                capacity_kbps=int(capacity),
                latency_ms=float(prop.get("latency", "0")),
                packet_loss=float(prop.get("packet_loss", "0")),
            )
        )
    return RSpecDocument(nodes=tuple(nodes), links=tuple(links))


def star_rspec(
    n_peers: int,
    capacity_kbps: int,
    latency_ms: float = 12.5,
    packet_loss: float = 0.0253,
    hub_name: str = "switch",
    seeder_name: str = "seeder",
    app_url: str = "http://example.org/p2p-streamer.tar.gz",
) -> RSpecDocument:
    """Build the paper's experimental slice: a star of Xen VMs.

    "The nodes are connected in a star topology using another virtual
    node" — the hub is an ordinary node acting as a software switch.

    Args:
        n_peers: number of leecher nodes (paper: 19, plus the seeder).
        capacity_kbps: access-link shaped rate, kilobits/second.
        latency_ms: per-access-link one-way delay (12.5 ms gives the
            paper's 50 ms peer-to-peer RTT).
        packet_loss: per-access-link loss (0.0253 per link compounds to
            the paper's 5 % end-to-end).
        hub_name / seeder_name: node names.
        app_url: tarball of the streaming application to install.

    Returns:
        The request RSpec for the slice.
    """
    if n_peers < 1:
        raise RSpecError(f"n_peers must be >= 1, got {n_peers}")
    app = SoftwareInstall(url=app_url)
    vnc = SoftwareInstall(
        url="http://example.org/unity-vnc.tar.gz", manual=True
    )
    nodes = [RSpecNode(client_id=hub_name)]
    nodes.append(
        RSpecNode(
            client_id=seeder_name,
            installs=(app, vnc),
            execute=(f"/local/p2p-streamer --seed --serve-manifest",),
        )
    )
    for i in range(n_peers):
        nodes.append(
            RSpecNode(
                client_id=f"peer-{i + 1}",
                installs=(app, vnc),
                execute=(
                    f"/local/p2p-streamer --join {seeder_name}",
                ),
            )
        )
    links = [
        RSpecLink(
            client_id=f"link-{node.client_id}",
            endpoints=(node.client_id, hub_name),
            capacity_kbps=capacity_kbps,
            latency_ms=latency_ms,
            packet_loss=packet_loss,
        )
        for node in nodes
        if node.client_id != hub_name
    ]
    return RSpecDocument(nodes=tuple(nodes), links=tuple(links))
