"""Deploying an RSpec onto the simulator.

GENI gave the paper a slice of real VMs; our substitute "rack"
instantiates the slice inside the discrete-event simulator: every
RSpec node becomes a topology node with the link's shaped capacity,
latency, and loss, and the application install/execute services are
tracked so a deployment can report what still needs manual setup (the
paper had to hand-install the VNC/Unity stack on every node).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RSpecError
from ..net.topology import StarTopology
from ..p2p.swarm import SwarmConfig
from .rspec import RSpecDocument, RSpecLink


@dataclass(frozen=True, slots=True)
class DeployedNode:
    """One provisioned VM in the simulated slice."""

    client_id: str
    bandwidth: float  # bytes/second
    latency_to_hub: float  # seconds
    loss_rate: float
    installed: tuple[str, ...] = field(default_factory=tuple)
    pending_manual: tuple[str, ...] = field(default_factory=tuple)
    boot_commands: tuple[str, ...] = field(default_factory=tuple)


class InstaGeniRack:
    """A simulated InstaGENI rack that instantiates request RSpecs.

    Args:
        hub_name: which node of the document is the star's hub; it is
            provisioned but carries no application.
    """

    def __init__(self, hub_name: str = "switch") -> None:
        self._hub_name = hub_name

    @property
    def hub_name(self) -> str:
        """The designated hub node name."""
        return self._hub_name

    def deploy(self, document: RSpecDocument) -> list[DeployedNode]:
        """Provision every non-hub node of the slice.

        Returns:
            The deployed nodes with their link parameters and software
            state.

        Raises:
            RSpecError: if the document is not a star around the hub
                (a node with zero or multiple access links).
        """
        deployed: list[DeployedNode] = []
        for node in document.nodes:
            if node.client_id == self._hub_name:
                continue
            link = self._access_link(document, node.client_id)
            deployed.append(
                DeployedNode(
                    client_id=node.client_id,
                    bandwidth=link.capacity_bytes_per_s,
                    latency_to_hub=link.latency_seconds,
                    loss_rate=link.packet_loss,
                    installed=tuple(
                        install.url
                        for install in node.installs
                        if not install.manual
                    ),
                    pending_manual=tuple(
                        install.url
                        for install in node.installs
                        if install.manual
                    ),
                    boot_commands=node.execute,
                )
            )
        if not deployed:
            raise RSpecError("document contains no non-hub nodes")
        return deployed

    def build_topology(self, document: RSpecDocument) -> StarTopology:
        """Instantiate the slice's star topology in the simulator."""
        topology = StarTopology()
        for node in self.deploy(document):
            topology.add_node(
                node.client_id,
                bandwidth=node.bandwidth,
                latency_to_hub=node.latency_to_hub,
                loss_rate=node.loss_rate,
            )
        return topology

    def _access_link(
        self, document: RSpecDocument, client_id: str
    ) -> RSpecLink:
        links = [
            link
            for link in document.links_of(client_id)
            if self._hub_name in link.endpoints
        ]
        if len(links) != 1:
            raise RSpecError(
                f"node {client_id!r} must have exactly one link to the "
                f"hub {self._hub_name!r}, found {len(links)}"
            )
        return links[0]


def swarm_config_from_rspec(
    document: RSpecDocument,
    seeder_name: str = "seeder",
    hub_name: str = "switch",
    **overrides: object,
) -> SwarmConfig:
    """Derive a :class:`SwarmConfig` from a request RSpec.

    Bandwidth, latency, and loss come from the document's access
    links; everything else (policy, seeds, ...) can be overridden via
    keyword arguments.

    Raises:
        RSpecError: if the document lacks the seeder or peers, or if
            peer access links disagree on capacity (the paper shapes
            all peers identically per run).
    """
    rack = InstaGeniRack(hub_name=hub_name)
    deployed = {node.client_id: node for node in rack.deploy(document)}
    if seeder_name not in deployed:
        raise RSpecError(f"document has no seeder node {seeder_name!r}")
    peers = [
        node for name, node in deployed.items() if name != seeder_name
    ]
    if not peers:
        raise RSpecError("document has no peer nodes")
    bandwidths = {node.bandwidth for node in peers}
    if len(bandwidths) != 1:
        raise RSpecError(
            f"peer access links disagree on capacity: {sorted(bandwidths)}"
        )
    peer = peers[0]
    seeder = deployed[seeder_name]
    kwargs: dict[str, object] = {
        "bandwidth": peer.bandwidth,
        "seeder_bandwidth": seeder.bandwidth,
        "n_leechers": len(peers),
        "peer_rtt": 4.0 * peer.latency_to_hub,
        "path_loss": 1.0 - (1.0 - peer.loss_rate) ** 2,
    }
    kwargs.update(overrides)
    return SwarmConfig(**kwargs)  # type: ignore[arg-type]
