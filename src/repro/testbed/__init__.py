"""GENI-like testbed: RSpec documents and their deployment.

The paper provisions its 20-node star on GENI with an RSpec (Fig. 1
shows a link element carrying capacity, latency, and packet loss) and
installs the application via RSpec install/execute services.  This
package reproduces that layer:

* :mod:`repro.testbed.rspec` — build and parse RSpec v3 XML documents;
* :mod:`repro.testbed.geni` — "deploy" an RSpec onto the simulator,
  i.e. derive the star topology and a
  :class:`~repro.p2p.swarm.SwarmConfig` from the document.
"""

from .geni import InstaGeniRack, swarm_config_from_rspec
from .rspec import (
    RSpecDocument,
    RSpecLink,
    RSpecNode,
    SoftwareInstall,
    parse_rspec,
    star_rspec,
)

__all__ = [
    "InstaGeniRack",
    "RSpecDocument",
    "RSpecLink",
    "RSpecNode",
    "SoftwareInstall",
    "parse_rspec",
    "star_rspec",
    "swarm_config_from_rspec",
]
