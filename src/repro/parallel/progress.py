"""Live sweep progress: one rewriting status line on stderr.

Long sweeps (19 leechers x 4 bandwidths x 3 seeds x several splicing
techniques) run for minutes with no output; this reporter makes them
observable while they run — cells completed / running / failed, plus
the per-cell stall totals as workers finish — without touching stdout,
where the figure tables go.

Two modes:

* ``"live"`` (default): one rewriting status line, redrawn after every
  finished run.  Off by default, and **forced off when the stream is
  not a TTY**: CI logs and redirected output never see control
  characters, and a disabled reporter costs one attribute check per
  run.
* ``"plain"``: append-only lines for non-TTY consumers (CI logs,
  ``tee``).  One rate-limited summary line per *completed cell* — no
  control characters, no rewriting — plus a header at start and a
  totals line at the end.  Failures always print immediately.
"""

from __future__ import annotations

import sys
import time
from typing import Sequence, TextIO

from ..errors import ExperimentError
from .spec import RunSpec
from .worker import RunOutcome

#: Recognized reporter modes.
PROGRESS_MODES = ("live", "plain")


class SweepProgress:
    """Sweep progress reporting in live (TTY) or plain (append) mode.

    The executor drives it: :meth:`begin` with the expanded run specs,
    :meth:`update` once per finished run (in completion order — on the
    pool path that is non-deterministic, which is fine: progress is
    display, never data), :meth:`finish` when the sweep returns.

    Args:
        stream: where to write (default ``sys.stderr``).
        enabled: caller's request; in live mode AND-ed with
            ``stream.isatty()``.
        mode: ``"live"`` (rewriting status line, TTY only) or
            ``"plain"`` (append-only cell-completion lines, any
            stream).
        min_interval: minimum seconds between plain-mode lines; cell
            completions arriving faster are folded into the next line.
            Failures and the final cell always print.  Ignored in live
            mode.
        clock: monotonic time source (tests inject a fake one).
    """

    def __init__(
        self,
        stream: TextIO | None = None,
        enabled: bool = True,
        mode: str = "live",
        min_interval: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if mode not in PROGRESS_MODES:
            raise ExperimentError(
                f"unknown progress mode {mode!r} "
                f"(expected one of {', '.join(PROGRESS_MODES)})"
            )
        if min_interval < 0:
            raise ExperimentError(
                f"min_interval must be >= 0: {min_interval}"
            )
        self._stream = stream if stream is not None else sys.stderr
        self.mode = mode
        self.min_interval = min_interval
        self._clock = clock
        if mode == "plain":
            self.enabled = bool(enabled)
        else:
            isatty = getattr(self._stream, "isatty", None)
            self.enabled = bool(enabled) and bool(
                isatty() if callable(isatty) else False
            )
        self._width = 0
        self._reset()

    def _reset(self) -> None:
        self._total: dict[int, int] = {}
        self._done: dict[int, int] = {}
        self._failed: dict[int, int] = {}
        self._cached: dict[int, int] = {}
        self._stalls: dict[int, float] = {}
        self._labels: dict[int, str] = {}
        self._runs_done = 0
        self._runs_cached = 0
        self._runs_total = 0
        self._last_emit: float | None = None

    def begin(self, specs: Sequence[RunSpec]) -> None:
        """Register the sweep's run specs before execution starts."""
        if not self.enabled:
            return
        self._reset()
        for spec in specs:
            index = spec.cell_index
            self._total[index] = self._total.get(index, 0) + 1
            self._labels.setdefault(index, spec.cell.describe())
        self._runs_total = len(specs)
        if self.mode == "plain":
            self._emit_line(
                f"sweep: starting {len(self._total)} cells"
                f" ({self._runs_total} runs)"
            )
        else:
            self._render("starting")

    def update(self, outcome: RunOutcome) -> None:
        """Record one finished run and report it (mode-dependent)."""
        if self.enabled:
            self._ingest(outcome)

    def finish(self) -> None:
        """End the sweep: leave the final counts on their own line."""
        if not self.enabled:
            return
        if self.mode == "plain":
            self._emit_line("sweep: " + self._summary())
            return
        self._render("done")
        self._stream.write("\n")
        self._stream.flush()
        self._width = 0

    # ------------------------------------------------------------------

    def _ingest(self, outcome: RunOutcome) -> None:
        index = outcome.cell_index
        self._runs_done += 1
        self._done[index] = self._done.get(index, 0) + 1
        if not outcome.ok:
            self._failed[index] = self._failed.get(index, 0) + 1
        else:
            if outcome.cached:
                self._runs_cached += 1
                self._cached[index] = self._cached.get(index, 0) + 1
            if outcome.stats is not None:
                self._stalls[index] = (
                    self._stalls.get(index, 0.0)
                    + outcome.stats.stall_count
                )
        label = self._labels.get(index) or outcome.label
        if self.mode == "plain":
            self._ingest_plain(outcome, index, label)
            return
        if outcome.ok:
            done = self._done[index]
            mean_stalls = self._stalls.get(index, 0.0) / max(1, done)
            suffix = " (cached)" if outcome.cached else ""
            last = (
                f"{label} seed {outcome.seed}: "
                f"{mean_stalls:.1f} stalls/peer{suffix}"
            )
        else:
            last = f"{label} seed {outcome.seed}: FAILED"
        self._render(last)

    def _ingest_plain(
        self, outcome: RunOutcome, index: int, label: str
    ) -> None:
        """Plain mode: one line per completed cell, rate-limited.

        Failures print immediately (they are rare and actionable);
        cell completions are folded into at most one line per
        ``min_interval`` seconds, except the final one, which always
        prints so logs end with a complete picture.
        """
        if not outcome.ok:
            self._emit_line(
                f"sweep: {label} seed {outcome.seed} FAILED"
                f" ({outcome.error})"
            )
            return
        total = self._total.get(index, 0)
        if self._done.get(index, 0) < total:
            return
        final = self._runs_done >= self._runs_total
        now = self._clock()
        if (
            not final
            and self._last_emit is not None
            and now - self._last_emit < self.min_interval
        ):
            return
        mean_stalls = self._stalls.get(index, 0.0) / max(1, total)
        # A fully-cached cell was served from the store, not computed;
        # say so instead of presenting it as fresh work.
        how = (
            "cached"
            if self._cached.get(index, 0) >= total
            else "done"
        )
        self._emit_line(
            f"sweep: {label} {how}"
            f" ({mean_stalls:.1f} stalls/peer; {self._summary()})"
        )

    def _summary(self) -> str:
        completed = sum(
            1
            for index, total in self._total.items()
            if self._done.get(index, 0) >= total
        )
        failed = sum(1 for index in self._failed if self._failed[index])
        cached = (
            f" {self._runs_cached} cached,"
            if self._runs_cached
            else ""
        )
        return (
            f"{completed}/{len(self._total)} cells done,"
            f" {failed} failed,{cached}"
            f" {self._runs_done}/{self._runs_total} runs"
        )

    def _emit_line(self, line: str) -> None:
        self._stream.write(line + "\n")
        self._stream.flush()
        self._last_emit = self._clock()

    def _render(self, last: str) -> None:
        completed = sum(
            1
            for index, total in self._total.items()
            if self._done.get(index, 0) >= total
        )
        running = sum(
            1
            for index, total in self._total.items()
            if 0 < self._done.get(index, 0) < total
        )
        failed = sum(1 for index in self._failed if self._failed[index])
        cached = (
            f", {self._runs_cached} cached" if self._runs_cached else ""
        )
        line = (
            f"sweep: {completed}/{len(self._total)} cells done"
            f" ({running} running, {failed} failed{cached};"
            f" {self._runs_done}/{self._runs_total} runs) | {last}"
        )
        pad = max(0, self._width - len(line))
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()
        self._width = len(line)


#: The reporter used when none is requested: every call is a no-op.
class _NullProgress(SweepProgress):
    def __init__(self) -> None:  # noqa: D107 - trivial
        self._stream = None  # type: ignore[assignment]
        self.enabled = False
        self.mode = "live"
        self.min_interval = 0.0
        self._clock = time.monotonic
        self._width = 0
        self._reset()


NULL_PROGRESS = _NullProgress()
