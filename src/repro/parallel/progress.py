"""Live sweep progress: one rewriting status line on stderr.

Long sweeps (19 leechers x 4 bandwidths x 3 seeds x several splicing
techniques) run for minutes with no output; this reporter makes them
observable while they run — cells completed / running / failed, plus
the per-cell stall totals as workers finish — without touching stdout,
where the figure tables go.

Off by default, and **forced off when the stream is not a TTY**: CI
logs and redirected output never see control characters, and a
disabled reporter costs one attribute check per run.
"""

from __future__ import annotations

import sys
from typing import Sequence, TextIO

from .spec import RunSpec
from .worker import RunOutcome


class SweepProgress:
    """Single-line live progress for one or more sweeps.

    The executor drives it: :meth:`begin` with the expanded run specs,
    :meth:`update` once per finished run (in completion order — on the
    pool path that is non-deterministic, which is fine: progress is
    display, never data), :meth:`finish` when the sweep returns.

    Args:
        stream: where to write (default ``sys.stderr``).
        enabled: caller's request; AND-ed with ``stream.isatty()``.
    """

    def __init__(
        self, stream: TextIO | None = None, enabled: bool = True
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        isatty = getattr(self._stream, "isatty", None)
        self.enabled = bool(enabled) and bool(
            isatty() if callable(isatty) else False
        )
        self._width = 0
        self._reset()

    def _reset(self) -> None:
        self._total: dict[int, int] = {}
        self._done: dict[int, int] = {}
        self._failed: dict[int, int] = {}
        self._stalls: dict[int, float] = {}
        self._labels: dict[int, str] = {}
        self._runs_done = 0
        self._runs_total = 0

    def begin(self, specs: Sequence[RunSpec]) -> None:
        """Register the sweep's run specs before execution starts."""
        if not self.enabled:
            return
        self._reset()
        for spec in specs:
            index = spec.cell_index
            self._total[index] = self._total.get(index, 0) + 1
            self._labels.setdefault(index, spec.cell.describe())
        self._runs_total = len(specs)
        self._render("starting")

    def update(self, outcome: RunOutcome) -> None:
        """Record one finished run and redraw the status line."""
        if self.enabled:
            self._ingest(outcome)

    def finish(self) -> None:
        """End the sweep: leave the final counts on their own line."""
        if not self.enabled:
            return
        self._render("done")
        self._stream.write("\n")
        self._stream.flush()
        self._width = 0

    # ------------------------------------------------------------------

    def _ingest(self, outcome: RunOutcome) -> None:
        index = outcome.cell_index
        self._runs_done += 1
        self._done[index] = self._done.get(index, 0) + 1
        if not outcome.ok:
            self._failed[index] = self._failed.get(index, 0) + 1
        elif outcome.stats is not None:
            self._stalls[index] = (
                self._stalls.get(index, 0.0) + outcome.stats.stall_count
            )
        label = self._labels.get(index) or outcome.label
        if outcome.ok:
            done = self._done[index]
            mean_stalls = self._stalls.get(index, 0.0) / max(1, done)
            last = (
                f"{label} seed {outcome.seed}: "
                f"{mean_stalls:.1f} stalls/peer"
            )
        else:
            last = f"{label} seed {outcome.seed}: FAILED"
        self._render(last)

    def _render(self, last: str) -> None:
        completed = sum(
            1
            for index, total in self._total.items()
            if self._done.get(index, 0) >= total
        )
        running = sum(
            1
            for index, total in self._total.items()
            if 0 < self._done.get(index, 0) < total
        )
        failed = sum(1 for index in self._failed if self._failed[index])
        line = (
            f"sweep: {completed}/{len(self._total)} cells done"
            f" ({running} running, {failed} failed;"
            f" {self._runs_done}/{self._runs_total} runs) | {last}"
        )
        pad = max(0, self._width - len(line))
        self._stream.write("\r" + line + " " * pad)
        self._stream.flush()
        self._width = len(line)


#: The reporter used when none is requested: every call is a no-op.
class _NullProgress(SweepProgress):
    def __init__(self) -> None:  # noqa: D107 - trivial
        self._stream = None  # type: ignore[assignment]
        self.enabled = False
        self._width = 0
        self._reset()


NULL_PROGRESS = _NullProgress()
