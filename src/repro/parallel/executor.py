"""The sweep executor: fan independent swarm runs out over processes.

The paper's evaluation is a grid of independent runs (technique x
bandwidth x policy x seed), which :class:`SweepExecutor` executes at a
configurable worker count:

* ``jobs=1`` (or a tracing context) — the pure in-process path:
  every run executes in the caller's process against the caller's
  observability context, byte-for-byte the behaviour of the old serial
  loops.
* ``jobs>1`` — runs are pickled to a ``ProcessPoolExecutor``;
  completion order is whatever the machine gives, but outcomes are
  merged in (cell, seed) order, so results — including the reduced
  metrics registry — are identical to the serial path.

Worker crashes never kill a sweep: each failed run comes back as a
failed :class:`~repro.parallel.worker.RunOutcome` naming its cell, and
:meth:`SweepExecutor.run_cells` raises one :class:`SweepError` listing
every failure after the surviving runs completed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import ExperimentError, SweepError
from ..experiments.runner import CellResult, merge_cell
from ..obs.analyze import analyze_observability
from ..obs.context import Observability
from .progress import NULL_PROGRESS, SweepProgress
from .snapshot import merge_profile, merge_snapshot
from .spec import CellSpec, RunSpec
from .worker import RunOutcome, execute_run, pool_entry

#: Environment variable overriding the auto-detected worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Resolve the worker count: ``REPRO_JOBS`` env var, else cores.

    Core detection prefers the scheduling affinity mask (what a
    container is actually allowed to use) over the raw core count.
    """
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ExperimentError(
                f"{JOBS_ENV_VAR} must be a positive integer: {env!r}"
            ) from None
        if jobs < 1:
            raise ExperimentError(
                f"{JOBS_ENV_VAR} must be >= 1: {jobs}"
            )
        return jobs
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Cumulative totals across everything an executor has run.

    Attributes:
        runs: swarm runs completed or failed.
        failures: runs that failed.
        events_fired: simulator callbacks executed across all runs.
        sim_seconds: simulated seconds covered across all runs.
    """

    runs: int = 0
    failures: int = 0
    events_fired: int = 0
    sim_seconds: float = 0.0


class SweepExecutor:
    """Execute independent swarm runs at a configurable worker count.

    Args:
        jobs: worker processes; ``None`` auto-detects via
            :func:`default_jobs`.  ``1`` never creates a pool.
        timeout: optional wall-clock deadline in seconds for one
            parallel sweep; runs still unfinished at the deadline are
            reported as failed outcomes naming their cell (best
            effort: already-running workers are abandoned, not
            killed).
        progress: optional live progress reporter, notified once per
            finished run in completion order.  Display only: it never
            influences results, and it silences itself when its stream
            is not a TTY.
    """

    def __init__(
        self,
        jobs: int | None = None,
        timeout: float | None = None,
        progress: SweepProgress | None = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1: {jobs}")
        if timeout is not None and timeout <= 0:
            raise ExperimentError(
                f"timeout must be positive: {timeout}"
            )
        self.jobs = jobs if jobs is not None else default_jobs()
        self.timeout = timeout
        self.progress = progress if progress is not None else NULL_PROGRESS
        self._stats = SweepStats()

    @property
    def stats(self) -> SweepStats:
        """Cumulative totals across every sweep this executor ran."""
        return self._stats

    def map_runs(
        self,
        specs: Sequence[RunSpec],
        obs: Observability | None = None,
        analyze: bool = False,
    ) -> list[RunOutcome]:
        """Execute runs and return outcomes in (cell, seed) order.

        The in-process path (``jobs=1``, or ``obs`` with tracing
        enabled — a trace must stay on one clock in one process) runs
        specs sequentially against ``obs`` itself and propagates
        exceptions exactly like the serial loops did.  The pool path
        isolates failures into the returned outcomes and, when ``obs``
        is given, reduces each worker's metrics snapshot into
        ``obs.registry`` in deterministic order.

        Args:
            analyze: trace every run into a private ring buffer and
                attach a :class:`~repro.obs.analyze.RunAnalysis` to
                its outcome.  Each analysis is computed from that
                run's own trace where the run executed, so verdicts
                are identical at any worker count.
        """
        specs = list(specs)
        in_process = self.jobs == 1 or (
            obs is not None and obs.tracing_enabled
        )
        progress = self.progress
        progress.begin(specs)
        try:
            if in_process:
                outcomes = []
                for spec in specs:
                    spec = replace(spec, collect_metrics=False)
                    if analyze:
                        outcome = self._run_analyzed(spec, obs)
                    else:
                        outcome = execute_run(spec, obs)
                    progress.update(outcome)
                    outcomes.append(outcome)
            else:
                outcomes = self._map_pool(
                    specs,
                    collect=obs is not None,
                    analyze=analyze,
                    profile=(
                        obs is not None and obs.profile is not None
                    ),
                )
                outcomes.sort(
                    key=lambda o: (o.cell_index, o.seed_index)
                )
                if obs is not None:
                    for outcome in outcomes:
                        if outcome.metrics is not None:
                            merge_snapshot(obs.registry, outcome.metrics)
                        if (
                            outcome.profile is not None
                            and obs.profile is not None
                        ):
                            merge_profile(obs.profile, outcome.profile)
        finally:
            progress.finish()
        self._account(outcomes)
        return outcomes

    @staticmethod
    def _run_analyzed(
        spec: RunSpec, obs: Observability | None
    ) -> RunOutcome:
        """In-process analyzed run: private trace, shared registry.

        The run records into a fresh tracer configured exactly like
        the pool workers' (:meth:`Observability.tracing`), while
        metrics still accumulate into the caller's registry.  When the
        caller's own tracer is live, the run's events are replayed
        into it afterwards so an analyzing sweep still fills the
        caller's trace.
        """
        run_obs = Observability.tracing()
        if obs is not None:
            run_obs.registry = obs.registry
            run_obs.profile = obs.profile
        outcome = execute_run(spec, run_obs)
        outcome = replace(
            outcome, analysis=analyze_observability(run_obs)
        )
        if obs is not None and obs.tracer.enabled:
            for event in run_obs.events():
                obs.tracer.emit(event)
        return outcome

    def _map_pool(
        self,
        specs: list[RunSpec],
        collect: bool,
        analyze: bool = False,
        profile: bool = False,
    ) -> list[RunOutcome]:
        workers = max(1, min(self.jobs, len(specs)))
        pool = ProcessPoolExecutor(max_workers=workers)
        timed_out = False
        outcomes: list[RunOutcome] = []
        try:
            futures = {
                pool.submit(
                    pool_entry,
                    replace(
                        spec,
                        collect_metrics=collect,
                        collect_analysis=analyze,
                        collect_profile=profile,
                    ),
                ): spec
                for spec in specs
            }
            yielded: set = set()
            try:
                # Consume in completion order so the progress reporter
                # sees runs as workers finish; determinism comes from
                # the caller's (cell, seed) sort afterwards.
                for future in as_completed(
                    futures, timeout=self.timeout
                ):
                    yielded.add(future)
                    outcomes.append(
                        self._settle(future, futures[future])
                    )
                    self.progress.update(outcomes[-1])
            except FuturesTimeout:
                timed_out = True
                for future, spec in futures.items():
                    if future in yielded:
                        continue
                    if future.done():
                        outcomes.append(self._settle(future, spec))
                        continue
                    future.cancel()
                    outcomes.append(
                        self._failed(
                            spec,
                            f"TimeoutError: sweep deadline "
                            f"({self.timeout}s) exceeded",
                        )
                    )
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return outcomes

    def _settle(self, future, spec: RunSpec) -> RunOutcome:
        try:
            return future.result()
        except BaseException as exc:  # noqa: BLE001
            # A worker died hard (e.g. the pool broke) or the outcome
            # failed to unpickle; blame the run, keep the sweep.
            return self._failed(spec, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _failed(spec: RunSpec, error: str) -> RunOutcome:
        return RunOutcome(
            cell_index=spec.cell_index,
            seed_index=spec.seed_index,
            seed=spec.seed,
            label=spec.cell.describe(),
            error=error,
        )

    def _account(self, outcomes: list[RunOutcome]) -> None:
        stats = self._stats
        runs = stats.runs
        failures = stats.failures
        events = stats.events_fired
        sim_seconds = stats.sim_seconds
        for outcome in outcomes:
            runs += 1
            if outcome.ok:
                events += outcome.stats.events_fired
                sim_seconds += outcome.stats.end_time
            else:
                failures += 1
        self._stats = SweepStats(
            runs=runs,
            failures=failures,
            events_fired=events,
            sim_seconds=sim_seconds,
        )

    def run_cells(
        self,
        cells: Sequence[CellSpec],
        obs: Observability | None = None,
        analyze: bool = False,
    ) -> list[CellResult]:
        """Run every seed of every cell; merge to cells in input order.

        Args:
            cells: the sweep, one spec per experimental cell.
            obs: optional observability context (see :meth:`map_runs`).
            analyze: also trace + diagnose every run and attach the
                merged :class:`~repro.obs.analyze.CellAnalysis` to
                each cell's result.

        Returns:
            One seed-averaged :class:`CellResult` per input cell, in
            input order, numerically identical at any worker count.

        Raises:
            SweepError: when any run failed on the pool path; the
                message lists every failing (cell, seed).
        """
        cells = list(cells)
        specs = [
            RunSpec(
                cell=cell,
                seed=seed,
                cell_index=cell_index,
                seed_index=seed_index,
            )
            for cell_index, cell in enumerate(cells)
            for seed_index, seed in enumerate(cell.config.seeds)
        ]
        outcomes = self.map_runs(specs, obs=obs, analyze=analyze)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(
                f"{o.label} (seed {o.seed}): {o.error}"
                for o in failures
            )
            raise SweepError(
                f"{len(failures)} of {len(outcomes)} sweep runs "
                f"failed: {detail}"
            )
        results: list[CellResult] = []
        position = 0
        for cell in cells:
            count = len(cell.config.seeds)
            group = outcomes[position : position + count]
            position += count
            analyses = [
                o.analysis for o in group if o.analysis is not None
            ]
            results.append(
                merge_cell(
                    cell.bandwidth_kb,
                    [o.stats for o in group],
                    analyses=analyses if analyze else None,
                )
            )
        return results
