"""The sweep executor: fan independent swarm runs out over processes.

The paper's evaluation is a grid of independent runs (technique x
bandwidth x policy x seed), which :class:`SweepExecutor` executes at a
configurable worker count:

* ``jobs=1`` (or a tracing context) — the pure in-process path:
  every run executes in the caller's process against the caller's
  observability context, byte-for-byte the behaviour of the old serial
  loops.
* ``jobs>1`` — runs are pickled to a ``ProcessPoolExecutor``;
  completion order is whatever the machine gives, but outcomes are
  merged in (cell, seed) order, so results — including the reduced
  metrics registry — are identical to the serial path.

Worker crashes never kill a sweep: each failed run comes back as a
failed :class:`~repro.parallel.worker.RunOutcome` naming its cell, and
:meth:`SweepExecutor.run_cells` raises one :class:`SweepError` listing
every failure after the surviving runs completed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, replace
from typing import Sequence

from ..errors import ExperimentError, SweepError
from ..experiments.runner import CellResult, merge_cell
from ..obs.analyze import analyze_observability
from ..obs.context import Observability
from ..obs.ops import NULL_HEARTBEAT, NULL_OPS, OpsLog, ShardHeartbeat
from .progress import NULL_PROGRESS, SweepProgress
from .snapshot import merge_profile, merge_snapshot
from .spec import CellSpec, RunSpec
from .store import ResultStore
from .worker import RunOutcome, execute_run, pool_entry

#: Environment variable overriding the auto-detected worker count.
JOBS_ENV_VAR = "REPRO_JOBS"


def default_jobs() -> int:
    """Resolve the worker count: ``REPRO_JOBS`` env var, else cores.

    Core detection prefers the scheduling affinity mask (what a
    container is actually allowed to use) over the raw core count.
    """
    env = os.environ.get(JOBS_ENV_VAR, "").strip()
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise ExperimentError(
                f"{JOBS_ENV_VAR} must be a positive integer: {env!r}"
            ) from None
        if jobs < 1:
            raise ExperimentError(
                f"{JOBS_ENV_VAR} must be >= 1: {jobs}"
            )
        return jobs
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True, slots=True)
class SweepStats:
    """Cumulative totals across everything an executor has run.

    ``events_fired``/``sim_seconds`` count work *this* executor
    actually performed: runs served from the result store contribute
    to ``runs``/``runs_cached`` but fired no events now, so a fully
    warm sweep reports zero events.

    Attributes:
        runs: swarm runs completed, failed, or served from the store.
        failures: runs that failed.
        runs_cached: runs served from the result store.
        cells_cached: cells whose every seed run was a store hit
            (maintained by :meth:`SweepExecutor.run_cells`).
        cells_computed: cells where at least one run was computed.
        events_fired: simulator callbacks executed across all runs.
        sim_seconds: simulated seconds covered across all runs.
    """

    runs: int = 0
    failures: int = 0
    runs_cached: int = 0
    cells_cached: int = 0
    cells_computed: int = 0
    events_fired: int = 0
    sim_seconds: float = 0.0


class SweepExecutor:
    """Execute independent swarm runs at a configurable worker count.

    Args:
        jobs: worker processes; ``None`` auto-detects via
            :func:`default_jobs`.  ``1`` never creates a pool.
        timeout: optional wall-clock deadline in seconds for one
            parallel sweep; runs still unfinished at the deadline are
            reported as failed outcomes naming their cell (best
            effort: already-running workers are abandoned, not
            killed).
        progress: optional live progress reporter, notified once per
            finished run in completion order.  Display only: it never
            influences results, and it silences itself when its stream
            is not a TTY.
        store: optional persistent result store.  Runs whose content
            digest is already committed are served from disk (and
            reported with ``cached=True``); fresh successful runs are
            committed as they finish, making interrupted sweeps
            resumable.  Ignored for traced or profiled sweeps, which
            must execute live (see :mod:`repro.parallel.store`).
        ops: optional wall-clock span log
            (:class:`~repro.obs.ops.OpsLog`); one ``cell-run`` span
            is emitted per settled run, in completion order, under
            whatever span the caller holds open.  Telemetry only: it
            never influences results.
        heartbeat: optional shard heartbeat
            (:class:`~repro.obs.ops.ShardHeartbeat`), begun/updated/
            finished around each :meth:`map_runs` like the progress
            reporter.
    """

    def __init__(
        self,
        jobs: int | None = None,
        timeout: float | None = None,
        progress: SweepProgress | None = None,
        store: ResultStore | None = None,
        ops: OpsLog | None = None,
        heartbeat: ShardHeartbeat | None = None,
    ) -> None:
        if jobs is not None and jobs < 1:
            raise ExperimentError(f"jobs must be >= 1: {jobs}")
        if timeout is not None and timeout <= 0:
            raise ExperimentError(
                f"timeout must be positive: {timeout}"
            )
        self.jobs = jobs if jobs is not None else default_jobs()
        self.timeout = timeout
        self.progress = progress if progress is not None else NULL_PROGRESS
        self.store = store
        self.ops = ops if ops is not None else NULL_OPS
        self.heartbeat = (
            heartbeat if heartbeat is not None else NULL_HEARTBEAT
        )
        self._stats = SweepStats()

    @property
    def stats(self) -> SweepStats:
        """Cumulative totals across every sweep this executor ran."""
        return self._stats

    def map_runs(
        self,
        specs: Sequence[RunSpec],
        obs: Observability | None = None,
        analyze: bool = False,
    ) -> list[RunOutcome]:
        """Execute runs and return outcomes in (cell, seed) order.

        The in-process path (``jobs=1``, or ``obs`` with tracing
        enabled — a trace must stay on one clock in one process) runs
        specs sequentially against ``obs`` itself and propagates
        exceptions exactly like the serial loops did.  The pool path
        isolates failures into the returned outcomes and, when ``obs``
        is given, reduces each worker's metrics snapshot into
        ``obs.registry`` in deterministic order.

        When a :class:`~repro.parallel.store.ResultStore` is attached,
        each spec is first looked up by content digest: hits skip
        execution entirely (their stored outcome, with its metrics
        snapshot when the sweep is observed, joins the deterministic
        merge), and fresh successful runs are committed to the store
        as they finish.  Traced and profiled sweeps bypass the store —
        a trace must be recorded live and a profile measures this
        machine executing.

        Args:
            analyze: trace every run into a private ring buffer and
                attach a :class:`~repro.obs.analyze.RunAnalysis` to
                its outcome.  Each analysis is computed from that
                run's own trace where the run executed, so verdicts
                are identical at any worker count.
        """
        specs = list(specs)
        tracing = obs is not None and obs.tracing_enabled
        profiling = obs is not None and obs.profile is not None
        store = (
            self.store
            if self.store is not None and not tracing and not profiling
            else None
        )
        in_process = self.jobs == 1 or tracing
        progress = self.progress
        progress.begin(specs)
        self.heartbeat.begin(len(specs))
        crashed = True
        try:
            cached: list[RunOutcome] = []
            pending: list[RunSpec] = []
            invalid_before = (
                store.stats.invalidations if store is not None else 0
            )
            if store is None:
                pending = specs
            else:
                for spec in specs:
                    hit = store.get(
                        spec,
                        need_metrics=obs is not None,
                        need_analysis=analyze,
                    )
                    if hit is None:
                        pending.append(spec)
                    else:
                        cached.append(hit)
                        self._observe(hit)
            if in_process:
                fresh = self._map_in_process(
                    pending, obs, analyze=analyze, store=store
                )
            else:
                fresh = self._map_pool(
                    pending,
                    collect=obs is not None,
                    analyze=analyze,
                    profile=profiling,
                    store=store,
                )
            outcomes = cached + fresh
            outcomes.sort(key=lambda o: (o.cell_index, o.seed_index))
            if obs is not None:
                for outcome in outcomes:
                    if outcome.metrics is not None:
                        merge_snapshot(obs.registry, outcome.metrics)
                    if (
                        outcome.profile is not None
                        and obs.profile is not None
                    ):
                        merge_profile(obs.profile, outcome.profile)
            crashed = False
        finally:
            progress.finish()
            self.heartbeat.finish("failed" if crashed else "done")
        if store is not None and obs is not None:
            self._publish_store_counters(
                obs,
                outcomes,
                store.stats.invalidations - invalid_before,
            )
        self._account(outcomes)
        return outcomes

    def _observe(self, outcome: RunOutcome) -> None:
        """One settled run: notify progress, ops log, and heartbeat.

        Called in completion order (non-deterministic on the pool
        path), which is fine: all three sinks are display/telemetry,
        never data.  A cached hit's ``wall_seconds`` reports the
        *original* compute cost, so its span here has zero duration —
        serving it cost no wall time now.
        """
        self.progress.update(outcome)
        if self.ops.enabled:
            attrs = {
                "cell": outcome.label,
                "seed": outcome.seed,
                "cached": outcome.cached,
                "pid": getattr(outcome, "pid", 0),
            }
            if outcome.error is not None:
                attrs["error"] = outcome.error
            self.ops.record(
                "cell-run",
                duration_s=(
                    0.0 if outcome.cached else outcome.wall_seconds
                ),
                status="ok" if outcome.ok else "failed",
                **attrs,
            )
        self.heartbeat.update(outcome)

    def _map_in_process(
        self,
        specs: list[RunSpec],
        obs: Observability | None,
        analyze: bool,
        store: ResultStore | None,
    ) -> list[RunOutcome]:
        """The sequential path, with or without store commits.

        Without a store this is byte-for-byte the old serial loop:
        runs record straight into ``obs`` and exceptions propagate.
        With a store, runs adopt the pool's semantics instead —
        private registry reduced via snapshots, failures folded into
        outcomes — because a committed entry must be self-contained
        (usable by a later pooled sweep) and a crash mid-sweep must
        leave every finished run safely on disk.
        """
        outcomes: list[RunOutcome] = []
        for spec in specs:
            if store is not None:
                outcome = pool_entry(
                    replace(
                        spec,
                        collect_metrics=obs is not None,
                        collect_analysis=analyze,
                    )
                )
                if outcome.ok:
                    store.put(spec, outcome)
            else:
                spec = replace(spec, collect_metrics=False)
                if analyze:
                    outcome = self._run_analyzed(spec, obs)
                else:
                    outcome = execute_run(spec, obs)
            self._observe(outcome)
            outcomes.append(outcome)
        return outcomes

    @staticmethod
    def _publish_store_counters(
        obs: Observability,
        outcomes: list[RunOutcome],
        invalidations: int,
    ) -> None:
        """Surface store traffic as ``parallel.cache.store.*``.

        Hits/misses/stores are counted from the sweep's own outcomes,
        so the numbers reflect this sweep regardless of how much other
        traffic the store object saw; invalidations (entries found but
        rejected — schema drift, corruption) come from the store's
        delta over the sweep.
        """
        hits = sum(1 for o in outcomes if o.cached)
        misses = len(outcomes) - hits
        registry = obs.registry
        if hits:
            registry.counter("parallel.cache.store.hits").inc(hits)
        if misses:
            registry.counter("parallel.cache.store.misses").inc(misses)
        stored = sum(1 for o in outcomes if o.ok and not o.cached)
        if stored:
            registry.counter("parallel.cache.store.stores").inc(stored)
        if invalidations:
            registry.counter(
                "parallel.cache.store.invalidations"
            ).inc(invalidations)

    @staticmethod
    def _run_analyzed(
        spec: RunSpec, obs: Observability | None
    ) -> RunOutcome:
        """In-process analyzed run: private trace, shared registry.

        The run records into a fresh tracer configured exactly like
        the pool workers' (:meth:`Observability.tracing`), while
        metrics still accumulate into the caller's registry.  When the
        caller's own tracer is live, the run's events are replayed
        into it afterwards so an analyzing sweep still fills the
        caller's trace.
        """
        run_obs = Observability.tracing()
        if obs is not None:
            run_obs.registry = obs.registry
            run_obs.profile = obs.profile
        outcome = execute_run(spec, run_obs)
        outcome = replace(
            outcome, analysis=analyze_observability(run_obs)
        )
        if obs is not None and obs.tracer.enabled:
            for event in run_obs.events():
                obs.tracer.emit(event)
        return outcome

    def _map_pool(
        self,
        specs: list[RunSpec],
        collect: bool,
        analyze: bool = False,
        profile: bool = False,
        store: ResultStore | None = None,
    ) -> list[RunOutcome]:
        if not specs:
            return []
        workers = max(1, min(self.jobs, len(specs)))
        pool = ProcessPoolExecutor(max_workers=workers)
        timed_out = False
        outcomes: list[RunOutcome] = []
        try:
            futures = {
                pool.submit(
                    pool_entry,
                    replace(
                        spec,
                        collect_metrics=collect,
                        collect_analysis=analyze,
                        collect_profile=profile,
                    ),
                ): spec
                for spec in specs
            }
            yielded: set = set()
            try:
                # Consume in completion order so the progress reporter
                # sees runs as workers finish; determinism comes from
                # the caller's (cell, seed) sort afterwards.
                for future in as_completed(
                    futures, timeout=self.timeout
                ):
                    yielded.add(future)
                    outcome = self._settle(future, futures[future])
                    if store is not None and outcome.ok:
                        # Commit as workers finish, not at sweep end:
                        # this is what makes an interrupted sweep
                        # resumable from the store.
                        store.put(futures[future], outcome)
                    outcomes.append(outcome)
                    self._observe(outcome)
            except FuturesTimeout:
                timed_out = True
                for future, spec in futures.items():
                    if future in yielded:
                        continue
                    if future.done():
                        outcomes.append(self._settle(future, spec))
                        continue
                    future.cancel()
                    outcomes.append(
                        self._failed(
                            spec,
                            f"TimeoutError: sweep deadline "
                            f"({self.timeout}s) exceeded",
                        )
                    )
        finally:
            pool.shutdown(wait=not timed_out, cancel_futures=True)
        return outcomes

    def _settle(self, future, spec: RunSpec) -> RunOutcome:
        try:
            return future.result()
        except BaseException as exc:  # noqa: BLE001
            # A worker died hard (e.g. the pool broke) or the outcome
            # failed to unpickle; blame the run, keep the sweep.
            return self._failed(spec, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _failed(spec: RunSpec, error: str) -> RunOutcome:
        return RunOutcome(
            cell_index=spec.cell_index,
            seed_index=spec.seed_index,
            seed=spec.seed,
            label=spec.cell.describe(),
            error=error,
            pid=os.getpid(),
        )

    def _account(self, outcomes: list[RunOutcome]) -> None:
        stats = self._stats
        runs = stats.runs
        failures = stats.failures
        runs_cached = stats.runs_cached
        events = stats.events_fired
        sim_seconds = stats.sim_seconds
        for outcome in outcomes:
            runs += 1
            if not outcome.ok:
                failures += 1
            elif outcome.cached:
                # A store hit performed no simulation now; its events
                # belong to the run that originally computed it.
                runs_cached += 1
            else:
                events += outcome.stats.events_fired
                sim_seconds += outcome.stats.end_time
        self._stats = replace(
            stats,
            runs=runs,
            failures=failures,
            runs_cached=runs_cached,
            events_fired=events,
            sim_seconds=sim_seconds,
        )

    def run_cells(
        self,
        cells: Sequence[CellSpec],
        obs: Observability | None = None,
        analyze: bool = False,
    ) -> list[CellResult]:
        """Run every seed of every cell; merge to cells in input order.

        Args:
            cells: the sweep, one spec per experimental cell.
            obs: optional observability context (see :meth:`map_runs`).
            analyze: also trace + diagnose every run and attach the
                merged :class:`~repro.obs.analyze.CellAnalysis` to
                each cell's result.

        Returns:
            One seed-averaged :class:`CellResult` per input cell, in
            input order, numerically identical at any worker count.

        Raises:
            SweepError: when any run failed on the pool path; the
                message lists every failing (cell, seed).
        """
        cells = list(cells)
        specs = [
            RunSpec(
                cell=cell,
                seed=seed,
                cell_index=cell_index,
                seed_index=seed_index,
            )
            for cell_index, cell in enumerate(cells)
            for seed_index, seed in enumerate(cell.config.seeds)
        ]
        outcomes = self.map_runs(specs, obs=obs, analyze=analyze)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            detail = "; ".join(
                f"{o.label} (seed {o.seed}): {o.error}"
                for o in failures
            )
            raise SweepError(
                f"{len(failures)} of {len(outcomes)} sweep runs "
                f"failed: {detail}"
            )
        results: list[CellResult] = []
        position = 0
        cells_cached = 0
        cells_computed = 0
        for cell in cells:
            count = len(cell.config.seeds)
            group = outcomes[position : position + count]
            position += count
            if all(o.cached for o in group):
                cells_cached += 1
            else:
                cells_computed += 1
            analyses = [
                o.analysis for o in group if o.analysis is not None
            ]
            results.append(
                merge_cell(
                    cell.bandwidth_kb,
                    [o.stats for o in group],
                    analyses=analyses if analyze else None,
                )
            )
        self._stats = replace(
            self._stats,
            cells_cached=self._stats.cells_cached + cells_cached,
            cells_computed=self._stats.cells_computed + cells_computed,
        )
        return results
