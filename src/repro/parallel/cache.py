"""Process-wide memo caches for encoded videos and splice results.

Encoding the paper's 2-minute video and splicing it are pure functions
of a few scalars, yet a sweep re-derives them for every cell.  These
caches make each derivation happen once *per process*: the parent does
it once for its in-process runs, and every pool worker does it once on
its first task instead of once per task.

Keys are frozen spec dataclasses (hashable by value), so two cells
describing the same video/technique share one cached object.  An
explicit :class:`~repro.video.bitstream.Bitstream` is cached by
identity — within one process repeated splices of the same object are
free, while across processes each pickled copy is distinct (the
cacheable path for cross-process reuse is a
:class:`~repro.parallel.spec.VideoSpec`).
"""

from __future__ import annotations

from functools import lru_cache

from ..core.segments import SpliceResult
from ..video.bitstream import Bitstream
from .spec import CellSpec, SplicerSpec, VideoSpec


@lru_cache(maxsize=8)
def cached_video(spec: VideoSpec) -> Bitstream:
    """Encode (once per process) the video a spec describes."""
    return spec.encode()


@lru_cache(maxsize=64)
def cached_splice(
    video_spec: VideoSpec, splicer_spec: SplicerSpec
) -> SpliceResult:
    """Splice (once per process) a spec-described video."""
    return splicer_spec.build().splice(cached_video(video_spec))


@lru_cache(maxsize=64)
def _splice_explicit(
    video: Bitstream, splicer_spec: SplicerSpec
) -> SpliceResult:
    # Bitstream hashes by identity, so this memoizes per in-process
    # object — exactly the reuse the serial figure loops had.
    return splicer_spec.build().splice(video)


def splice_for(cell: CellSpec) -> SpliceResult:
    """The cell's spliced video, via whichever cache applies."""
    if cell.video is not None:
        return _splice_explicit(cell.video, cell.splicer)
    return cached_splice(cell.video_spec, cell.splicer)


def memo_counts() -> tuple[int, int, int, int]:
    """Current (video hits, video misses, splice hits, splice misses).

    Process-wide ``lru_cache`` totals; callers snapshot before and
    after a derivation and publish the delta (see
    :func:`publish_memo_delta`), so per-run registries — including the
    fresh ones pool workers reduce back — see only their own traffic.
    """
    video = cached_video.cache_info()
    spliced = cached_splice.cache_info()
    explicit = _splice_explicit.cache_info()
    return (
        video.hits,
        video.misses,
        spliced.hits + explicit.hits,
        spliced.misses + explicit.misses,
    )


#: Counter names under which the memo caches surface in a registry.
MEMO_COUNTERS = (
    "parallel.cache.video.hits",
    "parallel.cache.video.misses",
    "parallel.cache.splice.hits",
    "parallel.cache.splice.misses",
)


def publish_memo_delta(
    registry, before: tuple[int, int, int, int]
) -> None:
    """Record memo-cache traffic since ``before`` as obs counters.

    The counters share the ``parallel.cache.*`` naming scheme with the
    persistent result store's ``parallel.cache.store.*`` family (see
    :mod:`repro.parallel.store`).
    """
    after = memo_counts()
    for name, start, end in zip(MEMO_COUNTERS, before, after):
        if end > start:
            registry.counter(name).inc(end - start)


def clear_caches() -> None:
    """Drop every memoized video and splice (tests, memory pressure)."""
    cached_video.cache_clear()
    cached_splice.cache_clear()
    _splice_explicit.cache_clear()
