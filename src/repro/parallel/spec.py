"""Picklable descriptions of sweep work.

A sweep is a list of :class:`CellSpec` (one experimental cell each);
the executor expands every cell into per-seed :class:`RunSpec` work
units.  Specs describe *how to build* a run rather than carrying the
built objects: a worker process reconstructs the video and splice from
a few scalars (memoized process-wide, see :mod:`repro.parallel.cache`)
instead of unpickling megabytes per task.

The one exception is an explicitly supplied
:class:`~repro.video.bitstream.Bitstream` (tests stream short custom
videos): such a cell embeds the bitstream itself and bypasses the
cross-process cache.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.policy import DownloadPolicy
from ..core.splicer import DurationSplicer, GopSplicer, Splicer
from ..errors import ExperimentError
from ..p2p.swarm import FIDELITY_TIERS
from ..video.bitstream import Bitstream
from ..video.encoder import encode_paper_video
from ..experiments.config import ExperimentConfig


@dataclass(frozen=True, slots=True)
class VideoSpec:
    """How to (re-)encode a synthetic video deterministically.

    Attributes:
        seed: encoder seed (scene plan + frame-size jitter).
        duration: length in seconds; ``None`` is the paper's 2 minutes.
        bitrate: realized mean bitrate in bits/s; ``None`` is the
            paper's default.
    """

    seed: int = 1
    duration: float | None = None
    bitrate: float | None = None

    def encode(self) -> Bitstream:
        """Encode the described video (deterministic in the spec)."""
        kwargs: dict = {"seed": self.seed}
        if self.duration is not None:
            kwargs["duration"] = self.duration
        if self.bitrate is not None:
            kwargs["bitrate"] = self.bitrate
        return encode_paper_video(**kwargs)


@dataclass(frozen=True, slots=True)
class SplicerSpec:
    """How to build a splicer: technique kind plus its parameter.

    Attributes:
        kind: ``"gop"`` or ``"duration"``.
        duration: segment duration in seconds (``"duration"`` only).
    """

    kind: str
    duration: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("gop", "duration"):
            raise ExperimentError(
                f"unknown splicer kind {self.kind!r}"
            )
        if self.kind == "duration" and self.duration is None:
            raise ExperimentError(
                "duration splicing needs a segment duration"
            )

    def build(self) -> Splicer:
        """Instantiate the described splicer."""
        if self.kind == "gop":
            return GopSplicer()
        return DurationSplicer(self.duration)

    @property
    def technique(self) -> str:
        """The splicer's report name, without building it.

        Mirrors the splicers' own naming; safe even when the spec
        would not build (failure labels must never raise).
        """
        if self.kind == "gop":
            return "gop"
        duration = self.duration
        if duration == int(duration):
            return f"duration-{int(duration)}s"
        return f"duration-{duration}s"


@dataclass(frozen=True, slots=True)
class SquareWave:
    """Mid-run square-wave bandwidth modulation (ablation A4).

    Attributes:
        amplitude: swing as a fraction of the base bandwidth, in
            (0, 1).
        period: full oscillation period, seconds.
    """

    amplitude: float
    period: float

    def __post_init__(self) -> None:
        if not 0.0 < self.amplitude < 1.0:
            raise ExperimentError(
                f"amplitude must be in (0, 1): {self.amplitude}"
            )
        if self.period <= 0:
            raise ExperimentError(
                f"period must be positive: {self.period}"
            )


@dataclass(frozen=True, slots=True)
class CellSpec:
    """One experimental cell: everything needed to run its seeds.

    Attributes:
        splicer: splicing technique of the cell.
        bandwidth_kb: peer access bandwidth, kB/s.
        config: shared experiment parameters (defines the seeds).
        policy: download-policy override (``None``: the paper's
            adaptive pooling).
        video_spec: deterministic video description — the cacheable
            path.  Exactly one of ``video_spec``/``video`` is set.
        video: explicit pre-encoded bitstream (bypasses the
            cross-process cache; shipped pickled to workers).
        preroll_segments: override of the player's pre-roll depth.
        square_wave: optional mid-run bandwidth modulation.
        fidelity: swarm-backend override for this cell (``None``
            defers to ``config.fidelity``).  Part of the cell's
            content digest: changing the backend changes the spec
            identity, so manifests and caches never conflate tiers.
        label: human-readable cell identity used in failure reports
            (e.g. ``"fig2/gop @ 128 kB/s"``).
    """

    splicer: SplicerSpec
    bandwidth_kb: float
    config: ExperimentConfig
    policy: DownloadPolicy | None = None
    video_spec: VideoSpec | None = None
    video: Bitstream | None = None
    preroll_segments: int | None = None
    square_wave: SquareWave | None = None
    fidelity: str | None = None
    label: str = ""

    def __post_init__(self) -> None:
        if (self.video_spec is None) == (self.video is None):
            raise ExperimentError(
                "exactly one of video_spec/video must be given"
            )
        if self.fidelity is not None and self.fidelity not in (
            FIDELITY_TIERS
        ):
            raise ExperimentError(
                f"fidelity must be one of {FIDELITY_TIERS}: "
                f"{self.fidelity!r}"
            )

    def describe(self) -> str:
        """The cell's label, or a synthesized one."""
        if self.label:
            return self.label
        return (
            f"{self.splicer.technique} @ "
            f"{self.bandwidth_kb:g} kB/s"
        )


def cell_for(
    splicer: SplicerSpec,
    bandwidth_kb: float,
    config: ExperimentConfig,
    *,
    policy: DownloadPolicy | None = None,
    video: Bitstream | None = None,
    preroll_segments: int | None = None,
    square_wave: SquareWave | None = None,
    fidelity: str | None = None,
    label: str = "",
) -> CellSpec:
    """Build a cell, picking the cacheable path when possible.

    When ``video`` is ``None`` the cell carries a :class:`VideoSpec`
    derived from ``config.video_seed`` (the paper's video), which
    worker processes encode once and reuse across every cell; an
    explicit ``video`` is embedded as-is.
    """
    return CellSpec(
        splicer=splicer,
        bandwidth_kb=bandwidth_kb,
        config=config,
        policy=policy,
        video_spec=(
            VideoSpec(seed=config.video_seed) if video is None else None
        ),
        video=video,
        preroll_segments=preroll_segments,
        square_wave=square_wave,
        fidelity=fidelity,
        label=label,
    )


@dataclass(frozen=True, slots=True)
class RunSpec:
    """One independent swarm run: a (cell, seed) pair.

    Attributes:
        cell: the cell this run belongs to.
        seed: the swarm seed of this run.
        cell_index: position of the cell in the sweep (merge key).
        seed_index: position of the seed within the cell (merge key).
        collect_metrics: when true, a worker process records the run
            into a fresh metrics-only registry and ships a snapshot
            back for the deterministic parent-side reduction.
        collect_analysis: when true, the run is traced into a private
            ring buffer and reduced to a picklable
            :class:`~repro.obs.analyze.RunAnalysis` where it executed
            — only the analysis crosses the process boundary, never
            the trace, so attribution is identical at any worker
            count.
        collect_profile: when true, a worker process times its event
            loop into a fresh :class:`~repro.obs.profile.EngineProfile`
            and ships the per-category snapshot back, so a ``--jobs N``
            sweep's merged profile covers every worker's host time.
    """

    cell: CellSpec
    seed: int
    cell_index: int
    seed_index: int
    collect_metrics: bool = False
    collect_analysis: bool = False
    collect_profile: bool = False
