"""Parallel sweep execution (:class:`SweepExecutor` and friends).

The paper's evaluation grid — splicing technique x bandwidth x policy
x seed — is embarrassingly parallel; this package fans those
independent swarm runs out over a process pool while keeping results
bit-identical to the serial path.  See ``docs/PERFORMANCE.md`` for the
design and determinism guarantees.
"""

from .cache import (
    cached_splice,
    cached_video,
    clear_caches,
    memo_counts,
    publish_memo_delta,
    splice_for,
)
from .digest import canonical_data, content_digest, spec_digest
from .executor import (
    JOBS_ENV_VAR,
    SweepExecutor,
    SweepStats,
    default_jobs,
)
from .progress import NULL_PROGRESS, SweepProgress
from .snapshot import (
    MetricsSnapshot,
    ProfileSnapshot,
    merge_profile,
    merge_snapshot,
    snapshot_profile,
    snapshot_registry,
)
from .spec import (
    CellSpec,
    RunSpec,
    SplicerSpec,
    SquareWave,
    VideoSpec,
    cell_for,
)
from .store import (
    DEFAULT_STORE_DIR,
    STORE_ENV_VAR,
    STORE_SCHEMA,
    ResultStore,
    StoreStats,
    default_store_root,
    run_identity,
)
from .worker import RunOutcome, execute_run, pool_entry

__all__ = [
    "CellSpec",
    "DEFAULT_STORE_DIR",
    "JOBS_ENV_VAR",
    "MetricsSnapshot",
    "NULL_PROGRESS",
    "ProfileSnapshot",
    "ResultStore",
    "RunOutcome",
    "RunSpec",
    "STORE_ENV_VAR",
    "STORE_SCHEMA",
    "SplicerSpec",
    "SquareWave",
    "StoreStats",
    "SweepExecutor",
    "SweepProgress",
    "SweepStats",
    "VideoSpec",
    "cached_splice",
    "cached_video",
    "canonical_data",
    "cell_for",
    "clear_caches",
    "content_digest",
    "default_jobs",
    "default_store_root",
    "execute_run",
    "memo_counts",
    "merge_profile",
    "merge_snapshot",
    "pool_entry",
    "publish_memo_delta",
    "run_identity",
    "snapshot_profile",
    "snapshot_registry",
    "spec_digest",
    "splice_for",
]
