"""The work a single sweep run performs, parent- or worker-side.

:func:`execute_run` is the one code path that turns a
:class:`~repro.parallel.spec.RunSpec` into per-seed stats — the
executor calls it directly for in-process sweeps and via
:func:`pool_entry` inside pool workers.  Because both paths run the
same deterministic simulation on the same reconstructed inputs, a
cell's numbers are identical at any worker count.

:func:`pool_entry` must stay a module-level function (pickled by
reference into worker processes) and never raise: any exception is
folded into a failed :class:`RunOutcome` naming its cell, so one
crashed run reports itself instead of killing the sweep.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace
from time import perf_counter

from ..experiments.config import make_swarm_config
from ..experiments.runner import SeedStats, seed_stats
from ..obs.analyze import RunAnalysis, analyze_observability
from ..obs.context import Observability
from ..obs.profile import EngineProfile
from ..p2p.swarm import Swarm, build_swarm
from ..units import kB_per_s
from .cache import memo_counts, publish_memo_delta, splice_for
from .snapshot import (
    MetricsSnapshot,
    ProfileSnapshot,
    snapshot_profile,
    snapshot_registry,
)
from .spec import RunSpec, SquareWave


@dataclass(frozen=True, slots=True)
class RunOutcome:
    """What one (cell, seed) run produced — or how it failed.

    Attributes:
        cell_index: merge key (position of the cell in the sweep).
        seed_index: merge key (position of the seed in the cell).
        seed: the swarm seed that ran.
        label: the cell's human-readable identity.
        stats: per-seed scalars (``None`` when the run failed).
        error: ``"ExcType: message"`` when the run failed.
        wall_seconds: wall-clock time the run took where it executed.
        metrics: registry snapshot (pool runs with metrics collection
            only).
        analysis: the run's stall diagnosis (analyzing sweeps only);
            computed from the run's private trace where the run
            executed, so it is identical at any worker count.
        profile: per-category engine wall time measured where the run
            executed (profiling pool runs only).
        cached: the outcome was served from a
            :class:`~repro.parallel.store.ResultStore` instead of
            being computed this sweep; ``wall_seconds`` then reports
            what the *original* execution cost.
        pid: process id that executed the run (the parent for
            in-process sweeps, a pool worker otherwise).  Entries
            pickled before the field existed unpickle without the
            slot; the store defaults it to ``0`` on load, which is
            why adding this optional field is not a ``repro.store``
            schema bump.
    """

    cell_index: int
    seed_index: int
    seed: int
    label: str = ""
    stats: SeedStats | None = None
    error: str | None = None
    wall_seconds: float = 0.0
    metrics: MetricsSnapshot | None = None
    analysis: RunAnalysis | None = None
    profile: ProfileSnapshot | None = None
    cached: bool = False
    pid: int = 0

    @property
    def ok(self) -> bool:
        """Whether the run completed and produced stats."""
        return self.error is None and self.stats is not None


def _schedule_square_wave(
    swarm: Swarm, base: float, wave: SquareWave
) -> None:
    """Toggle every leecher's bandwidth between the two wave levels."""
    low = base * (1.0 - wave.amplitude)
    high = base * (1.0 + wave.amplitude)

    def set_level(level: float, next_level: float) -> None:
        swarm.set_peer_bandwidth(level)
        swarm.sim.schedule(
            wave.period / 2.0, set_level, next_level, level
        )

    swarm.sim.schedule(wave.period / 2.0, set_level, low, high)


def execute_run(
    spec: RunSpec, obs: Observability | None = None
) -> RunOutcome:
    """Run one (cell, seed) swarm and reduce it to an outcome.

    Args:
        spec: the run to perform.
        obs: observability context the swarm records into (the parent's
            own context on the in-process path, a private registry in
            pool workers).  Exceptions propagate — isolation is
            :func:`pool_entry`'s job.
    """
    cell = spec.cell
    if obs is not None:
        memo_before = memo_counts()
    splice = splice_for(cell)
    if obs is not None:
        publish_memo_delta(obs.registry, memo_before)
    swarm_config = make_swarm_config(
        cell.bandwidth_kb, spec.seed, cell.config, cell.policy
    )
    if cell.preroll_segments is not None:
        swarm_config = replace(
            swarm_config, preroll_segments=cell.preroll_segments
        )
    if cell.fidelity is not None:
        swarm_config = replace(swarm_config, fidelity=cell.fidelity)
    swarm = build_swarm(splice, swarm_config, obs=obs)
    if cell.square_wave is not None:
        _schedule_square_wave(
            swarm, kB_per_s(cell.bandwidth_kb), cell.square_wave
        )
    started = perf_counter()
    result = swarm.run()
    return RunOutcome(
        cell_index=spec.cell_index,
        seed_index=spec.seed_index,
        seed=spec.seed,
        label=cell.describe(),
        stats=seed_stats(
            result,
            events_fired=swarm.sim.events_fired,
            end_time=swarm.sim.now,
        ),
        wall_seconds=perf_counter() - started,
        pid=os.getpid(),
    )


def pool_entry(spec: RunSpec) -> RunOutcome:
    """Worker-process entry point: never raises, always an outcome."""
    if spec.collect_analysis:
        # Same tracer configuration as the executor's in-process
        # analyzing path — the trace, and therefore the attribution,
        # must not depend on where the run executed.
        obs = Observability.tracing()
    elif spec.collect_metrics or spec.collect_profile:
        obs = Observability.metrics_only()
    else:
        obs = None
    if spec.collect_profile and obs is not None:
        obs.profile = EngineProfile()
    try:
        outcome = execute_run(spec, obs)
    except BaseException as exc:  # noqa: BLE001 - isolation boundary
        return RunOutcome(
            cell_index=spec.cell_index,
            seed_index=spec.seed_index,
            seed=spec.seed,
            label=spec.cell.describe(),
            error=f"{type(exc).__name__}: {exc}",
            pid=os.getpid(),
        )
    if obs is not None and spec.collect_metrics:
        outcome = replace(
            outcome, metrics=snapshot_registry(obs.registry)
        )
    if obs is not None and spec.collect_analysis:
        outcome = replace(
            outcome, analysis=analyze_observability(obs)
        )
    if obs is not None and obs.profile is not None:
        outcome = replace(
            outcome, profile=snapshot_profile(obs.profile)
        )
    return outcome
