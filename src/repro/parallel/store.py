"""Persistent, content-addressed cache of sweep run results.

A sweep cell is a pure function of its spec: the same
:class:`~repro.parallel.spec.CellSpec` and seed always produce the
same :class:`~repro.experiments.runner.SeedStats`.  PR 6's canonical
JSON :func:`~repro.parallel.digest.content_digest` turns that purity
into an *identity* — two processes, two machines, or two weeks compute
the same digest for the same spec — and this module turns the identity
into a disk cache:

* **warm re-runs**: re-running a sweep only computes cells whose spec
  changed; unchanged cells are disk hits whose merged results are
  byte-identical at any ``--jobs`` count (the cached object *is* the
  :class:`~repro.parallel.worker.RunOutcome` the original run
  produced);
* **resumability**: the executor commits each successful run as it
  finishes, so an interrupted sweep re-run against the same store
  picks up exactly where it left off;
* **sharding**: stores are plain directories of digest-named files —
  any shard of a sweep can run on any machine and the shard stores
  merge by file union (``repro sweep merge``).

Keys incorporate :data:`STORE_SCHEMA` so a format change never
misreads old entries: bump the version and every old entry simply
misses (see ``docs/OBSERVABILITY.md`` for the schema-version policy).

What is *not* cached: traced runs (a trace must be recorded live, on
one clock, in one process) and profiled runs (an engine profile
measures *this* machine executing — a cache hit has no host time).
The executor bypasses the store for both.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, replace
from pathlib import Path

from ..errors import StoreError
from ..obs.ops import NULL_OPS, OpsLog
from .digest import content_digest
from .spec import RunSpec
from .worker import RunOutcome

#: Version tag of the result-store entry layout.  Bump the integer on
#: any change to what an entry contains or how it is keyed; old
#: entries then miss instead of being misread (the policy mirrors
#: ``repro.bench/1``, see ``docs/OBSERVABILITY.md``).
STORE_SCHEMA = "repro.store/1"

#: Environment variable naming a default store directory.
STORE_ENV_VAR = "REPRO_STORE"

#: Default store directory (relative to the working directory).
DEFAULT_STORE_DIR = ".repro-store"


def run_identity(spec: RunSpec, schema: str = STORE_SCHEMA) -> str:
    """The content digest that *is* a run's cache identity.

    Only what determines the simulation's output participates: the
    cell spec (technique, bandwidth, config — including fidelity,
    seeds, churn —, policy, video identity) and the run's seed.  The
    executor-side merge keys (``cell_index``/``seed_index``) and the
    observability collection flags do not: the same run requested by
    two different sweeps, or with different instrumentation, is still
    the same run.
    """
    return content_digest((schema, spec.cell, spec.seed))


@dataclass(frozen=True, slots=True)
class StoreStats:
    """Cumulative cache traffic of one :class:`ResultStore` instance.

    Attributes:
        hits: lookups served from disk.
        misses: lookups that found no usable entry (including entries
            lacking a component the caller needs, e.g. a metrics
            snapshot).
        stores: entries committed.
        invalidations: entries found but rejected — schema mismatch,
            digest mismatch, or a corrupt/unreadable file.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    invalidations: int = 0


class ResultStore:
    """A directory of :class:`RunOutcome` entries keyed by content.

    Layout: ``<root>/<k[:2]>/<k>.pkl`` where ``k`` is
    :func:`run_identity` of the run.  Entries are committed atomically
    (temp file + ``os.replace``), so concurrent writers — pool
    workers, parallel shards on a shared filesystem — can only ever
    race to write equivalent entries, never corrupt one.

    Args:
        root: store directory; created on first commit.
        schema: entry-layout version (tests inject a fake one to
            exercise invalidation); everything else should use the
            default :data:`STORE_SCHEMA`.
        ops: optional wall-clock span log; each commit emits a
            ``store-commit`` span and each :meth:`absorb` source a
            ``store-absorb`` span, parented under whatever span the
            orchestration layer holds open.  Also assignable after
            construction (the sweep service attaches its shard log).
    """

    def __init__(
        self,
        root: str | Path,
        schema: str = STORE_SCHEMA,
        ops: OpsLog | None = None,
    ) -> None:
        self.root = Path(root)
        self.schema = schema
        self.ops = ops if ops is not None else NULL_OPS
        self._stats = StoreStats()

    @property
    def stats(self) -> StoreStats:
        """Cumulative hit/miss/store/invalidation totals."""
        return self._stats

    def run_key(self, spec: RunSpec) -> str:
        """The run's cache key (see :func:`run_identity`)."""
        return run_identity(spec, self.schema)

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(
        self,
        spec: RunSpec,
        *,
        need_metrics: bool = False,
        need_analysis: bool = False,
    ) -> RunOutcome | None:
        """The cached outcome for ``spec``, or ``None`` on a miss.

        A returned outcome has ``cached=True`` and the *caller's*
        merge keys patched in, so it drops straight into the
        executor's deterministic (cell, seed) merge.

        Args:
            need_metrics: require a metrics snapshot in the entry (an
                observability-bearing sweep must reduce every run's
                counters, cached or not); entries without one miss.
            need_analysis: require a stall diagnosis in the entry;
                entries without one miss.
        """
        path = self._path(self.run_key(spec))
        try:
            payload = path.read_bytes()
        except OSError:
            self._count(misses=1)
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:  # noqa: BLE001 - any corrupt entry misses
            self._count(misses=1, invalidations=1)
            return None
        outcome = self._validate(entry, self.run_key(spec))
        if outcome is None:
            self._count(misses=1, invalidations=1)
            return None
        if need_metrics and outcome.metrics is None:
            self._count(misses=1)
            return None
        if need_analysis and outcome.analysis is None:
            self._count(misses=1)
            return None
        self._count(hits=1)
        return replace(
            outcome,
            cell_index=spec.cell_index,
            seed_index=spec.seed_index,
            cached=True,
        )

    def _validate(self, entry: object, key: str) -> RunOutcome | None:
        if not isinstance(entry, dict):
            return None
        if entry.get("schema") != self.schema:
            return None
        if entry.get("key") != key:
            return None
        outcome = entry.get("outcome")
        if not isinstance(outcome, RunOutcome) or not outcome.ok:
            return None
        # Entries pickled before the optional ``pid`` field existed
        # unpickle with that slot unset; default it so field access
        # and ``dataclasses.replace`` keep working (this is why the
        # addition was not a schema bump).
        if getattr(outcome, "pid", None) is None:
            object.__setattr__(outcome, "pid", 0)
        return outcome

    def put(self, spec: RunSpec, outcome: RunOutcome) -> None:
        """Commit one successful run's outcome.

        Failed outcomes are rejected (a crash is not a result), and
        the stored entry never carries an engine profile — host time
        is a property of the machine that ran, not of the run.
        """
        if not outcome.ok:
            raise StoreError(
                f"refusing to cache a failed run: {outcome.label!r} "
                f"({outcome.error})"
            )
        key = self.run_key(spec)
        entry = {
            "schema": self.schema,
            "key": key,
            "outcome": replace(outcome, profile=None, cached=False),
        }
        if self.ops.enabled:
            with self.ops.span(
                "store-commit",
                key=key,
                cell=outcome.label,
                seed=outcome.seed,
            ):
                self._commit(key, entry)
        else:
            self._commit(key, entry)
        self._count(stores=1)

    def _commit(self, key: str, entry: dict) -> None:
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_bytes(
            pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        )
        os.replace(tmp, path)

    def keys(self) -> list[str]:
        """Every entry key in the store, sorted."""
        if not self.root.is_dir():
            return []
        found = [
            path.stem
            for path in self.root.glob("??/*.pkl")
        ]
        found.sort()
        return found

    def __len__(self) -> int:
        return len(self.keys())

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for key in self.keys():
            try:
                self._path(key).unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def absorb(self, source: "ResultStore | str | Path") -> int:
        """Copy entries from ``source`` into this store (shard merge).

        Entries already present locally are kept (content-addressed
        keys make both copies equivalent).  Returns the number of
        entries copied.
        """
        other = (
            source
            if isinstance(source, ResultStore)
            else ResultStore(source, schema=self.schema)
        )
        if self.ops.enabled:
            with self.ops.span(
                "store-absorb", source=str(other.root)
            ) as span:
                copied = self._absorb(other)
                span.attrs["copied"] = copied
        else:
            copied = self._absorb(other)
        return copied

    def _absorb(self, other: "ResultStore") -> int:
        copied = 0
        for key in other.keys():
            target = self._path(key)
            if target.exists():
                continue
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(
                f"{target.name}.tmp.{os.getpid()}"
            )
            tmp.write_bytes(other._path(key).read_bytes())
            os.replace(tmp, target)
            copied += 1
        return copied

    def _count(
        self,
        hits: int = 0,
        misses: int = 0,
        stores: int = 0,
        invalidations: int = 0,
    ) -> None:
        stats = self._stats
        self._stats = StoreStats(
            hits=stats.hits + hits,
            misses=stats.misses + misses,
            stores=stats.stores + stores,
            invalidations=stats.invalidations + invalidations,
        )


def default_store_root() -> Path:
    """The default store directory: ``$REPRO_STORE`` or
    ``.repro-store`` under the working directory."""
    env = os.environ.get(STORE_ENV_VAR, "").strip()
    return Path(env) if env else Path(DEFAULT_STORE_DIR)
