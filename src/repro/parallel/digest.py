"""Stable content digests for sweep specs (and other plain data).

The ROADMAP's sharded, resumable sweep service needs one primitive
before anything else: a digest of *what a run is* that two processes —
or two machines, or two weeks — compute identically.  Python's builtin
``hash`` is salted per process and ``pickle`` output varies across
versions, so neither qualifies.  This module derives a digest from a
canonical JSON encoding instead:

* dataclasses flatten to ``{"__type__": name, field: value, ...}`` in
  declaration order (the type name guards against two specs with the
  same field soup colliding);
* dicts become sorted key/value pair lists (keys may be any digestible
  value, as in histogram ``value -> weight`` maps);
* sets are sorted by their encoded form; tuples and lists are equal;
* bytes contribute their SHA-256, not their content;
* any other object contributes its type plus its ``__dict__`` /
  ``__slots__`` state, so policy objects and config classes digest by
  value without opting in.

Benchmark artifacts embed these digests so ``repro compare`` can tell
"same workload, different speed" apart from "different workload";
the sweep cache will later key ``CellResult``s on them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields, is_dataclass
from typing import Any

from ..errors import ExperimentError

#: Hex digits kept from the SHA-256; 64 bits of collision resistance
#: is plenty for cache keys and artifact labels while staying readable.
DIGEST_LENGTH = 16

_MAX_DEPTH = 32


def canonical_data(obj: Any, _depth: int = 0) -> Any:
    """Reduce ``obj`` to a JSON-encodable canonical form.

    Deterministic across processes and machines: no ids, no salted
    hashes, no unordered iteration.

    Raises:
        ExperimentError: on self-referential or absurdly deep
            structures (the digest would otherwise recurse forever).
    """
    if _depth > _MAX_DEPTH:
        raise ExperimentError(
            "content digest: structure deeper than "
            f"{_MAX_DEPTH} levels (self-referential spec?)"
        )
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, bytes):
        return {"__bytes__": hashlib.sha256(obj).hexdigest()}
    if is_dataclass(obj) and not isinstance(obj, type):
        encoded: dict[str, Any] = {"__type__": type(obj).__qualname__}
        for field in fields(obj):
            encoded[field.name] = canonical_data(
                getattr(obj, field.name), _depth + 1
            )
        return encoded
    if isinstance(obj, dict):
        pairs = [
            [canonical_data(key, _depth + 1), canonical_data(value, _depth + 1)]
            for key, value in obj.items()
        ]
        pairs.sort(key=lambda pair: _encode(pair[0]))
        return {"__pairs__": pairs}
    if isinstance(obj, (list, tuple)):
        return [canonical_data(item, _depth + 1) for item in obj]
    if isinstance(obj, (set, frozenset)):
        items = [canonical_data(item, _depth + 1) for item in obj]
        items.sort(key=_encode)
        return {"__set__": items}
    state = getattr(obj, "__dict__", None)
    if state is None:
        slots = getattr(type(obj), "__slots__", None)
        if slots is not None:
            state = {
                name: getattr(obj, name)
                for name in slots
                if hasattr(obj, name)
            }
    if state is not None:
        return {
            "__type__": type(obj).__qualname__,
            "state": canonical_data(state, _depth + 1),
        }
    # Opaque leaf (e.g. a function): its qualified name is the best
    # stable identity available.
    name = getattr(obj, "__qualname__", None) or repr(type(obj))
    return {"__opaque__": f"{type(obj).__module__}.{name}"}


def _encode(canonical: Any) -> str:
    return json.dumps(canonical, sort_keys=True, separators=(",", ":"))


def content_digest(obj: Any) -> str:
    """A stable hex digest of ``obj``'s canonical content."""
    payload = _encode(canonical_data(obj))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[
        :DIGEST_LENGTH
    ]


def spec_digest(spec: Any) -> str:
    """Digest of a :class:`CellSpec`/:class:`RunSpec` (alias with a
    name that says what it is for)."""
    return content_digest(spec)
