"""Metrics snapshots: ship a worker's registry back to the parent.

A worker process records its run into a private
:class:`~repro.obs.metrics.MetricsRegistry`; at run end the registry
is flattened into a plain-data :class:`MetricsSnapshot` (cheap to
pickle) and the parent reduces snapshots back into its own registry in
deterministic (cell, seed) order.  The reduction mirrors what sharing
one registry across serial runs produces:

* counters add;
* histograms merge their finalized value->seconds weights;
* gauges take the last written value (merge order makes "last" the
  final (cell, seed) run, as in a serial sweep);
* timeseries append samples in merge order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..obs.metrics import MetricsRegistry
from ..obs.profile import EngineProfile


@dataclass(frozen=True, slots=True)
class MetricsSnapshot:
    """A registry flattened to picklable plain data.

    Attributes:
        counters: counter name -> total.
        gauges: gauge name -> last value.
        histograms: histogram name -> (value -> seconds held).
        timeseries: series name -> ``(sim_time, value)`` samples.
    """

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, dict[float, float]] = field(
        default_factory=dict
    )
    timeseries: dict[str, list[tuple[float, float]]] = field(
        default_factory=dict
    )

    def __len__(self) -> int:
        return (
            len(self.counters)
            + len(self.gauges)
            + len(self.histograms)
            + len(self.timeseries)
        )


def snapshot_registry(registry: MetricsRegistry) -> MetricsSnapshot:
    """Flatten ``registry`` into a snapshot.

    Histograms should be finalized first (``Swarm.run`` does this);
    only closed weights travel — open per-key intervals do not.
    """
    return MetricsSnapshot(
        counters={
            name: counter.value
            for name, counter in registry.counters().items()
        },
        gauges={
            name: gauge.value
            for name, gauge in registry.gauges().items()
        },
        histograms={
            name: histogram.weights()
            for name, histogram in registry.histograms().items()
        },
        timeseries={
            name: list(series.samples)
            for name, series in registry.all_timeseries().items()
        },
    )


@dataclass(frozen=True, slots=True)
class ProfileSnapshot:
    """An :class:`~repro.obs.profile.EngineProfile` flattened to
    picklable plain data (the worker->parent counterpart of
    :class:`MetricsSnapshot`).

    Attributes:
        counts: handler category -> events fired.
        wall_seconds: handler category -> host seconds spent.
    """

    counts: dict[str, int] = field(default_factory=dict)
    wall_seconds: dict[str, float] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.counts)


def snapshot_profile(profile: EngineProfile) -> ProfileSnapshot:
    """Flatten a worker's engine profile for the trip home."""
    snapshot = profile.snapshot()
    return ProfileSnapshot(
        counts=snapshot["counts"],
        wall_seconds=snapshot["wall_seconds"],
    )


def merge_profile(
    profile: EngineProfile, snapshot: ProfileSnapshot
) -> None:
    """Add one worker's per-category totals into the parent profile.

    Order-independent (sums of sums), so the parent's merged profile
    is identical at any worker count — wall seconds were measured
    *where the run executed*, which is the point: ``--jobs N`` sweeps
    report where host time actually went across the whole pool.
    """
    profile.merge(snapshot.counts, snapshot.wall_seconds)


def merge_snapshot(
    registry: MetricsRegistry, snapshot: MetricsSnapshot
) -> None:
    """Reduce one worker snapshot into ``registry`` (see module doc)."""
    for name, value in snapshot.counters.items():
        registry.counter(name).inc(value)
    for name, value in snapshot.gauges.items():
        registry.gauge(name).set(value)
    for name, weights in snapshot.histograms.items():
        histogram = registry.histogram(name)
        for value, seconds in weights.items():
            histogram.add_weight(value, seconds)
    for name, samples in snapshot.timeseries.items():
        series = registry.timeseries(name)
        for time, value in samples:
            series.sample(time, value)
