"""Segment model produced by splicing and consumed by transport/playback."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SpliceError
from ..video.frames import Frame, FrameType


@dataclass(frozen=True, slots=True)
class Segment:
    """One independently-playable slice of a video.

    Attributes:
        index: 0-based position in the segment sequence.
        frames: frames of the segment in presentation order; the first
            frame is always an I-frame (possibly inserted by the
            duration splicer).
        inserted_i_frame: True when the splicer converted the original
            first frame into an I-frame (duration splicing overhead).
        original_first_frame_size: encoded size of the first frame
            before conversion; equals ``frames[0].size`` when nothing
            was inserted.
    """

    index: int
    frames: tuple[Frame, ...]
    inserted_i_frame: bool = False
    original_first_frame_size: int = 0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise SpliceError(f"segment index must be >= 0, got {self.index}")
        if not self.frames:
            raise SpliceError("a segment must contain at least one frame")
        if self.frames[0].frame_type is not FrameType.I:
            raise SpliceError(
                f"segment {self.index} must start with an I-frame "
                f"(got {self.frames[0].frame_type.value}); segments must "
                "be independently decodable"
            )
        if self.original_first_frame_size == 0:
            object.__setattr__(
                self, "original_first_frame_size", self.frames[0].size
            )

    @property
    def start_pts(self) -> float:
        """Presentation time of the segment's first frame."""
        return self.frames[0].pts

    @property
    def end_pts(self) -> float:
        """Presentation time at which the segment's last frame ends."""
        return self.frames[-1].end_pts

    @property
    def duration(self) -> float:
        """Playback duration in seconds."""
        return self.end_pts - self.start_pts

    @property
    def size(self) -> int:
        """Encoded size in bytes (including any inserted I-frame)."""
        return sum(frame.size for frame in self.frames)

    @property
    def overhead(self) -> int:
        """Extra bytes added by splicing (0 for GOP splicing)."""
        if not self.inserted_i_frame:
            return 0
        return self.frames[0].size - self.original_first_frame_size


@dataclass(frozen=True, slots=True)
class SpliceResult:
    """The output of a splicer: the segment sequence plus provenance.

    Attributes:
        technique: human-readable splicer name (e.g. ``"gop"``,
            ``"duration-4s"``).
        segments: the segments in playback order.
        source_size: encoded size of the original stream in bytes.
    """

    technique: str
    segments: tuple[Segment, ...] = field(default_factory=tuple)
    source_size: int = 0

    def __post_init__(self) -> None:
        if not self.segments:
            raise SpliceError("splicing produced no segments")
        for expected, segment in enumerate(self.segments):
            if segment.index != expected:
                raise SpliceError(
                    f"segment indices must be contiguous; expected "
                    f"{expected}, got {segment.index}"
                )
        for earlier, later in zip(self.segments, self.segments[1:]):
            if abs(later.start_pts - earlier.end_pts) > 1e-6:
                raise SpliceError(
                    f"segment {later.index} does not abut segment "
                    f"{earlier.index} in presentation time"
                )

    def __len__(self) -> int:
        return len(self.segments)

    @property
    def total_size(self) -> int:
        """Total bytes across all segments."""
        return sum(segment.size for segment in self.segments)

    @property
    def overhead_bytes(self) -> int:
        """Bytes added relative to the source stream."""
        return self.total_size - self.source_size

    @property
    def overhead_ratio(self) -> float:
        """Overhead as a fraction of the source size."""
        if self.source_size == 0:
            return 0.0
        return self.overhead_bytes / self.source_size

    @property
    def duration(self) -> float:
        """Total playback duration in seconds."""
        return self.segments[-1].end_pts - self.segments[0].start_pts

    def segment_sizes(self) -> list[int]:
        """Sizes of all segments in bytes, in order."""
        return [segment.size for segment in self.segments]

    def segment_durations(self) -> list[float]:
        """Durations of all segments in seconds, in order."""
        return [segment.duration for segment in self.segments]

    def mean_segment_size(self) -> float:
        """Average segment size in bytes."""
        return self.total_size / len(self.segments)
