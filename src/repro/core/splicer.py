"""Video splicers (paper Section II).

Two techniques:

* :class:`GopSplicer` — cut at closed-GOP boundaries.  Zero byte
  overhead, but segment sizes track scene content and can be wildly
  uneven (one 10-second stationary shot becomes one enormous segment).
* :class:`DurationSplicer` — cut every ``target_duration`` seconds,
  frame-accurately.  Every cut that lands mid-GOP converts the frame at
  the cut into a fresh I-frame so the segment stays independently
  decodable — that inserted I-frame is the technique's byte overhead.
"""

from __future__ import annotations

import abc

from ..errors import SpliceError
from ..video.bitstream import Bitstream
from ..video.frames import Frame, FrameType
from .segments import Segment, SpliceResult


class Splicer(abc.ABC):
    """Strategy interface: turn a bitstream into playable segments."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short technique name used in reports (e.g. ``"duration-4s"``)."""

    @abc.abstractmethod
    def splice(self, stream: Bitstream) -> SpliceResult:
        """Splice ``stream`` into segments.

        Returns:
            A validated :class:`SpliceResult` whose segments exactly
            cover the stream in order.
        """


class GopSplicer(Splicer):
    """Cut the stream at closed-GOP boundaries.

    Open GOPs (whose head may reference the previous GOP — the paper's
    Section II-A distinction) are never split from their predecessor:
    a cut is legal only in front of a closed (IDR) GOP, so on an
    open-GOP stream each segment is a closed GOP plus any open GOPs
    that depend on it.

    Args:
        gops_per_segment: number of consecutive closed groups per
            segment (paper uses 1: "we spliced the video based on
            GOP").
    """

    def __init__(self, gops_per_segment: int = 1) -> None:
        if gops_per_segment < 1:
            raise SpliceError(
                f"gops_per_segment must be >= 1, got {gops_per_segment}"
            )
        self._gops_per_segment = gops_per_segment

    @property
    def name(self) -> str:
        if self._gops_per_segment == 1:
            return "gop"
        return f"gop-x{self._gops_per_segment}"

    @property
    def gops_per_segment(self) -> int:
        """Number of closed groups per segment."""
        return self._gops_per_segment

    def splice(self, stream: Bitstream) -> SpliceResult:
        groups = self._closed_groups(stream)
        segments: list[Segment] = []
        for start in range(0, len(groups), self._gops_per_segment):
            chunk = groups[start : start + self._gops_per_segment]
            frames: list[Frame] = []
            for group in chunk:
                for gop in group:
                    frames.extend(gop.frames)
            segments.append(
                Segment(index=len(segments), frames=tuple(frames))
            )
        return SpliceResult(
            technique=self.name,
            segments=tuple(segments),
            source_size=stream.size,
        )

    @staticmethod
    def _closed_groups(stream: Bitstream) -> list[list]:
        """Group GOPs so every group starts at a closed boundary."""
        if not stream.gops[0].closed:
            raise SpliceError(
                "stream starts with an open GOP; nothing can decode it"
            )
        groups: list[list] = []
        for gop in stream.gops:
            if gop.closed:
                groups.append([gop])
            else:
                groups[-1].append(gop)
        return groups


class DurationSplicer(Splicer):
    """Cut the stream every ``target_duration`` seconds, frame-accurately.

    The cut lands on the first frame whose presentation time reaches
    the next multiple of the target duration.  When that frame is not
    an I-frame it is re-encoded as one; the new I-frame's size is taken
    from the leading I-frame of the GOP the cut fell inside (the
    content there is the same, so its intra-coded cost is a faithful
    estimate).  This inserted I-frame is the overhead the paper calls
    "much more data to be transferred".

    Args:
        target_duration: segment duration in seconds (paper: 2, 4, 8).
    """

    def __init__(self, target_duration: float) -> None:
        if target_duration <= 0:
            raise SpliceError(
                f"target_duration must be positive, got {target_duration}"
            )
        self._target_duration = target_duration

    @property
    def name(self) -> str:
        if self._target_duration == int(self._target_duration):
            return f"duration-{int(self._target_duration)}s"
        return f"duration-{self._target_duration}s"

    @property
    def target_duration(self) -> float:
        """Configured segment duration in seconds."""
        return self._target_duration

    def splice(self, stream: Bitstream) -> SpliceResult:
        gop_i_size = self._i_frame_size_by_frame(stream)
        segments: list[Segment] = []
        current: list[Frame] = []
        inserted = False
        original_first_size = 0
        next_cut = self._target_duration

        def close_segment() -> None:
            nonlocal current, inserted, original_first_size
            segments.append(
                Segment(
                    index=len(segments),
                    frames=tuple(current),
                    inserted_i_frame=inserted,
                    original_first_frame_size=(
                        original_first_size or current[0].size
                    ),
                )
            )
            current = []
            inserted = False
            original_first_size = 0

        for frame in stream.frames():
            if current and frame.pts >= next_cut - 1e-9:
                close_segment()
                next_cut += self._target_duration
            if not current and frame.frame_type is not FrameType.I:
                original_first_size = frame.size
                frame = frame.as_type(FrameType.I, gop_i_size[frame.index])
                inserted = True
            current.append(frame)
        close_segment()
        return SpliceResult(
            technique=self.name,
            segments=tuple(segments),
            source_size=stream.size,
        )

    @staticmethod
    def _i_frame_size_by_frame(stream: Bitstream) -> dict[int, int]:
        """Map every frame index to its GOP's I-frame size."""
        mapping: dict[int, int] = {}
        for gop in stream.gops:
            i_size = gop.i_frame.size
            for frame in gop.frames:
                mapping[frame.index] = i_size
        return mapping
