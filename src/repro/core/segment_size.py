"""Segment sizing (paper Section IV) and duration-adaptive splicing.

Section IV argues two bounds on segment size:

* **upper bound** — in a hybrid CDN+P2P system where the CDN serves one
  segment at a time, the segment must finish downloading before the
  buffer drains: ``W_max = B * T`` (Eq. 1 solved for ``W`` at ``k=1``);
* **lower bound** — segments must be large enough that per-connection
  TCP costs (handshake, slow start) do not dominate the transfer.

The paper leaves "an algorithm to determine the optimal segment size"
as future work; :class:`AdaptiveDurationPlanner` implements that
future-work item with an explicit cost model built on the same TCP
assumptions as the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import DEFAULT_MSS


def max_cdn_segment_size(bandwidth: float, buffered_playtime: float) -> float:
    """Maximum safe segment size for one-at-a-time CDN fetching.

    Args:
        bandwidth: available bandwidth ``B`` in bytes/second.
        buffered_playtime: buffered seconds ``T`` ahead of the playhead.

    Returns:
        ``B * T`` bytes — downloading one segment no larger than this
        completes before the buffer drains.
    """
    if bandwidth < 0:
        raise ConfigurationError(f"bandwidth must be >= 0, got {bandwidth}")
    if buffered_playtime < 0:
        raise ConfigurationError(
            f"buffered_playtime must be >= 0, got {buffered_playtime}"
        )
    return bandwidth * buffered_playtime


def predicted_download_time(
    size: float,
    bandwidth: float,
    rtt: float,
    loss_rate: float = 0.0,
    mss: int = DEFAULT_MSS,
    initial_window: int = 10,
) -> float:
    """Predict the download time of one segment over a fresh TCP connection.

    Uses the same analytic model as :mod:`repro.net.tcp`: connection
    setup of 1.5 RTT (loss-inflated), a slow-start phase whose
    congestion window doubles each RTT from ``initial_window`` MSS, and
    a steady-state rate capped by both the path bandwidth and the
    Mathis loss limit ``MSS / (RTT * sqrt(2p/3))``.

    Args:
        size: bytes to transfer.
        bandwidth: path bandwidth in bytes/second.
        rtt: round-trip time in seconds.
        loss_rate: packet loss probability ``p``.
        mss: maximum segment size in bytes.
        initial_window: initial congestion window in MSS.

    Returns:
        Predicted wall-clock seconds from connection start to last byte.
    """
    if size <= 0:
        raise ConfigurationError(f"size must be positive, got {size}")
    if bandwidth <= 0:
        raise ConfigurationError(
            f"bandwidth must be positive, got {bandwidth}"
        )
    if rtt <= 0:
        raise ConfigurationError(f"rtt must be positive, got {rtt}")
    if not 0.0 <= loss_rate < 1.0:
        raise ConfigurationError(
            f"loss_rate must be in [0, 1), got {loss_rate}"
        )

    handshake = 1.5 * rtt / (1.0 - loss_rate)
    rate_cap = bandwidth
    if loss_rate > 0:
        rate_cap = min(
            rate_cap, mss / (rtt * math.sqrt(2.0 * loss_rate / 3.0))
        )

    # Slow start: in RTT round i (0-based) the sender moves
    # initial_window * 2**i MSS, until the per-RTT amount reaches the
    # cap's bandwidth-delay product.
    remaining = size
    elapsed = handshake
    window_bytes = initial_window * mss
    cap_per_rtt = rate_cap * rtt
    while window_bytes < cap_per_rtt and remaining > 0:
        sent = min(window_bytes, remaining)
        remaining -= sent
        elapsed += rtt if remaining > 0 else rtt * (sent / window_bytes)
        window_bytes *= 2
    if remaining > 0:
        elapsed += remaining / rate_cap
    return elapsed


@dataclass(frozen=True, slots=True)
class DurationChoice:
    """One evaluated candidate of the adaptive planner.

    Attributes:
        duration: candidate segment duration in seconds.
        segment_size: implied segment size in bytes at the video bitrate.
        download_time: predicted per-segment download time, seconds.
        utilization: ``duration / download_time`` — sustainable when
            >= 1 (a segment downloads faster than it plays).
        startup_time: predicted time to fetch the first segment.
    """

    duration: float
    segment_size: float
    download_time: float
    utilization: float
    startup_time: float

    @property
    def sustainable(self) -> bool:
        """Whether steady-state playback keeps up at this duration."""
        return self.utilization >= 1.0


class AdaptiveDurationPlanner:
    """Pick a segment duration for the observed network (future work).

    The planner scores each candidate duration ``d`` with the same
    analytic TCP model the simulator uses:

    * **splicing overhead** — duration splicing inserts one I-frame per
      segment, inflating bytes by roughly ``overhead_seconds / d``
      (shorter segments pay more);
    * **pool size from Eq. 1** — the peer keeps
      ``k = max(1, floor(B * T / W))`` segments in flight at a steady
      buffer of ``T = buffer_durations * d`` seconds;
    * **per-connection goodput** — each of the ``k`` connections gets
      ``B / k``, capped by the Mathis loss ceiling, and degraded
      quadratically below the TCP window floor ``MSS / RTT``.

    A duration is *sustainable* when the pool completes ``k`` segments
    faster than they play (``k * d >= download_time * safety_margin``).
    The planner picks the shortest sustainable duration — short
    segments minimise startup time and stall length — and, when
    nothing is sustainable, falls back to the most efficient candidate
    (highest utilization), since quality, per the paper's premise, is
    never sacrificed.

    Args:
        candidate_durations: durations to consider, seconds.
        bitrate: video bitrate in bits/second.
        rtt: round-trip time between peers, seconds.
        loss_rate: packet loss probability.
        overhead_seconds: I-frame insertion overhead expressed as
            equivalent extra stream-seconds per segment (0.12 matches
            the default synthetic encoder: ~12 % at 1 s segments, ~3 %
            at 4 s).
        buffer_durations: steady-state buffer in units of the segment
            duration (Eq. 1's ``T = buffer_durations * d``).
        safety_margin: required utilization headroom.
    """

    def __init__(
        self,
        candidate_durations: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
        bitrate: float = 1_000_000.0,
        rtt: float = 0.05,
        loss_rate: float = 0.05,
        overhead_seconds: float = 0.12,
        buffer_durations: float = 2.0,
        safety_margin: float = 1.0,
    ) -> None:
        if not candidate_durations:
            raise ConfigurationError("candidate_durations must be non-empty")
        if any(d <= 0 for d in candidate_durations):
            raise ConfigurationError("candidate durations must be positive")
        if bitrate <= 0:
            raise ConfigurationError(f"bitrate must be positive: {bitrate}")
        if overhead_seconds < 0:
            raise ConfigurationError(
                f"overhead_seconds must be >= 0: {overhead_seconds}"
            )
        if buffer_durations <= 0:
            raise ConfigurationError(
                f"buffer_durations must be positive: {buffer_durations}"
            )
        if safety_margin <= 0:
            raise ConfigurationError(
                f"safety_margin must be positive: {safety_margin}"
            )
        self._durations = tuple(sorted(candidate_durations))
        self._bitrate = bitrate
        self._rtt = rtt
        self._loss_rate = loss_rate
        self._overhead_seconds = overhead_seconds
        self._buffer_durations = buffer_durations
        self._safety_margin = safety_margin

    def evaluate(self, bandwidth: float) -> list[DurationChoice]:
        """Score every candidate duration at the given bandwidth."""
        if bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        window_floor = DEFAULT_MSS / self._rtt
        choices: list[DurationChoice] = []
        for duration in self._durations:
            segment_size = (
                self._bitrate
                / 8.0
                * (duration + self._overhead_seconds)
            )
            buffered = self._buffer_durations * duration
            pool = max(
                1, math.floor(bandwidth * buffered / segment_size)
            )
            share = bandwidth / pool
            goodput = share * min(1.0, share / window_floor)
            download_time = predicted_download_time(
                segment_size,
                goodput,
                self._rtt,
                self._loss_rate,
            )
            startup_time = predicted_download_time(
                segment_size, bandwidth, self._rtt, self._loss_rate
            )
            choices.append(
                DurationChoice(
                    duration=duration,
                    segment_size=segment_size,
                    download_time=download_time,
                    utilization=(
                        pool
                        * duration
                        / (download_time * self._safety_margin)
                    ),
                    startup_time=startup_time,
                )
            )
        return choices

    def pick(self, bandwidth: float) -> DurationChoice:
        """Pick the best duration for ``bandwidth`` (bytes/second)."""
        choices = self.evaluate(bandwidth)
        sustainable = [c for c in choices if c.sustainable]
        if sustainable:
            return min(sustainable, key=lambda c: c.duration)
        return max(choices, key=lambda c: c.utilization)
