"""Cross-checking a splice against its source stream.

A downstream user (or a test) can verify that a
:class:`~repro.core.segments.SpliceResult` is a faithful segmentation
of a :class:`~repro.video.bitstream.Bitstream`: complete coverage, no
reordering, decodable segment heads, and overhead that is exactly the
sum of the inserted I-frame deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..video.bitstream import Bitstream
from ..video.frames import FrameType
from .segments import SpliceResult


@dataclass(frozen=True, slots=True)
class SpliceValidation:
    """Outcome of validating a splice against its source.

    Attributes:
        valid: True when no problems were found.
        problems: human-readable descriptions of every violation.
        covered_frames: frames accounted for across segments.
        inserted_i_frames: segments whose head was re-encoded.
        overhead_bytes: byte overhead versus the source.
    """

    valid: bool
    problems: tuple[str, ...] = field(default_factory=tuple)
    covered_frames: int = 0
    inserted_i_frames: int = 0
    overhead_bytes: int = 0


def validate_splice(
    splice: SpliceResult, source: Bitstream
) -> SpliceValidation:
    """Validate ``splice`` as a segmentation of ``source``.

    Checks:

    * every source frame appears exactly once, in order;
    * every segment starts with an I-frame;
    * non-inserted frames are byte-identical to the source;
    * inserted heads only ever replace non-I frames;
    * the recorded overhead equals the sum of head deltas.

    Returns:
        A :class:`SpliceValidation`; inspect ``problems`` on failure.
    """
    problems: list[str] = []
    source_frames = {frame.index: frame for frame in source.frames()}

    expected_index = 0
    inserted = 0
    head_delta = 0
    for segment in splice.segments:
        head = segment.frames[0]
        if head.frame_type is not FrameType.I:
            problems.append(
                f"segment {segment.index} starts with "
                f"{head.frame_type.value}, not I"
            )
        for position, frame in enumerate(segment.frames):
            if frame.index != expected_index:
                problems.append(
                    f"segment {segment.index} frame {position}: "
                    f"expected stream index {expected_index}, got "
                    f"{frame.index}"
                )
                expected_index = frame.index
            original = source_frames.get(frame.index)
            if original is None:
                problems.append(
                    f"segment {segment.index} references unknown frame "
                    f"{frame.index}"
                )
            elif position == 0 and segment.inserted_i_frame:
                if original.frame_type is FrameType.I:
                    problems.append(
                        f"segment {segment.index} claims an inserted "
                        "I-frame but the source head already was one"
                    )
                head_delta += frame.size - original.size
                inserted += 1
            elif (
                frame.size != original.size
                or frame.frame_type is not original.frame_type
            ):
                problems.append(
                    f"segment {segment.index} altered mid-segment frame "
                    f"{frame.index}"
                )
            expected_index += 1

    if expected_index != source.frame_count:
        problems.append(
            f"splice covers {expected_index} frames, source has "
            f"{source.frame_count}"
        )
    if head_delta != splice.overhead_bytes:
        problems.append(
            f"recorded overhead {splice.overhead_bytes} != summed head "
            f"deltas {head_delta}"
        )
    return SpliceValidation(
        valid=not problems,
        problems=tuple(problems),
        covered_frames=min(expected_index, source.frame_count),
        inserted_i_frames=inserted,
        overhead_bytes=head_delta,
    )
