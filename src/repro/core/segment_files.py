"""Per-segment container files.

Completes the HLS story: :func:`repro.core.playlist.write_m3u8` emits
the playlist, and this module emits the segment files its URIs point
at — each a small container with a frame table (and optionally
payload), mirroring the stream container of
:mod:`repro.video.container`.

Wire layout per file (big-endian)::

    magic    : 4 bytes  b"RPS1"
    index    : u32      segment index
    inserted : u8       1 if the head I-frame was inserted
    nframes  : u32
    frame[i] : type(1 byte) | stream_index(u32) | size(u32)
             | duration_us(u32)
    payload  : size bytes per frame, iff include_payload
"""

from __future__ import annotations

import struct

from ..errors import SpliceError
from ..video.frames import Frame, FrameType
from .segments import Segment, SpliceResult

MAGIC = b"RPS1"
_HEADER = struct.Struct(">4sIBI")
_FRAME = struct.Struct(">cIII")


def serialize_segment(
    segment: Segment, include_payload: bool = False
) -> bytes:
    """Serialize one segment to its container bytes."""
    parts = [
        _HEADER.pack(
            MAGIC,
            segment.index,
            1 if segment.inserted_i_frame else 0,
            len(segment.frames),
        )
    ]
    for frame in segment.frames:
        parts.append(
            _FRAME.pack(
                frame.frame_type.value.encode("ascii"),
                frame.index,
                frame.size,
                round(frame.duration * 1_000_000),
            )
        )
    if include_payload:
        for frame in segment.frames:
            parts.append(b"\x00" * frame.size)
    return b"".join(parts)


def deserialize_segment(data: bytes) -> Segment:
    """Parse segment-container bytes back into a :class:`Segment`.

    The first frame's presentation time restarts at 0 relative to the
    file, so a round-tripped segment is time-shifted to its own origin
    (exactly like an extracted ``.ts`` file); sizes, types, order, and
    stream indices are preserved.

    Raises:
        SpliceError: on malformed input.
    """
    if len(data) < _HEADER.size:
        raise SpliceError("segment file truncated: missing header")
    magic, index, inserted, nframes = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise SpliceError(f"bad segment magic {magic!r}")
    offset = _HEADER.size
    if len(data) < offset + nframes * _FRAME.size:
        raise SpliceError(
            f"segment file truncated: expected {nframes} frame records"
        )
    frames: list[Frame] = []
    pts = 0.0
    for _ in range(nframes):
        type_byte, stream_index, size, duration_us = _FRAME.unpack_from(
            data, offset
        )
        offset += _FRAME.size
        try:
            frame_type = FrameType(type_byte.decode("ascii"))
        except ValueError as exc:
            raise SpliceError(
                f"unknown frame type byte {type_byte!r}"
            ) from exc
        duration = duration_us / 1_000_000
        frames.append(
            Frame(
                index=stream_index,
                frame_type=frame_type,
                size=size,
                duration=duration,
                pts=pts,
            )
        )
        pts += duration
    return Segment(
        index=index,
        frames=tuple(frames),
        inserted_i_frame=bool(inserted),
    )


def write_segment_files(
    splice: SpliceResult,
    uri_template: str = "segment-{index:05d}.ts",
    include_payload: bool = False,
) -> dict[str, bytes]:
    """Serialize every segment under its playlist URI.

    The keys match the URIs :func:`repro.core.playlist.write_m3u8`
    emits with the same ``uri_template``, so the pair forms a complete
    servable HLS asset.

    Returns:
        Mapping of URI to container bytes.
    """
    return {
        uri_template.format(index=segment.index): serialize_segment(
            segment, include_payload
        )
        for segment in splice.segments
    }
