"""HLS media playlists for spliced videos.

The paper's opening frame is HTTP Live Streaming: "In HLS, a video is
spliced into multiple segments of equal duration."  The artifact that
carries a splice to an HLS client is an M3U8 media playlist; this
module writes and parses the subset of RFC 8216 such a client needs,
so a :class:`~repro.core.segments.SpliceResult` can be served to (or
checked against) real HLS tooling.

Supported tags: ``#EXTM3U``, ``#EXT-X-VERSION``,
``#EXT-X-TARGETDURATION``, ``#EXT-X-MEDIA-SEQUENCE``, ``#EXTINF``,
``#EXT-X-ENDLIST``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import SpliceError
from .segments import SpliceResult


@dataclass(frozen=True, slots=True)
class PlaylistEntry:
    """One media segment reference in a playlist.

    Attributes:
        duration: the segment's ``#EXTINF`` duration, seconds.
        uri: the segment URI.
    """

    duration: float
    uri: str


@dataclass(frozen=True, slots=True)
class MediaPlaylist:
    """A parsed HLS media playlist.

    Attributes:
        version: ``#EXT-X-VERSION`` value.
        target_duration: ``#EXT-X-TARGETDURATION`` value, seconds.
        media_sequence: sequence number of the first entry.
        entries: the segment references in order.
        ended: whether ``#EXT-X-ENDLIST`` is present (VoD playlist).
    """

    version: int
    target_duration: int
    media_sequence: int
    entries: tuple[PlaylistEntry, ...]
    ended: bool

    @property
    def total_duration(self) -> float:
        """Summed segment durations, seconds."""
        return sum(entry.duration for entry in self.entries)


def write_m3u8(
    splice: SpliceResult,
    uri_template: str = "segment-{index:05d}.ts",
    version: int = 3,
) -> str:
    """Render a splice as a VoD M3U8 media playlist.

    Args:
        splice: the spliced video.
        uri_template: format string for segment URIs; receives
            ``index``.
        version: ``#EXT-X-VERSION`` to emit.

    Returns:
        The playlist text (RFC 8216 media-playlist subset).
    """
    target = max(
        1, math.ceil(max(splice.segment_durations()))
    )
    lines = [
        "#EXTM3U",
        f"#EXT-X-VERSION:{version}",
        f"#EXT-X-TARGETDURATION:{target}",
        "#EXT-X-MEDIA-SEQUENCE:0",
    ]
    for segment in splice.segments:
        lines.append(f"#EXTINF:{segment.duration:.5f},")
        lines.append(uri_template.format(index=segment.index))
    lines.append("#EXT-X-ENDLIST")
    return "\n".join(lines) + "\n"


def parse_m3u8(text: str) -> MediaPlaylist:
    """Parse a VoD M3U8 media playlist.

    Raises:
        SpliceError: on missing header, malformed tags, or an
            ``#EXTINF`` without a following URI.
    """
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != "#EXTM3U":
        raise SpliceError("playlist must start with #EXTM3U")

    version = 1
    target_duration: int | None = None
    media_sequence = 0
    entries: list[PlaylistEntry] = []
    ended = False
    pending_duration: float | None = None

    for line in lines[1:]:
        if line.startswith("#EXT-X-VERSION:"):
            version = _int_value(line)
        elif line.startswith("#EXT-X-TARGETDURATION:"):
            target_duration = _int_value(line)
        elif line.startswith("#EXT-X-MEDIA-SEQUENCE:"):
            media_sequence = _int_value(line)
        elif line.startswith("#EXTINF:"):
            payload = line.split(":", 1)[1]
            duration_text = payload.split(",", 1)[0]
            try:
                pending_duration = float(duration_text)
            except ValueError as exc:
                raise SpliceError(
                    f"malformed #EXTINF duration {duration_text!r}"
                ) from exc
        elif line == "#EXT-X-ENDLIST":
            ended = True
        elif line.startswith("#"):
            continue  # unknown tags are ignored, per the RFC
        else:
            if pending_duration is None:
                raise SpliceError(
                    f"segment URI {line!r} without preceding #EXTINF"
                )
            entries.append(
                PlaylistEntry(duration=pending_duration, uri=line)
            )
            pending_duration = None

    if pending_duration is not None:
        raise SpliceError("#EXTINF without a following segment URI")
    if target_duration is None:
        raise SpliceError("playlist missing #EXT-X-TARGETDURATION")
    return MediaPlaylist(
        version=version,
        target_duration=target_duration,
        media_sequence=media_sequence,
        entries=tuple(entries),
        ended=ended,
    )


def _int_value(line: str) -> int:
    value = line.split(":", 1)[1]
    try:
        return int(value)
    except ValueError as exc:
        raise SpliceError(f"malformed integer tag value {line!r}") from exc
