"""Download-pool policies (paper Section III).

The paper's Equation 1: a peer that has ``T`` seconds of video buffered
ahead of the playhead, sees ``B`` bytes/s of available bandwidth, and
downloads ``W``-byte segments should fetch at most

    k = max(floor(B * T / W), 1)

segments simultaneously.  The intuition: all ``k`` in-flight segments
share the peer's bandwidth and may finish in any order, so *all* of
them must complete within the ``T`` seconds of playback already in the
buffer or a stall is possible.  ``B * T`` bytes is what the peer can
move in that window, hence ``B*T/W`` segments.
"""

from __future__ import annotations

import abc
import math

from ..errors import ConfigurationError


def adaptive_pool_size(
    bandwidth: float, buffered_playtime: float, segment_size: float
) -> int:
    """Equation 1 of the paper.

    Args:
        bandwidth: available bandwidth estimate ``B`` in bytes/second.
        buffered_playtime: seconds of video buffered ahead of the
            playhead, ``T``.  At stream start, after a stall, or when
            the buffer has just drained, ``T = 0``.
        segment_size: segment size ``W`` in bytes (an estimate; callers
            typically use the mean or the next segment's size).

    Returns:
        The number of segments to download simultaneously:
        ``max(floor(B*T/W), 1)``.
    """
    if bandwidth < 0:
        raise ConfigurationError(f"bandwidth must be >= 0, got {bandwidth}")
    if buffered_playtime < 0:
        raise ConfigurationError(
            f"buffered_playtime must be >= 0, got {buffered_playtime}"
        )
    if segment_size <= 0:
        raise ConfigurationError(
            f"segment_size must be positive, got {segment_size}"
        )
    return max(math.floor(bandwidth * buffered_playtime / segment_size), 1)


class DownloadPolicy(abc.ABC):
    """Strategy interface for sizing a peer's download pool."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short policy name used in reports."""

    @abc.abstractmethod
    def pool_size(
        self,
        bandwidth: float,
        buffered_playtime: float,
        segment_size: float,
    ) -> int:
        """Number of segments to download simultaneously (>= 1).

        Args:
            bandwidth: current bandwidth estimate, bytes/second.
            buffered_playtime: seconds of contiguous video buffered
                ahead of the playhead.
            segment_size: representative segment size in bytes.
        """


class AdaptivePoolPolicy(DownloadPolicy):
    """The paper's adaptive pooling (Equation 1).

    Args:
        max_pool: optional hard cap on the pool size; ``None`` leaves
            Eq. 1 uncapped as in the paper.
    """

    def __init__(self, max_pool: int | None = None) -> None:
        if max_pool is not None and max_pool < 1:
            raise ConfigurationError(
                f"max_pool must be >= 1 or None, got {max_pool}"
            )
        self._max_pool = max_pool

    @property
    def name(self) -> str:
        return "adaptive"

    @property
    def max_pool(self) -> int | None:
        """The configured cap, or ``None`` when uncapped."""
        return self._max_pool

    def pool_size(
        self,
        bandwidth: float,
        buffered_playtime: float,
        segment_size: float,
    ) -> int:
        size = adaptive_pool_size(bandwidth, buffered_playtime, segment_size)
        if self._max_pool is not None:
            size = min(size, self._max_pool)
        return size


class FixedPoolPolicy(DownloadPolicy):
    """The baseline the paper compares against: a constant pool size.

    Args:
        size: the fixed number of simultaneous downloads (paper
            evaluates 2, 4, and 8).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ConfigurationError(f"size must be >= 1, got {size}")
        self._size = size

    @property
    def name(self) -> str:
        return f"fixed-{self._size}"

    @property
    def size(self) -> int:
        """The configured pool size."""
        return self._size

    def pool_size(
        self,
        bandwidth: float,
        buffered_playtime: float,
        segment_size: float,
    ) -> int:
        # Validate inputs identically to the adaptive policy so the two
        # are interchangeable.
        adaptive_pool_size(
            max(bandwidth, 0.0), buffered_playtime, segment_size
        )
        return self._size
