"""The paper's primary contribution: splicing and downloading policy.

* :mod:`repro.core.segments` — the :class:`Segment` model shared by the
  splicers, the P2P layer, and the player.
* :mod:`repro.core.splicer` — GOP-based and duration-based splicing
  (paper Section II).
* :mod:`repro.core.policy` — the adaptive download-pool formula, Eq. 1
  (paper Section III), plus the fixed-pool baseline.
* :mod:`repro.core.segment_size` — hybrid-CDN segment sizing (paper
  Section IV) and the duration-adaptive splicing planner the paper
  lists as future work.
"""

from .playlist import MediaPlaylist, parse_m3u8, write_m3u8
from .segment_files import (
    deserialize_segment,
    serialize_segment,
    write_segment_files,
)
from .validate import SpliceValidation, validate_splice
from .policy import (
    AdaptivePoolPolicy,
    DownloadPolicy,
    FixedPoolPolicy,
    adaptive_pool_size,
)
from .segment_size import (
    AdaptiveDurationPlanner,
    max_cdn_segment_size,
    predicted_download_time,
)
from .segments import Segment, SpliceResult
from .splicer import DurationSplicer, GopSplicer, Splicer

__all__ = [
    "AdaptiveDurationPlanner",
    "AdaptivePoolPolicy",
    "DownloadPolicy",
    "DurationSplicer",
    "FixedPoolPolicy",
    "GopSplicer",
    "MediaPlaylist",
    "Segment",
    "SpliceResult",
    "SpliceValidation",
    "Splicer",
    "adaptive_pool_size",
    "deserialize_segment",
    "max_cdn_segment_size",
    "parse_m3u8",
    "predicted_download_time",
    "serialize_segment",
    "validate_splice",
    "write_m3u8",
    "write_segment_files",
]
