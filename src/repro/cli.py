"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``quickstart`` — splice + stream at one bandwidth, print metrics;
* ``fig2`` / ``fig3`` / ``fig4`` / ``fig5`` — regenerate a paper
  figure (``--quick`` runs a reduced sweep for a fast look);
* ``overhead`` — the splicing byte-overhead table (ablation A3);
* ``rspec`` — print the experiment's request RSpec XML (Fig. 1);
* ``timeline`` — run one swarm and render per-peer session timelines;
* ``trace`` — summarize a JSONL trace written by ``reproduce --trace``;
* ``analyze`` — diagnose a JSONL trace: per-peer timelines, stall
  root-cause attribution, and an optional cause-marked Gantt chart;
* ``bench`` — run a benchmark suite through the shared harness and
  write its versioned ``BENCH_<suite>.json`` artifact;
* ``compare`` — diff two benchmark artifacts and exit non-zero on
  regression (the CI perf gate);
* ``lint`` — determinism & sim-safety static analysis over the
  source tree; exits 1 on findings or stale suppressions (the CI
  lint gate);
* ``sweep`` — shard a figure sweep across machines: ``plan``
  partitions runs by content digest, ``run`` executes one shard into
  a result store, ``merge`` unions shard stores into the final
  figure (byte-identical to a single-machine run), and ``status``
  aggregates shard heartbeats into a live fleet view (progress bars,
  straggler flagging, dead-shard detection);
* ``ops`` — render a ``repro.ops/1`` wall-clock span log as an
  indented tree with a critical-path summary.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Sequence

from . import __version__
from .core.splicer import DurationSplicer, GopSplicer
from .errors import TraceError
from .experiments import fig2, fig3, fig4, fig5
from .experiments.ablations import run_overhead
from .experiments.config import ExperimentConfig, make_swarm_config
from .experiments.report import format_figure
from .experiments.timeline import render_timeline
from .obs import (
    Observability,
    analyze_events,
    attribute_stalls,
    build_timelines,
    dump_jsonl,
    event_counts,
    load_jsonl,
    render_analysis,
    render_gantt,
    render_trace_summary,
    summarize_trace,
)
from .obs.events import TraceEvent
from .p2p.swarm import Swarm, SwarmConfig
from .testbed.rspec import star_rspec
from .units import kB_per_s
from .video.encoder import encode_paper_video

_FIGURES = {
    "fig2": (fig2, 1),
    "fig3": (fig3, 1),
    "fig4": (fig4, 2),
    "fig5": (fig5, 1),
}

#: Segment duration of the representative run ``--trace`` records.
_TRACE_SEGMENT_DURATION = 4.0


class _VersionAction(argparse.Action):
    """``--version``: the version line plus the environment block.

    The first line stays ``repro <version>`` (scripts parse it); the
    following lines are the same python/platform/git facts every
    benchmark artifact embeds, so pasted reports are self-describing.
    """

    def __call__(self, parser, namespace, values, option_string=None):
        from .lint import CATALOG_VERSION, LINT_SCHEMA, rule_ids
        from .obs.manifest import render_environment

        print(f"repro {__version__}")
        print(render_environment())
        ids = rule_ids()
        print(
            f"lint {LINT_SCHEMA} catalog v{CATALOG_VERSION} "
            f"({len(ids)} rules: {' '.join(ids)})"
        )
        parser.exit()


def _bench_dir() -> Path | None:
    """Locate ``benchmarks/``: the cwd first, then the checkout.

    ``repro bench`` is usually run from the repository root, but the
    fallback keeps it working from anywhere inside a source checkout
    (the suites are not installed with the package).
    """
    for candidate in (
        Path("benchmarks"),
        Path(__file__).resolve().parent.parent.parent / "benchmarks",
    ):
        if candidate.is_dir():
            return candidate
    return None


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Video Splicing Techniques for P2P "
            "Video Streaming' (ICDCS 2015)"
        ),
    )
    parser.add_argument(
        "--version",
        action=_VersionAction,
        nargs=0,
        help=(
            "print the version plus the environment block "
            "(python, platform, cpus, git revision)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    quickstart = sub.add_parser(
        "quickstart", help="splice + stream at one bandwidth"
    )
    quickstart.add_argument(
        "--bandwidth", type=float, default=256.0, help="peer kB/s"
    )
    quickstart.add_argument("--seed", type=int, default=7)

    for name in _FIGURES:
        figure = sub.add_parser(name, help=f"regenerate {name}")
        figure.add_argument(
            "--quick",
            action="store_true",
            help="reduced sweep (1 seed, 2 bandwidths)",
        )

    sub.add_parser("overhead", help="splicing byte-overhead table")

    reproduce = sub.add_parser(
        "reproduce", help="regenerate every figure in one run"
    )
    reproduce.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (9 peers, 1 seed), figures only",
    )
    reproduce.add_argument(
        "--output", default=None, help="also write the report here"
    )
    reproduce.add_argument(
        "--figure",
        choices=("2", "3", "4", "5"),
        default=None,
        help="regenerate only this figure",
    )
    reproduce.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the sweep (default: auto-detect "
            "from the available cores / REPRO_JOBS; 1 = serial "
            "in-process)"
        ),
    )
    reproduce.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help=(
            "also run one fully-traced representative swarm and write "
            "its JSONL trace here (inspect with 'repro trace PATH'); "
            "the traced run always executes in-process regardless of "
            "--jobs so its trace stays on a single simulated clock"
        ),
    )
    reproduce.add_argument(
        "--analyze",
        action="store_true",
        help=(
            "trace + diagnose every run and print a stall-cause "
            "breakdown next to the figure table (requires --figure)"
        ),
    )
    reproduce.add_argument(
        "--progress",
        nargs="?",
        const="live",
        choices=("live", "plain"),
        default=None,
        help=(
            "sweep progress on stderr: 'live' (the default when the "
            "flag is given bare) rewrites one status line and is "
            "automatically disabled when stderr is not a TTY; "
            "'plain' appends one rate-limited line per completed "
            "cell, for CI logs and redirected output"
        ),
    )
    reproduce.add_argument(
        "--manifest",
        default=None,
        metavar="PATH",
        help=(
            "also write a JSON run manifest here (schema "
            "repro.manifest/1): command, environment block, git "
            "revision, and sweep totals"
        ),
    )
    reproduce.add_argument(
        "--fidelity",
        choices=("exact", "cohort", "fluid"),
        default="exact",
        help=(
            "swarm backend for every run: 'exact' simulates each "
            "peer, 'cohort' batches statistically-identical peers "
            "(10^3-10^4 peers), 'fluid' integrates mean-field rate "
            "ODEs (10^5+ peers); see docs/SCALING.md"
        ),
    )
    reproduce.add_argument(
        "--cache",
        nargs="?",
        const="",
        default=None,
        metavar="DIR",
        help=(
            "cache per-run results in a content-addressed store "
            "(default directory: $REPRO_STORE or .repro-store); "
            "re-running an unchanged sweep recomputes nothing, and "
            "completed runs are committed as they finish, so an "
            "interrupted sweep resumes from the store"
        ),
    )
    reproduce.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result store even if --cache/--resume is given",
    )
    reproduce.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep from the result store "
            "(implies --cache; prints how many runs were restored)"
        ),
    )

    rspec = sub.add_parser("rspec", help="print the slice RSpec XML")
    rspec.add_argument("--peers", type=int, default=19)
    rspec.add_argument(
        "--capacity", type=int, default=8192, help="kbit/s per link"
    )

    timeline = sub.add_parser(
        "timeline", help="per-peer session timelines for one run"
    )
    timeline.add_argument("--bandwidth", type=float, default=256.0)
    timeline.add_argument("--duration", type=float, default=4.0)
    timeline.add_argument("--peers", type=int, default=9)
    timeline.add_argument("--seed", type=int, default=7)

    trace = sub.add_parser(
        "trace", help="summarize a JSONL trace file"
    )
    trace.add_argument("path", help="trace written by reproduce --trace")

    analyze = sub.add_parser(
        "analyze",
        help=(
            "diagnose a JSONL trace: timelines + stall root causes"
        ),
    )
    analyze.add_argument(
        "path", help="trace written by reproduce --trace"
    )
    analyze.add_argument(
        "--gantt",
        action="store_true",
        help="also render the cause-marked per-peer Gantt chart",
    )
    analyze.add_argument(
        "--width",
        type=int,
        default=72,
        help="Gantt time-axis width in columns",
    )

    bench = sub.add_parser(
        "bench",
        help=(
            "run a benchmark suite and write its JSON artifact"
        ),
    )
    bench.add_argument(
        "suite",
        help=(
            "suite name (benchmarks/bench_<suite>.py), or 'list' to "
            "enumerate the available suites"
        ),
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help=(
            "reduced-scale run: the artifact is flagged quick and "
            "the committed human-readable tables are left untouched"
        ),
    )
    bench.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help=(
            "artifact path (default: "
            "benchmarks/results/BENCH_<suite>.json)"
        ),
    )

    lint = sub.add_parser(
        "lint",
        help=(
            "determinism & sim-safety static analysis; exit 1 on "
            "findings or stale suppressions"
        ),
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help=(
            "files or directories to lint (default: the src/repro "
            "tree of the enclosing checkout)"
        ),
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "text (default): path:line:col findings with fix hints; "
            "json: one repro.lint/1 document on stdout"
        ),
    )
    lint.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULE",
        help=(
            "enable only these rule ids (repeatable, comma lists "
            "accepted); overrides [tool.repro.lint] select"
        ),
    )
    lint.add_argument(
        "--ignore",
        action="append",
        default=None,
        metavar="RULE",
        help=(
            "disable these rule ids (repeatable, comma lists "
            "accepted); overrides [tool.repro.lint] ignore"
        ),
    )
    lint.add_argument(
        "--statistics",
        action="store_true",
        help="append per-rule finding/suppression counts",
    )

    compare = sub.add_parser(
        "compare",
        help=(
            "diff two benchmark artifacts; exit 1 on regression"
        ),
    )
    compare.add_argument(
        "baseline", help="reference BENCH_*.json (usually committed)"
    )
    compare.add_argument(
        "candidate", help="freshly measured BENCH_*.json"
    )
    compare.add_argument(
        "--threshold",
        type=float,
        default=10.0,
        metavar="PCT",
        help=(
            "minimum percentage change that counts (default 10; "
            "widened per case by 3 relative standard deviations of "
            "the noisier artifact)"
        ),
    )
    compare.add_argument(
        "--metric",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "metric to score (repeatable): a timing name (best_s, "
            "mean_s), a case field (events_per_sec), or "
            "metrics.<name>; default: best_s and events_per_sec"
        ),
    )

    ops_cmd = sub.add_parser(
        "ops",
        help=(
            "render a repro.ops/1 wall-clock span log (written next "
            "to a result store by 'sweep run'/'sweep merge') as an "
            "indented tree plus a critical-path summary"
        ),
    )
    ops_cmd.add_argument(
        "path", help="ops JSONL log, e.g. STORE/repro.ops/*.ops.jsonl"
    )
    ops_cmd.add_argument(
        "--depth",
        type=int,
        default=8,
        metavar="N",
        help="maximum tree depth to render (default 8)",
    )

    sweep = sub.add_parser(
        "sweep",
        help=(
            "shard a figure sweep across machines: plan partitions "
            "runs by content digest, run executes one shard into a "
            "result store, merge unions shard stores into the final "
            "figure, status aggregates shard heartbeats into a "
            "fleet view"
        ),
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)

    plan = sweep_sub.add_parser(
        "plan", help="expand a figure sweep and partition it into shards"
    )
    plan.add_argument(
        "--figure", choices=("2", "3", "4", "5"), required=True
    )
    plan.add_argument(
        "--quick",
        action="store_true",
        help="reduced scale (9 peers, 1 seed, 2 bandwidths)",
    )
    plan.add_argument(
        "--fidelity",
        choices=("exact", "cohort", "fluid"),
        default="exact",
    )
    plan.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="K",
        help="partition the runs into K digest-addressed shards",
    )
    plan.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="plan path (default: sweep-fig<N>.plan.json)",
    )
    plan.add_argument(
        "--no-ops",
        action="store_true",
        help="skip the wall-clock ops log (<plan>.ops.jsonl)",
    )

    shard_run = sweep_sub.add_parser(
        "run", help="execute one shard of a plan into a result store"
    )
    shard_run.add_argument("plan", help="plan written by 'sweep plan'")
    shard_run.add_argument(
        "--shard", type=int, required=True, metavar="I"
    )
    shard_run.add_argument(
        "--store", required=True, metavar="DIR",
        help="result-store directory the shard commits into",
    )
    shard_run.add_argument(
        "--jobs", type=int, default=None, metavar="N"
    )
    shard_run.add_argument(
        "--progress",
        nargs="?",
        const="live",
        choices=("live", "plain"),
        default=None,
    )
    shard_run.add_argument(
        "--no-ops",
        action="store_true",
        help=(
            "skip wall-clock telemetry (the span log and heartbeat "
            "under STORE/repro.ops/)"
        ),
    )

    merge = sweep_sub.add_parser(
        "merge",
        help=(
            "union shard stores and produce the final figure "
            "(byte-identical to a single-machine run; missing "
            "entries are computed, so merge doubles as resume)"
        ),
    )
    merge.add_argument("plan", help="plan written by 'sweep plan'")
    merge.add_argument(
        "--store", required=True, metavar="DIR",
        help="target store (absorbs every --from store)",
    )
    merge.add_argument(
        "--from",
        dest="sources",
        action="append",
        default=[],
        metavar="DIR",
        help="shard store to absorb (repeatable)",
    )
    merge.add_argument(
        "--jobs", type=int, default=None, metavar="N"
    )
    merge.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the figure table here",
    )
    merge.add_argument(
        "--no-ops",
        action="store_true",
        help=(
            "skip the wall-clock span log "
            "(STORE/repro.ops/merge.ops.jsonl)"
        ),
    )

    status = sweep_sub.add_parser(
        "status",
        help=(
            "aggregate shard heartbeats + ops logs into a fleet "
            "view: per-shard progress bars, straggler flagging "
            "(rate below a fraction of the fleet median), and "
            "dead-shard detection (stale heartbeat)"
        ),
    )
    status.add_argument("plan", help="plan written by 'sweep plan'")
    status.add_argument(
        "--store",
        dest="stores",
        action="append",
        required=True,
        metavar="DIR",
        help=(
            "shard store directory to scan for heartbeats "
            "(repeatable; telemetry lives under DIR/repro.ops/)"
        ),
    )
    status.add_argument(
        "--watch",
        action="store_true",
        help=(
            "keep re-rendering until every shard reaches a "
            "terminal state"
        ),
    )
    status.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="S",
        help="--watch refresh period in seconds (default 2)",
    )
    status.add_argument(
        "--stale",
        type=float,
        default=30.0,
        metavar="S",
        help=(
            "a running shard whose heartbeat is older than this is "
            "reported dead (default 30)"
        ),
    )
    status.add_argument(
        "--straggler",
        type=float,
        default=0.5,
        metavar="FRAC",
        help=(
            "flag a running shard whose run rate is below FRAC of "
            "the fleet median (default 0.5)"
        ),
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "quickstart":
        return _cmd_quickstart(args)
    if args.command in _FIGURES:
        return _cmd_figure(args)
    if args.command == "overhead":
        return _cmd_overhead()
    if args.command == "reproduce":
        return _cmd_reproduce(args)
    if args.command == "rspec":
        return _cmd_rspec(args)
    if args.command == "timeline":
        return _cmd_timeline(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "analyze":
        return _cmd_analyze(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "ops":
        return _cmd_ops(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    # repro: lint-ok[E1] unreachable parser-dispatch guard
    raise AssertionError(f"unhandled command {args.command!r}")


def _cmd_quickstart(args: argparse.Namespace) -> int:
    video = encode_paper_video(seed=1)
    for splicer in (GopSplicer(), DurationSplicer(4.0)):
        splice = splicer.splice(video)
        config = SwarmConfig(
            bandwidth=kB_per_s(args.bandwidth),
            seeder_bandwidth=kB_per_s(8 * args.bandwidth),
            n_leechers=19,
            seed=args.seed,
        )
        result = Swarm(splice, config).run()
        print(
            f"{splice.technique:12s} stalls={result.mean_stall_count():6.1f} "
            f"stall-time={result.mean_stall_duration():7.1f}s "
            f"startup={result.mean_startup_time():5.2f}s"
        )
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    module, precision = _FIGURES[args.command]
    if args.quick:
        config = ExperimentConfig(n_leechers=9, seeds=(7,))
        bandwidths = (128, 512)
        result = module.run(config, bandwidths_kb=bandwidths)
    else:
        result = module.run()
    print(format_figure(result, precision=precision))
    return 0


def _cmd_overhead() -> int:
    print(
        f"{'technique':12s} {'segments':>8s} {'total MB':>9s} "
        f"{'overhead':>9s}"
    )
    for row in run_overhead():
        print(
            f"{row.technique:12s} {row.segments:8d} "
            f"{row.total_bytes / 1e6:9.2f} "
            f"{row.overhead_percent:8.1f}%"
        )
    return 0


def _cmd_reproduce(args: argparse.Namespace) -> int:
    from .experiments.reproduce import reproduce_all
    from .parallel import SweepExecutor, SweepProgress

    fidelity = getattr(args, "fidelity", "exact")
    config = (
        ExperimentConfig(n_leechers=9, seeds=(7,), fidelity=fidelity)
        if args.quick
        else ExperimentConfig(fidelity=fidelity)
    )
    if args.jobs is not None and args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2
    if args.analyze and args.figure is None:
        print(
            "error: --analyze requires --figure "
            "(cause breakdowns are per-figure tables)",
            file=sys.stderr,
        )
        return 2
    progress = (
        SweepProgress(mode=args.progress) if args.progress else None
    )
    store = None
    if not args.no_cache and (args.cache is not None or args.resume):
        from .parallel import ResultStore, default_store_root

        root = Path(args.cache) if args.cache else default_store_root()
        store = ResultStore(root)
    executor = SweepExecutor(
        jobs=args.jobs, progress=progress, store=store
    )
    if args.trace is not None:
        # Fail on an unwritable path now, not after the whole sweep.
        try:
            with open(args.trace, "w", encoding="utf-8"):
                pass
        except OSError as exc:
            print(f"error: cannot write trace '{args.trace}': {exc}",
                  file=sys.stderr)
            return 2
    sweep_started = time.monotonic()
    if args.figure is not None:
        module, precision = _FIGURES[f"fig{args.figure}"]
        if args.quick:
            result = module.run(
                config,
                bandwidths_kb=(128, 512),
                executor=executor,
                analyze=args.analyze,
            )
        else:
            result = module.run(
                config, executor=executor, analyze=args.analyze
            )
        text = format_figure(result, precision=precision)
        if args.analyze:
            from .experiments.report import format_figure_analysis

            text += "\n\n" + format_figure_analysis(result)
    else:
        report = reproduce_all(
            config,
            include_ablations=not args.quick,
            executor=executor,
        )
        text = report.render()
    sweep_elapsed = time.monotonic() - sweep_started
    print(text)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
    if store is not None:
        stats = executor.stats
        verb = "resumed" if args.resume else "cached"
        print(
            f"result store {store.root}: {stats.runs_cached} of "
            f"{stats.runs} runs {verb}, "
            f"{stats.runs - stats.runs_cached - stats.failures} "
            f"computed ({len(store)} entries on disk)",
            file=sys.stderr,
        )
    if args.trace is not None:
        _write_representative_trace(args, config)
    if args.manifest is not None:
        return _write_run_manifest(
            args, executor, store, wall_seconds=sweep_elapsed
        )
    return 0


def _write_run_manifest(
    args: argparse.Namespace,
    executor,
    store=None,
    wall_seconds: float = 0.0,
) -> int:
    """Record one ``reproduce`` invocation as a JSON manifest."""
    from .obs import dump_json, run_manifest

    command = "reproduce"
    if args.quick:
        command += " --quick"
    if args.figure is not None:
        command += f" --figure {args.figure}"
    if getattr(args, "fidelity", "exact") != "exact":
        command += f" --fidelity {args.fidelity}"
    if args.resume:
        command += " --resume"
    elif store is not None:
        command += " --cache"
    stats = executor.stats
    if store is not None:
        cache = {
            "enabled": True,
            "root": str(store.root),
            "schema": store.schema,
            "hits": store.stats.hits,
            "misses": store.stats.misses,
            "stores": store.stats.stores,
            "invalidations": store.stats.invalidations,
            "runs_cached": stats.runs_cached,
        }
    else:
        cache = {"enabled": False}
    payload = run_manifest(
        command,
        quick=args.quick,
        figure=args.figure,
        jobs=executor.jobs,
        sweep={
            "runs": stats.runs,
            "failures": stats.failures,
            "runs_cached": stats.runs_cached,
            "events_fired": stats.events_fired,
            "sim_seconds": stats.sim_seconds,
            "cells_computed": stats.cells_computed,
            "cells_cached": stats.cells_cached,
            "wall_seconds": wall_seconds,
            "cells_per_sec": (
                (stats.cells_cached + stats.cells_computed)
                / wall_seconds
                if wall_seconds > 0
                else None
            ),
        },
        cache=cache,
    )
    try:
        dump_json(payload, args.manifest)
    except OSError as exc:
        print(
            f"error: cannot write manifest '{args.manifest}': {exc}",
            file=sys.stderr,
        )
        return 2
    print(f"run manifest -> {args.manifest}")
    return 0


def _write_representative_trace(
    args: argparse.Namespace, config: ExperimentConfig
) -> int:
    """Run one fully-traced swarm and dump its JSONL trace.

    One run, not the whole sweep: a multi-run trace would interleave
    restarting sim clocks, and the point of ``--trace`` is a file whose
    ``repro trace`` summary matches one run's :class:`SwarmResult`
    exactly.  The run uses the target figure's first bandwidth, the
    first configured seed, and 4-second duration splicing (the paper's
    middle technique).
    """
    if args.figure == "4":
        from .experiments.config import FIG4_BANDWIDTHS_KB

        bandwidth_kb = FIG4_BANDWIDTHS_KB[0]
    else:
        from .experiments.config import PAPER_BANDWIDTHS_KB

        bandwidth_kb = PAPER_BANDWIDTHS_KB[0]
    video = encode_paper_video(seed=config.video_seed)
    splice = DurationSplicer(_TRACE_SEGMENT_DURATION).splice(video)
    obs = Observability.tracing(profile=True)
    swarm_config = make_swarm_config(
        bandwidth_kb, config.seeds[0], config
    )
    Swarm(splice, swarm_config, obs=obs).run()
    dump_jsonl(obs.events(), args.trace)
    print(
        f"traced representative run ({splice.technique}, "
        f"{bandwidth_kb} kB/s, seed {config.seeds[0]}): "
        f"{len(obs.events())} events -> {args.trace}"
    )
    return 0


def _load_trace(path: str) -> list[TraceEvent] | None:
    """Shared trace loader for ``trace`` and ``analyze``.

    Prints the error and returns ``None`` on a malformed or missing
    file; both commands turn that into exit code 2.
    """
    try:
        return load_jsonl(path)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return None


def _print_event_counts(events: list[TraceEvent]) -> None:
    """Event counts per category and per severity."""
    print("Events by category:")
    for category, names in sorted(event_counts(events).items()):
        total = sum(names.values())
        detail = ", ".join(
            f"{name} x{count}" for name, count in sorted(names.items())
        )
        print(f"  {category} ({total}): {detail}")
    print("Events by severity:")
    severities: dict[str, int] = {}
    for event in events:
        severities[event.severity] = (
            severities.get(event.severity, 0) + 1
        )
    for severity, count in sorted(severities.items()):
        print(f"  {severity}: {count}")


def _cmd_trace(args: argparse.Namespace) -> int:
    events = _load_trace(args.path)
    if events is None:
        return 2
    try:
        summaries = summarize_trace(events)
    except TraceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_trace_summary(summaries))
    print()
    _print_event_counts(events)
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    events = _load_trace(args.path)
    if events is None:
        return 2
    analysis = analyze_events(events)
    print(render_analysis(analysis), end="")
    if args.gantt:
        timelines = build_timelines(events)
        print()
        print("## Timeline")
        print()
        print(
            render_gantt(
                timelines,
                attribute_stalls(timelines),
                width=max(16, args.width),
            )
        )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .errors import ArtifactError, BenchError
    from .obs.bench import BenchHarness, discover_suites, load_suite

    bench_dir = _bench_dir()
    if bench_dir is None:
        print(
            "error: no benchmarks/ directory found (run from the "
            "repository root)",
            file=sys.stderr,
        )
        return 2
    suites = discover_suites(bench_dir)
    if args.suite == "list":
        for name in sorted(suites):
            print(name)
        return 0
    script = suites.get(args.suite)
    if script is None:
        print(
            f"error: unknown suite {args.suite!r} "
            f"(try 'repro bench list')",
            file=sys.stderr,
        )
        return 2
    harness = BenchHarness(
        args.suite,
        results_dir=bench_dir / "results",
        quick=args.quick,
    )
    try:
        module = load_suite(args.suite, script)
        module.run_suite(harness, quick=args.quick)
        target = harness.write(args.output)
    except (ArtifactError, BenchError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot write artifact: {exc}", file=sys.stderr)
        return 2
    print(
        f"suite {args.suite}: {len(harness.cases)} case(s) -> {target}"
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .errors import ArtifactError
    from .obs.bench import load_artifact
    from .obs.compare import (
        DEFAULT_METRICS,
        compare_artifacts,
        render_comparison,
    )

    metrics = (
        tuple(args.metric) if args.metric else DEFAULT_METRICS
    )
    try:
        baseline = load_artifact(args.baseline)
        candidate = load_artifact(args.candidate)
        comparison = compare_artifacts(
            baseline,
            candidate,
            threshold_pct=args.threshold,
            metrics=metrics,
        )
    except ArtifactError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_comparison(comparison))
    return 0 if comparison.ok else 1


def _default_lint_paths() -> list[str] | None:
    """Locate ``src/repro``: the cwd's checkout, then the package.

    Mirrors :func:`_bench_dir`: ``repro lint`` is usually run from
    the repository root, but falls back to linting the installed
    package sources so it works from anywhere inside a checkout.
    """
    for candidate in (
        Path("src") / "repro",
        Path(__file__).resolve().parent,
    ):
        if candidate.is_dir():
            return [str(candidate)]
    return None


def _lint_rule_list(raw: list[str] | None) -> tuple[str, ...] | None:
    """Flatten repeatable/comma-separated rule-id flags."""
    if raw is None:
        return None
    rules: list[str] = []
    for chunk in raw:
        rules.extend(
            part.strip() for part in chunk.split(",") if part.strip()
        )
    return tuple(rules)


def _cmd_lint(args: argparse.Namespace) -> int:
    from .errors import LintError
    from .lint import (
        build_payload,
        lint_paths,
        load_config,
        render_text,
    )

    paths = args.paths or _default_lint_paths()
    if not paths:
        print(
            "error: no paths given and no src/repro tree found",
            file=sys.stderr,
        )
        return 2
    try:
        result = lint_paths(
            paths,
            config=load_config(),
            select=_lint_rule_list(args.select),
            ignore=_lint_rule_list(args.ignore),
        )
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        payload = build_payload(
            result,
            paths=[str(path) for path in paths],
            select=_lint_rule_list(args.select) or (),
            ignore=_lint_rule_list(args.ignore) or (),
        )
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(
            render_text(
                result.findings,
                result.unused_suppressions,
                statistics=(
                    result.statistics() if args.statistics else None
                ),
            )
        )
    return 0 if result.clean else 1


def _cmd_ops(args: argparse.Namespace) -> int:
    """Render a ``repro.ops/1`` span log: tree + critical path."""
    from .errors import OpsError
    from .obs.ops import load_ops
    from .obs.span import render_critical_path, render_span_tree

    try:
        spans = load_ops(args.path)
    except OpsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_span_tree(spans, max_depth=max(1, args.depth)))
    print()
    print(render_critical_path(spans))
    return 0


def _cmd_sweep_status(args: argparse.Namespace, plan: dict) -> int:
    """The ``repro sweep status [--watch]`` fleet view."""
    from .obs.ops import find_heartbeats, fleet_status, render_fleet

    first = True
    while True:
        statuses = fleet_status(
            plan,
            find_heartbeats(args.stores),
            now=time.time(),
            stale_after=args.stale,
            straggler_below=args.straggler,
        )
        if not first:
            print()
        print(render_fleet(plan, statuses))
        first = False
        terminal = all(
            status.state in ("done", "failed")
            for status in statuses
        )
        if not args.watch or terminal:
            return 0
        time.sleep(max(0.1, args.interval))


def _cmd_sweep(args: argparse.Namespace) -> int:
    """The ``repro sweep plan|run|merge|status`` sharded-sweep protocol.

    Exit codes follow the repo convention: 0 on success, 1 when any
    of a shard's runs failed, 2 on a malformed/stale plan or store
    (or unreadable telemetry for ``status``).
    """
    from .errors import OpsError, StoreError, SweepError
    from .experiments import sweep_service
    from .parallel import ResultStore, SweepProgress

    jobs = getattr(args, "jobs", None)
    if jobs is not None and jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}",
              file=sys.stderr)
        return 2
    ops = not getattr(args, "no_ops", False)
    try:
        if args.sweep_command == "plan":
            from .obs.ops import NULL_OPS, OpsLog

            target = (
                args.output
                or f"sweep-fig{args.figure}.plan.json"
            )
            ops_log = (
                OpsLog(f"{target}.ops.jsonl") if ops else NULL_OPS
            )
            with ops_log:
                with ops_log.span(
                    "plan",
                    figure=args.figure,
                    shards=args.shards,
                ) as span:
                    plan = sweep_service.build_plan(
                        args.figure,
                        quick=args.quick,
                        fidelity=args.fidelity,
                        shards=args.shards,
                    )
                    sweep_service.dump_plan(plan, target)
                    span.attrs["runs"] = plan["total_runs"]
            per_shard = ", ".join(
                str(sum(1 for run in plan["runs"]
                        if run["shard"] == shard))
                for shard in range(plan["shards"])
            )
            print(
                f"sweep plan -> {target}: figure {args.figure}, "
                f"{plan['total_runs']} runs over {plan['shards']} "
                f"shard(s) [{per_shard}]"
            )
            return 0
        plan = sweep_service.load_plan(args.plan)
        if args.sweep_command == "status":
            return _cmd_sweep_status(args, plan)
        progress = (
            SweepProgress(mode=args.progress)
            if getattr(args, "progress", None)
            else None
        )
        if args.sweep_command == "run":
            report = sweep_service.run_shard(
                plan,
                args.shard,
                ResultStore(args.store),
                jobs=jobs,
                progress=progress,
                ops=ops,
            )
            print(
                f"shard {report.shard}/{report.shards}: "
                f"{report.runs} runs, {report.computed} computed, "
                f"{report.cached} already in {args.store}"
            )
            return 0
        if args.sweep_command == "merge":
            report = sweep_service.merge_plan(
                plan,
                ResultStore(args.store),
                sources=args.sources,
                jobs=jobs,
                progress=progress,
                ops=ops,
            )
            text = format_figure(
                report.result, precision=report.precision
            )
            print(text)
            if args.output:
                with open(
                    args.output, "w", encoding="utf-8"
                ) as handle:
                    handle.write(text)
            print(
                f"merged {len(args.sources)} shard store(s) "
                f"({report.absorbed} entries absorbed) into "
                f"{args.store}: {report.cached} of {report.runs} "
                f"runs cached, {report.computed} computed",
                file=sys.stderr,
            )
            return 0
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except SweepError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OpsError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # repro: lint-ok[E1] unreachable parser-dispatch guard
    raise AssertionError(
        f"unhandled sweep command {args.sweep_command!r}"
    )


def _cmd_rspec(args: argparse.Namespace) -> int:
    document = star_rspec(
        n_peers=args.peers, capacity_kbps=args.capacity
    )
    print(document.to_xml())
    return 0


def _cmd_timeline(args: argparse.Namespace) -> int:
    video = encode_paper_video(seed=1)
    splice = DurationSplicer(args.duration).splice(video)
    config = SwarmConfig(
        bandwidth=kB_per_s(args.bandwidth),
        seeder_bandwidth=kB_per_s(8 * args.bandwidth),
        n_leechers=args.peers,
        seed=args.seed,
    )
    result = Swarm(splice, config).run()
    print(render_timeline(result))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
