"""Synthetic MPEG-4 video substrate.

The paper splices a real 2-minute, 1 Mbps MPEG-4 video with
Xuggler/FFmpeg.  We have no codec here, so this package models exactly
the properties splicing depends on:

* a stream is a sequence of **closed GOPs**;
* every GOP starts with an **I-frame** followed by P and B frames;
* I-frames are several times larger than P/B frames;
* GOP *length varies with scene content* — stationary scenes produce
  long GOPs, action scenes produce short ones (the paper's stated cause
  of GOP-splicing stalls).

Public entry points:

* :class:`~repro.video.encoder.EncoderConfig` /
  :class:`~repro.video.encoder.SyntheticEncoder` — produce a
  :class:`~repro.video.bitstream.Bitstream` from a scene plan;
* :func:`~repro.video.scene.generate_scene_plan` — content model;
* :mod:`~repro.video.container` — byte-level serialization.
"""

from .analysis import BitrateProfile, bitrate_profile, sustainable_bandwidth
from .bitstream import Bitstream, BitstreamStats
from .container import deserialize_bitstream, serialize_bitstream
from .encoder import EncoderConfig, SyntheticEncoder, encode_paper_video
from .frames import Frame, FrameType
from .gop import Gop
from .scene import Scene, SceneKind, ScenePlan, generate_scene_plan

__all__ = [
    "BitrateProfile",
    "Bitstream",
    "BitstreamStats",
    "bitrate_profile",
    "sustainable_bandwidth",
    "EncoderConfig",
    "Frame",
    "FrameType",
    "Gop",
    "Scene",
    "SceneKind",
    "ScenePlan",
    "SyntheticEncoder",
    "deserialize_bitstream",
    "encode_paper_video",
    "generate_scene_plan",
    "serialize_bitstream",
]
