"""Scene-content model.

GOP boundaries in a real encoder are driven by content: a scene cut
forces a new I-frame, while a stationary shot lets the GOP run to the
encoder's maximum keyframe interval.  The paper leans on exactly this
("if a video contains constantly changing scenery, the duration of the
GOP will be very short ... a stationary scene ... can be very long").

We model content as an alternating sequence of *scenes*, each either
``CALM`` (long shots, few cuts) or ``ACTION`` (rapid cuts), produced by
a two-state Markov chain.  Each scene carries a *complexity* factor
that scales frame sizes (action frames cost more bits).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

from ..errors import ConfigurationError


class SceneKind(enum.Enum):
    """Coarse content class of a scene."""

    CALM = "calm"
    ACTION = "action"


@dataclass(frozen=True, slots=True)
class Scene:
    """A contiguous run of shots sharing one content class.

    Attributes:
        kind: content class.
        start: scene start time, seconds from stream start.
        duration: scene length in seconds.
        cut_times: times (absolute, within ``[start, start+duration)``)
            at which a shot cut occurs; each cut forces an I-frame.
        complexity: multiplier on nominal frame sizes (action > calm).
    """

    kind: SceneKind
    start: float
    duration: float
    cut_times: tuple[float, ...]
    complexity: float

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigurationError(
                f"scene duration must be positive, got {self.duration}"
            )
        if self.complexity <= 0:
            raise ConfigurationError(
                f"scene complexity must be positive, got {self.complexity}"
            )
        end = self.start + self.duration
        for t in self.cut_times:
            if not (self.start <= t < end):
                raise ConfigurationError(
                    f"cut time {t} outside scene [{self.start}, {end})"
                )

    @property
    def end(self) -> float:
        """Scene end time in seconds."""
        return self.start + self.duration


@dataclass(frozen=True, slots=True)
class ScenePlan:
    """The full content plan for a video: back-to-back scenes."""

    scenes: tuple[Scene, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        expected_start = 0.0
        for scene in self.scenes:
            if abs(scene.start - expected_start) > 1e-9:
                raise ConfigurationError(
                    f"scene at {scene.start} does not abut previous scene "
                    f"ending at {expected_start}"
                )
            expected_start = scene.end

    @property
    def duration(self) -> float:
        """Total plan duration in seconds."""
        return self.scenes[-1].end if self.scenes else 0.0

    def scene_at(self, t: float) -> Scene:
        """Return the scene covering presentation time ``t``."""
        for scene in self.scenes:
            if scene.start <= t < scene.end:
                return scene
        if self.scenes and abs(t - self.duration) < 1e-9:
            return self.scenes[-1]
        raise ConfigurationError(f"time {t} outside plan [0, {self.duration})")

    def all_cut_times(self) -> list[float]:
        """All shot-cut times across the plan, ascending."""
        cuts: list[float] = []
        for scene in self.scenes:
            cuts.extend(scene.cut_times)
        return cuts


@dataclass(frozen=True, slots=True)
class SceneModelConfig:
    """Parameters of the two-state Markov scene generator.

    Defaults are tuned so a 2-minute video mixes multi-second calm
    shots with sub-second action cuts, giving GOP-based segments the
    high size variance the paper describes.
    """

    calm_scene_mean: float = 25.0  # mean calm-scene length, seconds
    action_scene_mean: float = 6.0  # mean action-scene length, seconds
    calm_cut_interval_mean: float = 25.0  # mean seconds between cuts, calm
    action_cut_interval_mean: float = 0.6  # mean seconds between cuts, action
    calm_complexity: float = 0.85
    action_complexity: float = 1.35
    p_start_action: float = 0.4  # probability the video opens on action
    min_scene_duration: float = 1.0
    min_cut_interval: float = 0.2

    def __post_init__(self) -> None:
        for name in (
            "calm_scene_mean",
            "action_scene_mean",
            "calm_cut_interval_mean",
            "action_cut_interval_mean",
            "calm_complexity",
            "action_complexity",
            "min_scene_duration",
            "min_cut_interval",
        ):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not 0.0 <= self.p_start_action <= 1.0:
            raise ConfigurationError("p_start_action must be in [0, 1]")


def generate_scene_plan(
    duration: float,
    rng: random.Random,
    config: SceneModelConfig | None = None,
) -> ScenePlan:
    """Generate a random scene plan covering ``duration`` seconds.

    Scenes strictly alternate between CALM and ACTION; lengths and shot
    cuts are exponentially distributed around the configured means.

    Args:
        duration: total video duration in seconds (> 0).
        rng: seeded random source; the plan is a pure function of it.
        config: generator parameters; defaults per :class:`SceneModelConfig`.

    Returns:
        A :class:`ScenePlan` whose scenes exactly tile ``[0, duration]``.
    """
    if duration <= 0:
        raise ConfigurationError(f"duration must be positive, got {duration}")
    cfg = config or SceneModelConfig()

    scenes: list[Scene] = []
    t = 0.0
    kind = (
        SceneKind.ACTION
        if rng.random() < cfg.p_start_action
        else SceneKind.CALM
    )
    while t < duration - 1e-9:
        mean = (
            cfg.calm_scene_mean
            if kind is SceneKind.CALM
            else cfg.action_scene_mean
        )
        length = max(cfg.min_scene_duration, rng.expovariate(1.0 / mean))
        length = min(length, duration - t)
        cut_mean = (
            cfg.calm_cut_interval_mean
            if kind is SceneKind.CALM
            else cfg.action_cut_interval_mean
        )
        cuts = _generate_cuts(t, length, cut_mean, cfg.min_cut_interval, rng)
        complexity = (
            cfg.calm_complexity
            if kind is SceneKind.CALM
            else cfg.action_complexity
        )
        scenes.append(
            Scene(
                kind=kind,
                start=t,
                duration=length,
                cut_times=tuple(cuts),
                complexity=complexity,
            )
        )
        t += length
        kind = SceneKind.ACTION if kind is SceneKind.CALM else SceneKind.CALM
    return ScenePlan(scenes=tuple(scenes))


def _generate_cuts(
    start: float,
    length: float,
    interval_mean: float,
    min_interval: float,
    rng: random.Random,
) -> list[float]:
    """Poisson-ish shot cuts inside a scene (excluding the scene start)."""
    cuts: list[float] = []
    t = start + max(min_interval, rng.expovariate(1.0 / interval_mean))
    end = start + length
    while t < end - 1e-9:
        cuts.append(t)
        t += max(min_interval, rng.expovariate(1.0 / interval_mean))
    return cuts
