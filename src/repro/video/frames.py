"""Frame-level data model for the synthetic MPEG-4 stream."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import BitstreamError


class FrameType(enum.Enum):
    """MPEG-4 frame types.

    * ``I`` — intra-coded; decodable on its own.  Every closed GOP
      starts with one.
    * ``P`` — predicted from the previous reference frame.
    * ``B`` — bi-directionally predicted from surrounding references.
    """

    I = "I"  # noqa: E741 - the MPEG name
    P = "P"
    B = "B"

    @property
    def is_reference(self) -> bool:
        """Whether other frames may predict from this frame type."""
        return self is not FrameType.B


@dataclass(frozen=True, slots=True)
class Frame:
    """One encoded video frame.

    Attributes:
        index: position of the frame in the full stream (0-based,
            presentation order).
        frame_type: I, P, or B.
        size: encoded size in bytes.
        duration: presentation duration in seconds (``1 / fps``).
        pts: presentation timestamp in seconds from stream start.
    """

    index: int
    frame_type: FrameType
    size: int
    duration: float
    pts: float

    def __post_init__(self) -> None:
        if self.index < 0:
            raise BitstreamError(f"frame index must be >= 0, got {self.index}")
        if self.size <= 0:
            raise BitstreamError(f"frame size must be positive, got {self.size}")
        if self.duration <= 0:
            raise BitstreamError(
                f"frame duration must be positive, got {self.duration}"
            )
        if self.pts < 0:
            raise BitstreamError(f"frame pts must be >= 0, got {self.pts}")

    @property
    def end_pts(self) -> float:
        """Presentation time at which the frame stops being displayed."""
        return self.pts + self.duration

    def as_type(self, frame_type: FrameType, size: int) -> "Frame":
        """Return a copy re-encoded as ``frame_type`` with a new ``size``.

        Used by the duration splicer when it converts the first frame of
        a segment into an I-frame.
        """
        return Frame(
            index=self.index,
            frame_type=frame_type,
            size=size,
            duration=self.duration,
            pts=self.pts,
        )
