"""Bitrate analysis of encoded streams.

The GOP-splicing results hinge on the video's *local* bitrate profile
(action runs above nominal, calm stretches below).  These helpers
expose that profile so experiments and tests can reason about it
directly instead of inferring it from stalls.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .bitstream import Bitstream


@dataclass(frozen=True, slots=True)
class BitrateProfile:
    """The stream's bitrate over time, in fixed windows.

    Attributes:
        window: window length in seconds.
        rates: mean bitrate (bits/second) of each consecutive window.
    """

    window: float
    rates: tuple[float, ...]

    @property
    def peak(self) -> float:
        """Highest windowed bitrate, bits/second."""
        return max(self.rates)

    @property
    def trough(self) -> float:
        """Lowest windowed bitrate, bits/second."""
        return min(self.rates)

    @property
    def mean(self) -> float:
        """Mean of the windowed bitrates, bits/second."""
        return sum(self.rates) / len(self.rates)

    @property
    def peak_to_mean(self) -> float:
        """Burstiness: peak divided by mean."""
        return self.peak / self.mean if self.mean else 0.0


def bitrate_profile(stream: Bitstream, window: float = 1.0) -> BitrateProfile:
    """Compute the windowed bitrate profile of a stream.

    Frames are binned by presentation time; partial trailing windows
    are scaled by their actual length.

    Args:
        stream: the encoded stream.
        window: bin length in seconds (> 0).
    """
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    duration = stream.duration
    n_windows = max(1, int(duration / window + 0.5))
    bits = [0.0] * n_windows
    for frame in stream.frames():
        index = min(n_windows - 1, int(frame.pts / window))
        bits[index] += frame.size * 8
    rates = []
    for index, window_bits in enumerate(bits):
        start = index * window
        length = min(window, duration - start)
        rates.append(window_bits / max(length, 1e-9))
    return BitrateProfile(window=window, rates=tuple(rates))


def sustainable_bandwidth(
    stream: Bitstream, startup_buffer: float = 0.0
) -> float:
    """Minimum constant bandwidth that plays the stream without stalls.

    Classic offline VBR analysis: scanning cumulative bytes against
    cumulative playtime, the binding constraint is the prefix with the
    highest byte-to-time ratio (after crediting ``startup_buffer``
    seconds of pre-roll).

    Args:
        stream: the encoded stream.
        startup_buffer: seconds of video buffered before playback
            starts.

    Returns:
        Required bandwidth in **bytes/second**.
    """
    if startup_buffer < 0:
        raise ConfigurationError(
            f"startup_buffer must be >= 0, got {startup_buffer}"
        )
    cumulative_bytes = 0.0
    worst = 0.0
    for frame in stream.frames():
        cumulative_bytes += frame.size
        deadline = frame.end_pts + startup_buffer
        worst = max(worst, cumulative_bytes / max(deadline, 1e-9))
    return worst
