"""Group-of-Pictures data model."""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import BitstreamError
from .frames import Frame, FrameType


@dataclass(frozen=True, slots=True)
class Gop:
    """A Group of Pictures.

    A *closed* GOP starts with an IDR-style I-frame and contains no
    references to frames outside itself, so it can be decoded and
    played independently — the property GOP-based splicing exploits.
    An *open* GOP starts with a plain I-frame whose leading B-frames
    may reference the previous GOP (real encoders emit these at
    forced keyframe intervals); a splicer must not cut in front of it.

    Attributes:
        frames: the frames of the GOP in presentation order.
        closed: whether the GOP is independently decodable (the paper
            deals only with closed GOPs; open GOPs are modeled so the
            splicer can demonstrate why).
    """

    frames: tuple[Frame, ...]
    closed: bool = True

    def __post_init__(self) -> None:
        if not self.frames:
            raise BitstreamError("a GOP must contain at least one frame")
        if self.frames[0].frame_type is not FrameType.I:
            raise BitstreamError(
                "a closed GOP must start with an I-frame, got "
                f"{self.frames[0].frame_type.value}"
            )
        for earlier, later in zip(self.frames, self.frames[1:]):
            if later.frame_type is FrameType.I:
                raise BitstreamError(
                    "a GOP may contain only one I-frame (at its start); "
                    f"found another at stream index {later.index}"
                )
            if later.pts <= earlier.pts:
                raise BitstreamError(
                    "frame pts must strictly increase within a GOP"
                )

    def __len__(self) -> int:
        return len(self.frames)

    @property
    def start_pts(self) -> float:
        """Presentation time of the first frame."""
        return self.frames[0].pts

    @property
    def end_pts(self) -> float:
        """Presentation time at which the last frame ends."""
        return self.frames[-1].end_pts

    @property
    def duration(self) -> float:
        """Playback duration of the GOP in seconds."""
        return self.end_pts - self.start_pts

    @property
    def size(self) -> int:
        """Total encoded size in bytes."""
        return sum(frame.size for frame in self.frames)

    @property
    def i_frame(self) -> Frame:
        """The GOP's leading I-frame."""
        return self.frames[0]

    def frame_counts(self) -> dict[FrameType, int]:
        """Number of frames per type."""
        counts = {FrameType.I: 0, FrameType.P: 0, FrameType.B: 0}
        for frame in self.frames:
            counts[frame.frame_type] += 1
        return counts
