"""Constant-bitrate synthetic encoder.

Produces a :class:`~repro.video.bitstream.Bitstream` whose structure
mirrors what a real MPEG-4 encoder would emit for a given scene plan:

* a new closed GOP at every shot cut and scene boundary;
* a forced I-frame when a GOP reaches the keyframe interval;
* I-frames several times larger than P-frames, which are in turn
  larger than B-frames;
* frame sizes scaled by scene complexity and multiplicative jitter;
* a final rate-control pass that scales sizes so the whole stream hits
  the target bitrate exactly (like a CBR encoder's rate controller).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..units import mbps, minutes
from .bitstream import Bitstream
from .frames import Frame, FrameType
from .gop import Gop
from .scene import ScenePlan, generate_scene_plan


@dataclass(frozen=True, slots=True)
class EncoderConfig:
    """Synthetic encoder parameters.

    Attributes:
        fps: frames per second.
        bitrate: target average bitrate in **bits per second**.
        keyframe_interval: maximum frames per GOP before an I-frame is
            forced (250 at 25 fps = a 10-second ceiling, a common
            encoder default).
        b_frames: number of B-frames between consecutive reference
            frames (0 disables B-frames).
        i_weight / p_weight / b_weight: relative nominal sizes of the
            frame types.  Defaults keep I-frames ~8x a B-frame, the
            "significantly larger" premise of the paper's overhead
            argument.
        size_jitter: standard deviation of the multiplicative
            (lognormal-ish) noise applied to each frame's nominal size.
        open_gop: when True, interval-forced I-frames start *open*
            GOPs (their leading frames may reference the previous GOP,
            as real encoders do between scene cuts); scene-cut
            I-frames are always IDR/closed.  The paper's video uses
            closed GOPs only (the default).
    """

    fps: int = 25
    bitrate: float = mbps(1) * 8  # 1 Mbps expressed in bits/s
    keyframe_interval: int = 250
    b_frames: int = 2
    i_weight: float = 6.5
    p_weight: float = 2.8
    b_weight: float = 1.0
    size_jitter: float = 0.15
    open_gop: bool = False

    def __post_init__(self) -> None:
        if self.fps <= 0:
            raise ConfigurationError(f"fps must be positive, got {self.fps}")
        if self.bitrate <= 0:
            raise ConfigurationError(
                f"bitrate must be positive, got {self.bitrate}"
            )
        if self.keyframe_interval < 1:
            raise ConfigurationError(
                f"keyframe_interval must be >= 1, got {self.keyframe_interval}"
            )
        if self.b_frames < 0:
            raise ConfigurationError(
                f"b_frames must be >= 0, got {self.b_frames}"
            )
        for name in ("i_weight", "p_weight", "b_weight"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"{name} must be positive")
        if not self.i_weight >= self.p_weight >= self.b_weight:
            raise ConfigurationError(
                "frame weights must satisfy i_weight >= p_weight >= b_weight"
            )
        if self.size_jitter < 0:
            raise ConfigurationError(
                f"size_jitter must be >= 0, got {self.size_jitter}"
            )

    @property
    def frame_duration(self) -> float:
        """Duration of one frame in seconds."""
        return 1.0 / self.fps

    @property
    def bytes_per_frame(self) -> float:
        """Average encoded bytes per frame implied by the bitrate."""
        return self.bitrate / 8.0 / self.fps


class SyntheticEncoder:
    """Encode a scene plan into a CBR MPEG-4-like bitstream."""

    def __init__(self, config: EncoderConfig | None = None) -> None:
        self._config = config or EncoderConfig()

    @property
    def config(self) -> EncoderConfig:
        """The encoder's configuration."""
        return self._config

    def encode(self, plan: ScenePlan, rng: random.Random) -> Bitstream:
        """Encode ``plan`` into a bitstream.

        Args:
            plan: the scene/content plan to encode.
            rng: seeded random source for frame-size jitter.

        Returns:
            A validated :class:`Bitstream` whose total size matches the
            configured bitrate to within integer rounding.
        """
        cfg = self._config
        total_frames = round(plan.duration * cfg.fps)
        if total_frames < 1:
            raise ConfigurationError(
                f"plan too short to encode a single frame at {cfg.fps} fps"
            )
        idr_positions, forced_positions = self._i_frame_positions(
            plan, total_frames
        )
        i_frame_positions = idr_positions | forced_positions
        frame_types = self._frame_types(total_frames, i_frame_positions)
        nominal_sizes = self._nominal_sizes(plan, frame_types, rng)
        sizes = self._rate_control(nominal_sizes, total_frames)
        open_positions = (
            forced_positions - idr_positions if cfg.open_gop else set()
        )
        return self._assemble(frame_types, sizes, open_positions)

    def _i_frame_positions(
        self, plan: ScenePlan, total_frames: int
    ) -> tuple[set[int], set[int]]:
        """Frame indices that must be I-frames.

        Cuts and scene starts snap to the nearest frame (IDR/closed);
        the keyframe interval then forces additional I-frames inside
        long shots (open when the encoder is in open-GOP mode).

        Returns:
            ``(idr_positions, interval_forced_positions)``.
        """
        cfg = self._config
        positions = {0}
        for scene in plan.scenes:
            positions.add(min(total_frames - 1, round(scene.start * cfg.fps)))
        for cut in plan.all_cut_times():
            positions.add(min(total_frames - 1, round(cut * cfg.fps)))
        # Enforce the keyframe interval between consecutive cut-driven
        # I-frames.
        forced: set[int] = set()
        ordered = sorted(positions)
        for start, end in zip(ordered, ordered[1:] + [total_frames]):
            pos = start + cfg.keyframe_interval
            while pos < end:
                forced.add(pos)
                pos += cfg.keyframe_interval
        return positions, forced

    def _frame_types(
        self, total_frames: int, i_positions: set[int]
    ) -> list[FrameType]:
        """Assign I/P/B types, restarting the B-pattern at each I-frame."""
        cfg = self._config
        types: list[FrameType] = []
        since_reference = 0
        for index in range(total_frames):
            if index in i_positions:
                types.append(FrameType.I)
                since_reference = 0
            elif cfg.b_frames and since_reference < cfg.b_frames:
                # A trailing B-frame would dangle past the GOP's last
                # reference; emit P if the GOP ends here or next frame
                # is an I-frame.
                next_is_i = (index + 1) in i_positions
                last_frame = index == total_frames - 1
                if next_is_i or last_frame:
                    types.append(FrameType.P)
                    since_reference = 0
                else:
                    types.append(FrameType.B)
                    since_reference += 1
            else:
                types.append(FrameType.P)
                since_reference = 0
        return types

    def _nominal_sizes(
        self,
        plan: ScenePlan,
        frame_types: list[FrameType],
        rng: random.Random,
    ) -> list[float]:
        """Pre-rate-control frame sizes with complexity and jitter."""
        cfg = self._config
        weights = {
            FrameType.I: cfg.i_weight,
            FrameType.P: cfg.p_weight,
            FrameType.B: cfg.b_weight,
        }
        sizes: list[float] = []
        for index, frame_type in enumerate(frame_types):
            pts = index * cfg.frame_duration
            complexity = plan.scene_at(min(pts, plan.duration)).complexity
            jitter = max(0.1, rng.gauss(1.0, cfg.size_jitter))
            sizes.append(weights[frame_type] * complexity * jitter)
        return sizes

    def _rate_control(
        self, nominal_sizes: list[float], total_frames: int
    ) -> list[int]:
        """Scale nominal sizes so the stream meets the target bitrate."""
        cfg = self._config
        target_total = cfg.bytes_per_frame * total_frames
        scale = target_total / sum(nominal_sizes)
        return [max(1, round(size * scale)) for size in nominal_sizes]

    def _assemble(
        self,
        frame_types: list[FrameType],
        sizes: list[int],
        open_positions: set[int],
    ) -> Bitstream:
        """Group typed, sized frames into GOPs."""
        cfg = self._config
        gops: list[Gop] = []
        current: list[Frame] = []
        current_closed = True
        for index, (frame_type, size) in enumerate(zip(frame_types, sizes)):
            if frame_type is FrameType.I and current:
                gops.append(
                    Gop(frames=tuple(current), closed=current_closed)
                )
                current = []
                current_closed = index not in open_positions
            current.append(
                Frame(
                    index=index,
                    frame_type=frame_type,
                    size=size,
                    duration=cfg.frame_duration,
                    pts=index * cfg.frame_duration,
                )
            )
        gops.append(Gop(frames=tuple(current), closed=current_closed))
        return Bitstream(tuple(gops))


def encode_paper_video(
    seed: int = 0,
    duration: float = minutes(2),
    bitrate: float = 950_000.0,
    config: EncoderConfig | None = None,
) -> Bitstream:
    """Encode the paper's experimental video: 2 minutes at "1 Mbps".

    The default realized bitrate is 0.95 Mbps: real CBR encoders
    undershoot their nominal target by a few percent, and the paper's
    lowest evaluated bandwidth (128 kB/s = 1.024 Mbps) only leaves the
    system feasible at all if the video's mean rate sits slightly
    below nominal.

    Args:
        seed: seed for both the scene plan and frame-size jitter.
        duration: video length in seconds (paper: 120 s).
        bitrate: realized mean bitrate in bits/s.
        config: optional encoder override; its ``bitrate`` is replaced
            by the ``bitrate`` argument.

    Returns:
        The encoded bitstream.
    """
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    base = config or EncoderConfig()
    cfg = EncoderConfig(
        fps=base.fps,
        bitrate=bitrate,
        keyframe_interval=base.keyframe_interval,
        b_frames=base.b_frames,
        i_weight=base.i_weight,
        p_weight=base.p_weight,
        b_weight=base.b_weight,
        size_jitter=base.size_jitter,
    )
    return SyntheticEncoder(cfg).encode(plan, rng)
