"""Bitstream: a validated sequence of closed GOPs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Iterator

from ..errors import BitstreamError
from .frames import Frame, FrameType
from .gop import Gop


@dataclass(frozen=True, slots=True)
class BitstreamStats:
    """Summary statistics of a bitstream (useful in reports and tests).

    Attributes:
        duration: total playback duration, seconds.
        size: total encoded size, bytes.
        bitrate: average rate, bits per second.
        frame_count: total number of frames.
        gop_count: number of GOPs.
        gop_duration_min/mean/max: GOP playback durations, seconds.
        gop_size_min/mean/max: GOP sizes, bytes.
        gop_duration_stdev: population stdev of GOP durations (0 when a
            single GOP).
        i_frame_mean_size / p_frame_mean_size / b_frame_mean_size:
            average frame size per type in bytes (0 if no such frames).
    """

    duration: float
    size: int
    bitrate: float
    frame_count: int
    gop_count: int
    gop_duration_min: float
    gop_duration_mean: float
    gop_duration_max: float
    gop_duration_stdev: float
    gop_size_min: int
    gop_size_mean: float
    gop_size_max: int
    i_frame_mean_size: float
    p_frame_mean_size: float
    b_frame_mean_size: float


class Bitstream:
    """An encoded video: an ordered sequence of closed GOPs.

    The stream is validated on construction: GOPs must abut in
    presentation time and frame indices must be contiguous from 0.
    """

    def __init__(self, gops: tuple[Gop, ...] | list[Gop]) -> None:
        gops = tuple(gops)
        if not gops:
            raise BitstreamError("a bitstream must contain at least one GOP")
        expected_pts = 0.0
        expected_index = 0
        for gop in gops:
            if abs(gop.start_pts - expected_pts) > 1e-6:
                raise BitstreamError(
                    f"GOP at pts {gop.start_pts} does not abut previous GOP "
                    f"ending at {expected_pts}"
                )
            for frame in gop.frames:
                if frame.index != expected_index:
                    raise BitstreamError(
                        f"frame indices must be contiguous; expected "
                        f"{expected_index}, got {frame.index}"
                    )
                expected_index += 1
            expected_pts = gop.end_pts
        self._gops = gops

    @property
    def gops(self) -> tuple[Gop, ...]:
        """The stream's GOPs in order."""
        return self._gops

    def __len__(self) -> int:
        return len(self._gops)

    def __iter__(self) -> Iterator[Gop]:
        return iter(self._gops)

    def frames(self) -> Iterator[Frame]:
        """Iterate over every frame in presentation order."""
        for gop in self._gops:
            yield from gop.frames

    @property
    def frame_count(self) -> int:
        """Total number of frames."""
        return sum(len(gop) for gop in self._gops)

    @property
    def duration(self) -> float:
        """Total playback duration in seconds."""
        return self._gops[-1].end_pts

    @property
    def size(self) -> int:
        """Total encoded size in bytes."""
        return sum(gop.size for gop in self._gops)

    @property
    def bitrate(self) -> float:
        """Average bitrate in bits per second."""
        return self.size * 8 / self.duration

    def stats(self) -> BitstreamStats:
        """Compute summary statistics for the stream."""
        durations = [gop.duration for gop in self._gops]
        sizes = [gop.size for gop in self._gops]
        by_type: dict[FrameType, list[int]] = {t: [] for t in FrameType}
        for frame in self.frames():
            by_type[frame.frame_type].append(frame.size)

        def mean_or_zero(values: list[int]) -> float:
            return statistics.fmean(values) if values else 0.0

        return BitstreamStats(
            duration=self.duration,
            size=self.size,
            bitrate=self.bitrate,
            frame_count=self.frame_count,
            gop_count=len(self._gops),
            gop_duration_min=min(durations),
            gop_duration_mean=statistics.fmean(durations),
            gop_duration_max=max(durations),
            gop_duration_stdev=(
                statistics.pstdev(durations) if len(durations) > 1 else 0.0
            ),
            gop_size_min=min(sizes),
            gop_size_mean=statistics.fmean(sizes),
            gop_size_max=max(sizes),
            i_frame_mean_size=mean_or_zero(by_type[FrameType.I]),
            p_frame_mean_size=mean_or_zero(by_type[FrameType.P]),
            b_frame_mean_size=mean_or_zero(by_type[FrameType.B]),
        )
