"""Byte-level container for synthetic bitstreams.

A minimal MP4-like container: a fixed magic, a frame table, and
(optionally) the frame payloads.  Payload bytes are synthetic (zeros),
but their *lengths* are exact, so a serialized stream occupies the same
number of bytes a real stream of that encoding would — which is all the
transport layer cares about.

Wire layout (big-endian)::

    magic    : 4 bytes  b"RPV1"
    nframes  : u32
    frame[i] : type(1 byte: 'I'/'P'/'B') | size(u32) | duration_us(u32)
    payload  : size bytes per frame, iff include_payload

"""

from __future__ import annotations

import struct

from ..errors import BitstreamError
from .bitstream import Bitstream
from .frames import Frame, FrameType
from .gop import Gop

MAGIC = b"RPV1"
_HEADER = struct.Struct(">4sI")
_FRAME = struct.Struct(">cII")


def serialize_bitstream(
    stream: Bitstream, include_payload: bool = False
) -> bytes:
    """Serialize a bitstream to container bytes.

    Args:
        stream: the bitstream to serialize.
        include_payload: when True, append ``frame.size`` zero bytes per
            frame so the output is byte-for-byte the size a real file
            would be (plus the frame-table overhead).

    Returns:
        The serialized container.
    """
    parts = [_HEADER.pack(MAGIC, stream.frame_count)]
    for frame in stream.frames():
        duration_us = round(frame.duration * 1_000_000)
        parts.append(
            _FRAME.pack(
                frame.frame_type.value.encode("ascii"),
                frame.size,
                duration_us,
            )
        )
    if include_payload:
        for frame in stream.frames():
            parts.append(b"\x00" * frame.size)
    return b"".join(parts)


def deserialize_bitstream(data: bytes) -> Bitstream:
    """Parse container bytes back into a :class:`Bitstream`.

    Only the frame table is read; any payload bytes after it are
    ignored (their length is implied by the table).

    Raises:
        BitstreamError: if the magic, header, or frame table is
            malformed.
    """
    if len(data) < _HEADER.size:
        raise BitstreamError("container truncated: missing header")
    magic, nframes = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise BitstreamError(f"bad container magic {magic!r}")
    table_end = _HEADER.size + nframes * _FRAME.size
    if len(data) < table_end:
        raise BitstreamError(
            f"container truncated: expected {nframes} frame records"
        )
    frames: list[Frame] = []
    pts = 0.0
    offset = _HEADER.size
    for index in range(nframes):
        type_byte, size, duration_us = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        try:
            frame_type = FrameType(type_byte.decode("ascii"))
        except ValueError as exc:
            raise BitstreamError(
                f"unknown frame type byte {type_byte!r} at record {index}"
            ) from exc
        duration = duration_us / 1_000_000
        frames.append(
            Frame(
                index=index,
                frame_type=frame_type,
                size=size,
                duration=duration,
                pts=pts,
            )
        )
        pts += duration
    return Bitstream(tuple(_group_into_gops(frames)))


def _group_into_gops(frames: list[Frame]) -> list[Gop]:
    """Split a frame sequence into closed GOPs at I-frames."""
    if not frames:
        raise BitstreamError("container holds no frames")
    if frames[0].frame_type is not FrameType.I:
        raise BitstreamError("stream must start with an I-frame")
    gops: list[Gop] = []
    current: list[Frame] = []
    for frame in frames:
        if frame.frame_type is FrameType.I and current:
            gops.append(Gop(frames=tuple(current)))
            current = []
        current.append(frame)
    gops.append(Gop(frames=tuple(current)))
    return gops
