"""repro — reproduction of "Video Splicing Techniques for P2P Video
Streaming" (Islam & Khan, ICDCS 2015).

The package implements the paper's full stack in pure Python: a
synthetic MPEG-4 video model, GOP- and duration-based splicers, the
adaptive download-pool policy (Eq. 1), a discrete-event flow/TCP
network simulator, a BitTorrent-like streaming swarm, playback metrics
(stalls / startup), a hybrid CDN mode, a GENI-style RSpec testbed
layer, and an experiment harness regenerating every figure.

Quickstart::

    from repro import (
        encode_paper_video, DurationSplicer, Swarm, SwarmConfig, kB_per_s,
    )

    video = encode_paper_video(seed=1)
    splice = DurationSplicer(4.0).splice(video)
    swarm = Swarm(splice, SwarmConfig(bandwidth=kB_per_s(512)))
    result = swarm.run()
    print(result.mean_stall_count(), result.mean_startup_time())
"""

from .core import (
    AdaptiveDurationPlanner,
    AdaptivePoolPolicy,
    DownloadPolicy,
    DurationSplicer,
    FixedPoolPolicy,
    GopSplicer,
    Segment,
    SpliceResult,
    Splicer,
    adaptive_pool_size,
    max_cdn_segment_size,
)
from .errors import ReproError
from .obs import Observability
from .p2p import Swarm, SwarmConfig
from .player import Player, PlayerState, StreamingMetrics
from .units import kB_per_s, kbps, kilobytes, mbps, megabytes
from .video import (
    Bitstream,
    EncoderConfig,
    SyntheticEncoder,
    encode_paper_video,
)

__version__ = "1.0.0"

__all__ = [
    "AdaptiveDurationPlanner",
    "AdaptivePoolPolicy",
    "Bitstream",
    "DownloadPolicy",
    "DurationSplicer",
    "EncoderConfig",
    "FixedPoolPolicy",
    "GopSplicer",
    "Observability",
    "Player",
    "PlayerState",
    "ReproError",
    "Segment",
    "SpliceResult",
    "Splicer",
    "StreamingMetrics",
    "Swarm",
    "SwarmConfig",
    "SyntheticEncoder",
    "adaptive_pool_size",
    "encode_paper_video",
    "kB_per_s",
    "kbps",
    "kilobytes",
    "max_cdn_segment_size",
    "mbps",
    "megabytes",
    "__version__",
]
