"""Bandwidth estimation.

The paper assumes the available bandwidth ``B`` of Eq. 1 is known
("we simulated the bandwidth on GENI") and cites the Libswift work for
estimating it in the wild from "packet inter-arrival time, round-trip
delay, packet-loss, and so on".  This package supplies both styles:

* :class:`WindowedThroughputEstimator` — measures realized download
  throughput over a sliding window (piece inter-arrival style);
* :class:`EwmaThroughputEstimator` — exponentially-weighted variant;
* :class:`MathisEstimator` — model-based ceiling from RTT and loss.
"""

from .estimators import (
    EwmaThroughputEstimator,
    MathisEstimator,
    WindowedThroughputEstimator,
)

__all__ = [
    "EwmaThroughputEstimator",
    "MathisEstimator",
    "WindowedThroughputEstimator",
]
