"""Bandwidth estimators for Eq. 1's ``B``.

All estimators implement the
:class:`~repro.p2p.leecher.BandwidthEstimator` protocol:
``record(time, num_bytes)`` on every arrival, ``estimate(now)`` for
the current bytes/second figure (``None`` while undecided).
"""

from __future__ import annotations

import collections
import math

from ..errors import ConfigurationError
from ..units import DEFAULT_MSS


class WindowedThroughputEstimator:
    """Realized throughput over a sliding time window.

    The piece-arrival analogue of Libswift-style estimation: total
    bytes that arrived during the last ``window`` seconds, divided by
    the window.  Robust to bursty piece completions because whole
    segments land at once.

    Args:
        window: averaging window in seconds.
        min_samples: arrivals required before an estimate is offered.
    """

    def __init__(self, window: float = 10.0, min_samples: int = 2) -> None:
        if window <= 0:
            raise ConfigurationError(f"window must be positive: {window}")
        if min_samples < 1:
            raise ConfigurationError(
                f"min_samples must be >= 1: {min_samples}"
            )
        self._window = window
        self._min_samples = min_samples
        self._arrivals: collections.deque[tuple[float, float]] = (
            collections.deque()
        )
        self._first_arrival: float | None = None

    def record(self, time: float, num_bytes: float) -> None:
        """Record ``num_bytes`` arriving at ``time``."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"num_bytes must be >= 0, got {num_bytes}"
            )
        if self._first_arrival is None:
            self._first_arrival = time
        self._arrivals.append((time, num_bytes))

    def estimate(self, now: float) -> float | None:
        """Bytes/second over the last window, or None if undecided."""
        cutoff = now - self._window
        while self._arrivals and self._arrivals[0][0] < cutoff:
            self._arrivals.popleft()
        if len(self._arrivals) < self._min_samples:
            return None
        if self._first_arrival is None:
            return None
        span = min(self._window, max(now - self._first_arrival, 1e-9))
        total = sum(num_bytes for _, num_bytes in self._arrivals)
        return total / span


class EwmaThroughputEstimator:
    """Exponentially-weighted moving average of inter-arrival throughput.

    Each arrival contributes an instantaneous rate (bytes since the
    previous arrival divided by the gap), smoothed with factor
    ``alpha``.

    Args:
        alpha: smoothing factor in (0, 1]; higher reacts faster.
    """

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1]: {alpha}")
        self._alpha = alpha
        self._last_time: float | None = None
        self._value: float | None = None

    def record(self, time: float, num_bytes: float) -> None:
        """Record ``num_bytes`` arriving at ``time``."""
        if num_bytes < 0:
            raise ConfigurationError(
                f"num_bytes must be >= 0, got {num_bytes}"
            )
        if self._last_time is not None and time > self._last_time:
            rate = num_bytes / (time - self._last_time)
            if self._value is None:
                self._value = rate
            else:
                self._value = (
                    self._alpha * rate + (1.0 - self._alpha) * self._value
                )
        self._last_time = time

    def estimate(self, now: float) -> float | None:
        """Smoothed bytes/second, or None before two arrivals."""
        return self._value


class MathisEstimator:
    """Model-based ceiling: ``MSS / (RTT * sqrt(2p/3))``.

    The classic Mathis/Semke/Mahdavi/Ott TCP throughput bound from
    path RTT and loss rate — what a sender can *hope for* on one
    connection, independent of observed arrivals.  ``record`` accepts
    arrivals for protocol compatibility but ignores them.

    Args:
        rtt: path round-trip time in seconds.
        loss_rate: packet loss probability in (0, 1).
        mss: segment size in bytes.
    """

    def __init__(
        self, rtt: float, loss_rate: float, mss: int = DEFAULT_MSS
    ) -> None:
        if rtt <= 0:
            raise ConfigurationError(f"rtt must be positive: {rtt}")
        if not 0.0 < loss_rate < 1.0:
            raise ConfigurationError(
                f"loss_rate must be in (0, 1): {loss_rate}"
            )
        if mss <= 0:
            raise ConfigurationError(f"mss must be positive: {mss}")
        self._ceiling = mss / (rtt * math.sqrt(2.0 * loss_rate / 3.0))

    @property
    def ceiling(self) -> float:
        """The modeled per-connection throughput bound, bytes/second."""
        return self._ceiling

    def record(self, time: float, num_bytes: float) -> None:
        """Ignored; the Mathis bound is purely model-based."""

    def estimate(self, now: float) -> float | None:
        """The Mathis ceiling in bytes/second."""
        return self._ceiling
