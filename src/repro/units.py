"""Unit helpers and constants.

The paper mixes ``kb/s`` (it writes "1 Mbps (128kB/s)"), kilobytes per
second, and seconds.  Internally the library uses **bytes** for sizes,
**bytes per second** for rates, and **seconds** for durations — always as
plain ``int``/``float``.  These helpers make call sites read like the
paper's own parameter tables.
"""

from __future__ import annotations

from .errors import ConfigurationError

#: Bytes per kilobyte (the paper's "kB" is the decimal kilobyte).
KILOBYTE = 1000

#: Bytes per megabyte.
MEGABYTE = 1000 * KILOBYTE

#: Bits per byte.
BITS_PER_BYTE = 8

#: Ethernet-ish maximum segment size used by the TCP model, in bytes.
DEFAULT_MSS = 1460


def kilobytes(n: float) -> int:
    """Return ``n`` kilobytes as a byte count."""
    _require_non_negative(n, "kilobytes")
    return round(n * KILOBYTE)


def megabytes(n: float) -> int:
    """Return ``n`` megabytes as a byte count."""
    _require_non_negative(n, "megabytes")
    return round(n * MEGABYTE)


def kbps(n: float) -> float:
    """Return ``n`` kilobits/second as bytes/second."""
    _require_non_negative(n, "kbps")
    return n * KILOBYTE / BITS_PER_BYTE


def mbps(n: float) -> float:
    """Return ``n`` megabits/second as bytes/second."""
    _require_non_negative(n, "mbps")
    return n * MEGABYTE / BITS_PER_BYTE


def kB_per_s(n: float) -> float:
    """Return ``n`` kilobytes/second as bytes/second.

    This is the unit the paper's x-axes use (128, 256, 512, 768 kB/s).
    """
    _require_non_negative(n, "kB_per_s")
    return n * KILOBYTE


def milliseconds(n: float) -> float:
    """Return ``n`` milliseconds as seconds."""
    _require_non_negative(n, "milliseconds")
    return n / 1000.0


def minutes(n: float) -> float:
    """Return ``n`` minutes as seconds."""
    _require_non_negative(n, "minutes")
    return n * 60.0


def as_kB(num_bytes: float) -> float:
    """Express a byte count in kilobytes (for reports)."""
    return num_bytes / KILOBYTE


def as_kB_per_s(rate: float) -> float:
    """Express a bytes/second rate in kB/s (for reports)."""
    return rate / KILOBYTE


def _require_non_negative(value: float, name: str) -> None:
    if value < 0:
        raise ConfigurationError(f"{name} must be non-negative, got {value!r}")
