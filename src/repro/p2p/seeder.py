"""The seeder: splices the video and serves manifest + segments.

The paper's seeder "slices the video into multiple segments ... based
on GOP or duration according to the configuration" and is the node a
joining peer first contacts for "information about the video and the
swarm".
"""

from __future__ import annotations

import hashlib

from ..core.segments import SpliceResult
from ..net.engine import Simulator
from ..net.flownet import FlowNetwork
from ..net.tcp import TcpParams
from ..net.topology import Node, StarTopology
from ..obs.context import Observability
from .messages import Manifest, ManifestRequest, Message
from .peer import ControlPlane, PeerBase
from .tracker import Tracker


def info_hash_for(splice: SpliceResult) -> str:
    """A stable content identifier for a spliced video (like a torrent
    info-hash): technique plus the exact segment layout."""
    hasher = hashlib.sha1()
    hasher.update(splice.technique.encode("utf-8"))
    for segment in splice.segments:
        hasher.update(f"{segment.index}:{segment.size}".encode("ascii"))
    return hasher.hexdigest()


class Seeder(PeerBase):
    """Origin peer holding every segment from the start.

    Args:
        name: node/peer name.
        node: the seeder's topology node.
        sim / network / topology / control: simulation plumbing.
        splice: the spliced video this seeder serves.
        tracker: swarm membership directory (the seeder answers for it).
        tcp_params: TCP model tunables for uploads.
    """

    def __init__(
        self,
        name: str,
        node: Node,
        sim: Simulator,
        network: FlowNetwork,
        topology: StarTopology,
        control: ControlPlane,
        splice: SpliceResult,
        tracker: Tracker,
        tcp_params: TcpParams | None = None,
        upload_slots: int | None = None,
        obs: "Observability | None" = None,
    ) -> None:
        super().__init__(
            name, node, sim, network, topology, control, tcp_params,
            upload_slots, obs,
        )
        self._splice = splice
        self._tracker = tracker
        self.info_hash = info_hash_for(splice)
        for segment in splice.segments:
            self.owned.add(segment.index)
            self.segment_sizes[segment.index] = segment.size
        self._segment_durations = tuple(
            segment.duration for segment in splice.segments
        )
        control.register(self)
        tracker.register(name)

    @property
    def splice(self) -> SpliceResult:
        """The spliced video being served."""
        return self._splice

    @property
    def tracker(self) -> Tracker:
        """The membership directory this seeder answers for."""
        return self._tracker

    def manifest_for(self, peer_id: str) -> Manifest:
        """Build the manifest reply for a joining peer."""
        return Manifest(
            info_hash=self.info_hash,
            segment_sizes=tuple(
                self.segment_sizes[i] for i in range(len(self._splice))
            ),
            segment_durations=self._segment_durations,
            peers=tuple(self._tracker.peers_for(peer_id)),
        )

    def handle_message(self, src_name: str, message: Message) -> None:
        if isinstance(message, ManifestRequest):
            if message.peer_id not in self._tracker:
                self._tracker.register(message.peer_id)
            self.send(src_name, self.manifest_for(message.peer_id))
        else:
            super().handle_message(src_name, message)

    def on_peer_left(self, peer_name: str) -> None:
        self._tracker.unregister(peer_name)
