"""End-to-end swarm orchestration.

Builds the paper's experimental setup — one seeder plus N leechers on a
star topology with configured bandwidth, latency and loss — runs the
streaming session, and collects every peer's metrics.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass, field

from ..core.policy import AdaptivePoolPolicy, DownloadPolicy
from ..core.segments import SpliceResult
from ..errors import ConfigurationError, SwarmError
from ..net.engine import Simulator
from ..net.flownet import FlowNetwork
from ..net.tcp import TcpParams
from ..net.topology import StarTopology, per_link_loss
from ..obs.context import Observability
from ..player.metrics import StreamingMetrics
from ..units import milliseconds
from .churn import ChurnConfig, ChurnModel
from .leecher import BandwidthEstimator, Leecher, LeecherConfig
from .peer import ControlPlane
from .seeder import Seeder
from .selection import PieceSelector, SequentialSelector
from .tracker import Tracker

#: Swarm backends selectable via :attr:`SwarmConfig.fidelity`.
FIDELITY_TIERS = ("exact", "cohort", "fluid")


@dataclass(frozen=True, slots=True)
class SwarmConfig:
    """Everything needed to run one streaming session.

    Defaults mirror the paper's setup: 20 nodes (1 seeder + 19
    leechers), 50 ms latency among peers, 500 ms to the seeder for the
    initial contact, 5 % end-to-end packet loss.  Latencies are
    round-trip times; joins are staggered (the paper's peers were
    started across 19 VMs, not at one instant — and simultaneous joins
    leave the swarm in lockstep, where no peer ever holds a segment
    another needs).

    Attributes:
        bandwidth: per-node access bandwidth, bytes/second (the paper's
            x-axis variable).
        seeder_bandwidth: the seeder's access bandwidth; ``None`` uses
            ``bandwidth``.  An origin/seeder is typically provisioned
            above the peers; without headroom somewhere, a swarm at
            ``bandwidth == bitrate`` has zero slack and every series
            degenerates to a permanent crawl.
        n_leechers: number of watching peers.
        n_seeders: number of origin replicas.  The primary answers
            manifest requests; extras (``seeder-2``...) join the
            tracker like ordinary full peers, providing the
            fault-tolerance the paper cites as a P2P motivation.
        peer_rtt: round-trip time between two leechers, seconds
            (paper: 50 ms).
        seeder_rtt: round-trip time of *control* exchanges with the
            seeder, seconds (paper: 500 ms; the paper quotes it for the
            startup manifest exchange — the seeder's data path uses
            normal access latency).
        path_loss: end-to-end packet loss between any two nodes.
        policy: download-pool policy shared by all leechers.
        selector: piece-selection strategy shared by all leechers
            (default: the paper's sequential order).
        bandwidth_hint: Eq. 1's ``B``; defaults to ``bandwidth``.
        seed: master seed (per-leecher RNGs derive from it).
        join_stagger: seconds between consecutive leecher joins.
        churn: optional churn parameters.
        tcp_params: TCP model tunables.
        estimator_factory: optional per-leecher live bandwidth
            estimator factory (called once per leecher).
        upload_slots: concurrent uploads a peer serves before queueing
            (BitTorrent-style unchoke count); ``None`` (the paper's
            plain-socket behaviour) serves every request concurrently.
        origin_one_at_a_time: treat the origin as a CDN per the paper's
            Section IV — each peer keeps at most one request in flight
            to it.
        preroll_segments: segments buffered before playback starts
            (paper: 1).
        max_time: simulation safety cap, seconds.
        fidelity: which swarm backend runs the session — ``"exact"``
            (the per-peer discrete-event engine), ``"cohort"`` (peers
            batched by join epoch, vectorized; 10³–10⁴ peers), or
            ``"fluid"`` (mean-field rate ODEs; 10⁵–10⁶ peers).  See
            ``docs/SCALING.md`` for accuracy envelopes.
        max_cohorts: population granularity of the vectorized tiers
            (ignored by ``"exact"``); more cohorts, closer to exact.
        fluid_dt: integration step of the ``"fluid"`` tier, seconds;
            ``None`` derives one from the shortest segment duration.
    """

    bandwidth: float
    seeder_bandwidth: float | None = None
    n_leechers: int = 19
    n_seeders: int = 1
    peer_rtt: float = milliseconds(50)
    seeder_rtt: float = milliseconds(500)
    path_loss: float = 0.05
    policy: DownloadPolicy = field(default_factory=AdaptivePoolPolicy)
    selector: PieceSelector = field(default_factory=SequentialSelector)
    bandwidth_hint: float | None = None
    seed: int = 0
    join_stagger: float = 5.0
    churn: ChurnConfig | None = None
    tcp_params: TcpParams = field(default_factory=TcpParams)
    estimator_factory: "type[BandwidthEstimator] | None" = None
    upload_slots: int | None = None
    origin_one_at_a_time: bool = False
    preroll_segments: int = 1
    max_time: float = 3600.0
    fidelity: str = "exact"
    max_cohorts: int = 64
    fluid_dt: float | None = None

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )
        if self.fidelity not in FIDELITY_TIERS:
            raise ConfigurationError(
                f"fidelity must be one of {FIDELITY_TIERS}, "
                f"got {self.fidelity!r}"
            )
        if self.max_cohorts < 1:
            raise ConfigurationError(
                f"max_cohorts must be >= 1, got {self.max_cohorts}"
            )
        if self.fluid_dt is not None and self.fluid_dt <= 0:
            raise ConfigurationError(
                f"fluid_dt must be positive, got {self.fluid_dt}"
            )
        if self.n_leechers < 1:
            raise ConfigurationError(
                f"n_leechers must be >= 1, got {self.n_leechers}"
            )
        if self.n_seeders < 1:
            raise ConfigurationError(
                f"n_seeders must be >= 1, got {self.n_seeders}"
            )
        if self.peer_rtt < 0 or self.seeder_rtt < 0:
            raise ConfigurationError("latencies must be >= 0")
        if self.join_stagger < 0:
            raise ConfigurationError(
                f"join_stagger must be >= 0, got {self.join_stagger}"
            )
        if self.max_time <= 0:
            raise ConfigurationError(
                f"max_time must be positive, got {self.max_time}"
            )


@dataclass(frozen=True, slots=True)
class SwarmResult:
    """Outcome of one streaming session.

    Attributes:
        metrics: per-leecher streaming metrics, by peer name.
        seeder_bytes_uploaded: payload bytes served by the seeder.
        peer_bytes_uploaded: payload bytes served by leechers.
        control_messages: control-plane messages exchanged.
        departed: names of leechers that churned out.
        end_time: simulated time the session finished.
    """

    metrics: dict[str, StreamingMetrics]
    seeder_bytes_uploaded: float
    peer_bytes_uploaded: float
    control_messages: int
    departed: tuple[str, ...]
    end_time: float

    def finished_metrics(self) -> list[StreamingMetrics]:
        """Metrics of leechers that watched to the end."""
        return [m for m in self.metrics.values() if m.finished]

    @property
    def all_finished(self) -> bool:
        """Whether every non-departed leecher finished playback."""
        departed = set(self.departed)
        return all(
            m.finished
            for name, m in self.metrics.items()
            if name not in departed
        )

    def mean_stall_count(self) -> float:
        """Average stalls per finishing peer (paper Fig. 2/5 metric)."""
        finished = self.finished_metrics()
        if not finished:
            raise SwarmError("no leecher finished playback")
        return statistics.fmean(m.stall_count for m in finished)

    def mean_stall_duration(self) -> float:
        """Average total stall seconds per finishing peer (Fig. 3)."""
        finished = self.finished_metrics()
        if not finished:
            raise SwarmError("no leecher finished playback")
        return statistics.fmean(m.total_stall_duration for m in finished)

    def mean_startup_time(self) -> float:
        """Average startup seconds across peers that started (Fig. 4)."""
        started = [
            m.startup_time
            for m in self.metrics.values()
            if m.startup_time is not None
        ]
        if not started:
            raise SwarmError("no leecher started playback")
        return statistics.fmean(started)


class Swarm:
    """One fully-wired streaming session, ready to run.

    Args:
        splice: the spliced video to stream.
        config: session parameters.
        obs: optional observability context; when given, every layer
            (engine, TCP, peers, players) records into its tracer and
            metrics registry, and :meth:`run` finalizes histograms and
            publishes the engine profile on completion.
    """

    SEEDER_NAME = "seeder"

    def __init__(
        self,
        splice: SpliceResult,
        config: SwarmConfig,
        obs: Observability | None = None,
    ) -> None:
        self._splice = splice
        self._config = config
        self.obs = obs
        self.sim = Simulator(
            tracer=obs.tracer if obs is not None else None,
            profile=obs.profile if obs is not None else None,
        )
        self.network = FlowNetwork(
            self.sim,
            registry=obs.registry if obs is not None else None,
        )
        self.topology = StarTopology()
        loss = per_link_loss(config.path_loss)
        # A peer-to-peer path crosses four access-link traversals per
        # round trip (up, down, and back), so each link carries a
        # quarter of the configured RTT.
        hub_latency = config.peer_rtt / 4.0
        seeder_node = self.topology.add_node(
            self.SEEDER_NAME,
            (
                config.seeder_bandwidth
                if config.seeder_bandwidth is not None
                else config.bandwidth
            ),
            hub_latency,
            loss,
        )
        # Control messages to/from the seeder take the paper's 500 ms
        # round trip: the topology supplies half the peer RTT one-way,
        # the control plane adds the remainder.
        seeder_extra = max(
            0.0, (config.seeder_rtt - config.peer_rtt) / 2.0
        )

        def extra_latency(src: str, dst: str) -> float:
            if self.SEEDER_NAME in (src, dst):
                return seeder_extra
            return 0.0

        self.control = ControlPlane(
            self.sim, self.topology, extra_latency
        )
        self.tracker = Tracker()
        self.seeder = Seeder(
            self.SEEDER_NAME,
            seeder_node,
            self.sim,
            self.network,
            self.topology,
            self.control,
            splice,
            self.tracker,
            config.tcp_params,
            config.upload_slots,
            obs=obs,
        )
        seeder_bandwidth = (
            config.seeder_bandwidth
            if config.seeder_bandwidth is not None
            else config.bandwidth
        )
        self.extra_seeders: list[Seeder] = []
        for i in range(2, config.n_seeders + 1):
            name = f"seeder-{i}"
            node = self.topology.add_node(
                name, seeder_bandwidth, hub_latency, loss
            )
            self.extra_seeders.append(
                Seeder(
                    name,
                    node,
                    self.sim,
                    self.network,
                    self.topology,
                    self.control,
                    splice,
                    self.tracker,
                    config.tcp_params,
                    config.upload_slots,
                    obs=obs,
                )
            )
        master = random.Random(config.seed)
        churn_model = (
            ChurnModel(config.churn, random.Random(master.getrandbits(32)))
            if config.churn is not None
            else None
        )
        hint = (
            config.bandwidth_hint
            if config.bandwidth_hint is not None
            else config.bandwidth
        )
        self.leechers: list[Leecher] = []
        self._departed: list[str] = []
        for i in range(config.n_leechers):
            name = f"peer-{i + 1}"
            node = self.topology.add_node(
                name, config.bandwidth, hub_latency, loss
            )
            estimator = (
                config.estimator_factory()
                if config.estimator_factory is not None
                else None
            )
            leecher = Leecher(
                name,
                node,
                self.sim,
                self.network,
                self.topology,
                self.control,
                self.SEEDER_NAME,
                LeecherConfig(
                    policy=config.policy,
                    bandwidth_hint=hint,
                    estimator=estimator,
                    selector=config.selector,
                    cdn_sources=(
                        frozenset({self.SEEDER_NAME})
                        if config.origin_one_at_a_time
                        else frozenset()
                    ),
                    seed=master.getrandbits(32),
                    preroll_segments=config.preroll_segments,
                ),
                config.tcp_params,
                config.upload_slots,
                obs=obs,
            )
            self.leechers.append(leecher)
            join_at = i * config.join_stagger
            self.sim.schedule(join_at, leecher.start)
            if churn_model is not None:
                delay = churn_model.departure_delay()
                if delay is not None:
                    self.sim.schedule(
                        join_at + delay, self._depart, leecher
                    )

    @property
    def config(self) -> SwarmConfig:
        """This session's :class:`SwarmConfig`."""
        return self._config

    def _depart(self, leecher: Leecher) -> None:
        if leecher.alive:
            self._departed.append(leecher.name)
            leecher.leave()

    def set_peer_bandwidth(self, bandwidth: float) -> None:
        """Change every leecher's access bandwidth mid-run.

        The variable-bandwidth experiments call this from scheduled
        sim events; every fidelity tier exposes the same hook.
        """
        if bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        for leecher in self.leechers:
            self.topology.set_node_bandwidth(
                self.network, leecher.node, bandwidth
            )

    def _finalize_observability(self) -> None:
        """Close out the run's metrics: histograms, profile, totals."""
        assert self.obs is not None
        registry = self.obs.registry
        for histogram in registry.histograms().values():
            histogram.finalize(self.sim.now)
        if self.obs.profile is not None:
            self.obs.profile.publish(registry)
        registry.gauge("swarm.control_messages").set(
            self.control.messages_sent
        )
        registry.gauge("swarm.seeder_bytes_uploaded").set(
            self.seeder.bytes_uploaded
        )
        registry.gauge("swarm.peer_bytes_uploaded").set(
            sum(leecher.bytes_uploaded for leecher in self.leechers)
        )
        registry.gauge("swarm.end_time").set(self.sim.now)

    def run(self) -> SwarmResult:
        """Run the session to completion (or the safety cap).

        Returns:
            A :class:`SwarmResult` with every peer's metrics.
        """
        self.sim.run(until=self._config.max_time)
        if self.obs is not None:
            self._finalize_observability()
        return SwarmResult(
            metrics={
                leecher.name: leecher.metrics for leecher in self.leechers
            },
            seeder_bytes_uploaded=self.seeder.bytes_uploaded,
            peer_bytes_uploaded=sum(
                leecher.bytes_uploaded for leecher in self.leechers
            ),
            control_messages=self.control.messages_sent,
            departed=tuple(self._departed),
            end_time=self.sim.now,
        )


def build_swarm(
    splice: SpliceResult,
    config: SwarmConfig,
    obs: Observability | None = None,
) -> "Swarm":
    """Build the swarm backend :attr:`SwarmConfig.fidelity` selects.

    Every backend exposes the same session surface — ``run()`` →
    :class:`SwarmResult`, ``sim``, ``config``, ``obs``, and
    ``set_peer_bandwidth`` — so runners, sweeps and benchmarks hold a
    swarm without caring which engine is underneath.

    Args:
        splice: the spliced video to stream.
        config: session parameters (``fidelity`` picks the engine).
        obs: optional observability context.

    Returns:
        A ready-to-run session object.
    """
    if config.fidelity == "exact":
        return Swarm(splice, config, obs=obs)
    from .scale import CohortSwarm, FluidSwarm

    if config.fidelity == "cohort":
        return CohortSwarm(splice, config, obs=obs)
    return FluidSwarm(splice, config, obs=obs)
