"""The leecher: downloads, plays, and re-serves the video.

Implements the paper's client loop: fetch the manifest from the seeder,
keep a *download pool* of simultaneous segment transfers sized by the
configured policy (Eq. 1's adaptive pooling or a fixed size), pick
segments sequentially (95 % of P2P TV viewing is sequential), prefer
fellow peers over the seeder to spread upload load, and start playback
the moment the first segment lands.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Protocol

from ..core.policy import DownloadPolicy
from ..errors import ConfigurationError
from ..net.engine import EventHandle, Simulator
from ..net.flownet import FlowNetwork
from ..net.tcp import TcpParams
from ..net.topology import Node, StarTopology
from ..obs.context import Observability
from ..obs.events import (
    ManifestReceived,
    PeerDeparted,
    PeerJoined,
    PieceReceived,
    PoolResized,
    RequestTimedOut,
    SegmentRequested,
)
from ..player.metrics import StreamingMetrics
from ..player.player import Player, PlayerState
from .messages import (
    Bitfield,
    Cancel,
    Handshake,
    Have,
    Manifest,
    ManifestRequest,
    Message,
    Request,
    RequestRejected,
)
from .peer import ControlPlane, PeerBase
from .selection import PieceSelector, SequentialSelector, TracingSelector


class BandwidthEstimator(Protocol):
    """Interface for live bandwidth estimation (see :mod:`repro.bwest`)."""

    def record(self, time: float, num_bytes: float) -> None:
        """Record ``num_bytes`` arriving at ``time``."""
        ...

    def estimate(self, now: float) -> float | None:
        """Current estimate in bytes/second, or None if undecided."""
        ...


@dataclass(frozen=True, slots=True)
class LeecherConfig:
    """Per-leecher behaviour knobs.

    Attributes:
        policy: download-pool sizing policy (adaptive or fixed).
        bandwidth_hint: the ``B`` of Eq. 1 in bytes/second.  The paper
            "simulated the bandwidth on GENI", i.e. the experiment's
            configured bandwidth is known to the peer; a live estimator
            can override this.
        estimator: optional live estimator; once it produces a value it
            replaces the hint.
        selector: piece-selection strategy; the paper's client is
            strictly sequential (the default).
        prefer_peers_over_seeder: request from fellow leechers when
            they hold the segment, falling back to the seeder.
        cdn_sources: names of CDN origins.  Per the paper's Section IV,
            a peer keeps at most **one** request in flight to a CDN at
            a time ("peers can download one segment at a time" from the
            CDN), relying on segment sizing rather than parallelism.
        seed: per-leecher RNG seed for tie-breaking among sources.
        batch_mode: refill discipline.  ``True`` reproduces the paper's
            client: fill the pool with ``k`` segments, wait until *all*
            of them arrive, then fill the next pool — Eq. 1 is derived
            exactly for this discipline ("all the k segments have to be
            downloaded by T seconds").  ``False`` uses a sliding
            window: top the pool back up as each segment lands.
        busy_backoff: seconds to avoid a source after it choked us.
        request_timeout_base: floor of the request timeout, seconds.
        request_timeout_factor: the timeout also scales with the
            segment's expected transfer time at ``bandwidth_hint``;
            after ``base + factor * size / hint`` seconds with no data,
            the leecher cancels and re-requests from another holder.
        manifest_retry_interval: seconds between manifest-request
            retries while no manifest has arrived.
        preroll_segments: contiguous segments buffered before playback
            starts (paper: 1).
    """

    policy: DownloadPolicy
    bandwidth_hint: float
    estimator: BandwidthEstimator | None = None
    selector: PieceSelector = field(default_factory=SequentialSelector)
    prefer_peers_over_seeder: bool = True
    cdn_sources: frozenset[str] = frozenset()
    seed: int = 0
    batch_mode: bool = True
    request_timeout_base: float = 4.0
    request_timeout_factor: float = 3.0
    busy_backoff: float = 2.0
    manifest_retry_interval: float = 5.0
    preroll_segments: int = 1

    def __post_init__(self) -> None:
        if self.bandwidth_hint <= 0:
            raise ConfigurationError(
                f"bandwidth_hint must be positive, got {self.bandwidth_hint}"
            )
        if self.request_timeout_base <= 0:
            raise ConfigurationError(
                "request_timeout_base must be positive, got "
                f"{self.request_timeout_base}"
            )
        if self.request_timeout_factor <= 0:
            raise ConfigurationError(
                "request_timeout_factor must be positive, got "
                f"{self.request_timeout_factor}"
            )
        if self.manifest_retry_interval <= 0:
            raise ConfigurationError(
                "manifest_retry_interval must be positive, got "
                f"{self.manifest_retry_interval}"
            )

    def request_timeout(self, size: float) -> float:
        """Timeout for a request of a ``size``-byte segment, seconds."""
        return (
            self.request_timeout_base
            + self.request_timeout_factor * size / self.bandwidth_hint
        )


class Leecher(PeerBase):
    """A downloading/playing/re-serving peer.

    Args:
        name: peer name.
        node: the peer's topology node.
        sim / network / topology / control: simulation plumbing.
        seeder_name: whom to ask for the manifest.
        config: behaviour knobs.
        tcp_params: TCP model tunables.
    """

    def __init__(
        self,
        name: str,
        node: Node,
        sim: Simulator,
        network: FlowNetwork,
        topology: StarTopology,
        control: ControlPlane,
        seeder_name: str,
        config: LeecherConfig,
        tcp_params: TcpParams | None = None,
        upload_slots: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        super().__init__(
            name, node, sim, network, topology, control, tcp_params,
            upload_slots, obs,
        )
        self._seeder_name = seeder_name
        self._config = config
        self._rng = random.Random(config.seed)
        self._selector: PieceSelector = (
            TracingSelector(config.selector, self._tracer, name, sim)
            if self._tracer.enabled
            else config.selector
        )
        self._last_pool_size: int | None = None
        self.metrics = StreamingMetrics(session_start=sim.now)
        self.manifest: Manifest | None = None
        self.player: Player | None = None
        self._availability: dict[str, set[int]] = {}
        self._known_peers: set[str] = set()
        self._inflight: dict[int, str] = {}  # segment index -> source
        self._request_times: dict[int, float] = {}
        self._timeout_events: dict[int, EventHandle] = {}
        self._retry_counts: dict[int, int] = {}
        self._source_backoff: dict[str, float] = {}
        self._mean_segment_size = 0.0
        self._started = False
        control.register(self)

    # -- lifecycle -----------------------------------------------------

    @property
    def config(self) -> LeecherConfig:
        """This leecher's configuration."""
        return self._config

    @property
    def inflight(self) -> dict[int, str]:
        """Snapshot of in-flight requests (segment -> source)."""
        return dict(self._inflight)

    def start(self) -> None:
        """Join the swarm: date the session and fetch the manifest."""
        if self._started:
            return
        self._started = True
        self.metrics.session_start = self._sim.now
        if self._tracer.enabled:
            self._tracer.emit(
                PeerJoined(time=self._sim.now, peer=self.name)
            )
        if self._metrics is not None:
            self._metrics.counter("swarm.joins").inc()
        self._request_manifest()

    def _request_manifest(self) -> None:
        """Send (or re-send) the manifest request until one arrives."""
        if not self.alive or self.manifest is not None:
            return
        self.send(self._seeder_name, ManifestRequest(peer_id=self.name))
        self._sim.schedule(
            self._config.manifest_retry_interval, self._request_manifest
        )

    def leave(self) -> None:
        cancelled = len(self._inflight)
        for index in list(self._inflight):
            self._drop_inflight(index)
            self.metrics.downloads_cancelled += 1
        if self._tracer.enabled:
            self._tracer.emit(
                PeerDeparted(
                    time=self._sim.now,
                    peer=self.name,
                    downloads_cancelled=cancelled,
                )
            )
        if self._metrics is not None:
            self._metrics.counter("swarm.departures").inc()
        super().leave()

    def _drop_inflight(self, index: int) -> str | None:
        """Forget an in-flight request; returns its source, if any."""
        source = self._inflight.pop(index, None)
        self._request_times.pop(index, None)
        self._retry_counts.pop(index, None)
        timer = self._timeout_events.pop(index, None)
        if timer is not None:
            timer.cancel()
        return source

    # -- message handling ------------------------------------------------

    def handle_message(self, src_name: str, message: Message) -> None:
        if isinstance(message, Manifest):
            self._handle_manifest(message)
        elif isinstance(message, Bitfield):
            self._availability[message.peer_id] = set(message.indices)
            self._known_peers.add(message.peer_id)
            self._refill()
        elif isinstance(message, Have):
            self._availability.setdefault(message.peer_id, set()).add(
                message.index
            )
            self._known_peers.add(message.peer_id)
            self._refill()
        elif isinstance(message, RequestRejected):
            if message.busy:
                self._source_backoff[src_name] = (
                    self._sim.now + self._config.busy_backoff
                )
            else:
                # The peer does not actually hold the segment; stop
                # believing its stale advertisement.
                held = self._availability.get(src_name)
                if held is not None:
                    held.discard(message.index)
            if self._inflight.get(message.index) == src_name:
                self._drop_inflight(message.index)
                self._refill()
        elif isinstance(message, Handshake):
            self._known_peers.add(src_name)
            super().handle_message(src_name, message)
        else:
            super().handle_message(src_name, message)

    def _handle_manifest(self, manifest: Manifest) -> None:
        if self.manifest is not None:
            return  # duplicate
        self.manifest = manifest
        for index, size in enumerate(manifest.segment_sizes):
            self.segment_sizes[index] = size
        self._mean_segment_size = sum(manifest.segment_sizes) / max(
            1, manifest.segment_count
        )
        self.player = Player(
            self._sim,
            list(manifest.segment_durations),
            on_state_change=self._on_player_state,
            metrics=self.metrics,
            preroll_segments=self._config.preroll_segments,
            tracer=self._tracer,
            peer=self.name,
            segment_sizes=self.segment_sizes,
        )
        if self._tracer.enabled:
            self._tracer.emit(
                ManifestReceived(
                    time=self._sim.now,
                    peer=self.name,
                    segments=manifest.segment_count,
                    known_peers=len(manifest.peers),
                )
            )
        all_indices = set(range(manifest.segment_count))
        self._availability[self._seeder_name] = all_indices
        self._known_peers.add(self._seeder_name)
        for peer_name in manifest.peers:
            if peer_name != self.name:
                self._known_peers.add(peer_name)
                self.send(
                    peer_name,
                    Handshake(
                        peer_id=self.name, info_hash=manifest.info_hash
                    ),
                )
        self._refill()

    # -- downloading -----------------------------------------------------

    def on_segment_received(
        self, src_name: str, index: int, size: int
    ) -> None:
        if not self.alive or self.player is None:
            return
        requested_at = self._request_times.get(index)
        expected_source = self._drop_inflight(index)
        if index in self.owned:
            return  # stale duplicate after a timeout re-request
        if expected_source is not None and expected_source != src_name:
            # A re-requested segment arrived from the original source
            # first; withdraw the duplicate request.
            self.send(expected_source, Cancel(self.name, index))
        self.owned.add(index)
        self.metrics.bytes_downloaded += size
        self.metrics.segments_downloaded += 1
        if self._tracer.enabled:
            self._tracer.emit(
                PieceReceived(
                    time=self._sim.now,
                    peer=self.name,
                    segment=index,
                    source=src_name,
                    size=size,
                    wait=(
                        self._sim.now - requested_at
                        if requested_at is not None
                        else -1.0
                    ),
                )
            )
        if self._metrics is not None:
            self._metrics.counter("p2p.segments_received").inc()
            self._metrics.counter("p2p.bytes_downloaded").inc(size)
        estimator = self._config.estimator
        if estimator is not None and requested_at is not None:
            estimator.record(self._sim.now, size)
        self.player.segment_available(index)
        for peer_name in sorted(self._known_peers):
            if peer_name != self.name:
                self.send(peer_name, Have(peer_id=self.name, index=index))
        self._refill()

    def on_peer_left(self, peer_name: str) -> None:
        self._availability.pop(peer_name, None)
        self._known_peers.discard(peer_name)
        dropped = [
            index
            for index, source in self._inflight.items()
            if source == peer_name
        ]
        for index in dropped:
            self._drop_inflight(index)
            self.metrics.downloads_cancelled += 1
        if dropped:
            self._refill()

    def bandwidth_estimate(self) -> float:
        """Current ``B`` for Eq. 1: live estimate or configured hint."""
        estimator = self._config.estimator
        if estimator is not None:
            estimate = estimator.estimate(self._sim.now)
            if estimate is not None and estimate > 0:
                return estimate
        return self._config.bandwidth_hint

    def desired_pool_size(self) -> int:
        """The policy's current pool size (diagnostic helper)."""
        assert self.player is not None
        return self._config.policy.pool_size(
            self.bandwidth_estimate(),
            self.player.buffered_playtime(),
            self._mean_segment_size,
        )

    def _on_player_state(
        self, old: PlayerState, new: PlayerState
    ) -> None:
        if self._metrics is not None:
            if new is PlayerState.STALLED:
                self._metrics.counter("player.stalls").inc()
            elif old is PlayerState.STALLED:
                # The just-completed stall is the last one recorded.
                self._metrics.counter("player.stall_seconds").inc(
                    self.metrics.stalls[-1].duration
                )
            if old is PlayerState.WAITING and new is PlayerState.PLAYING:
                self._metrics.counter("player.startups").inc()
            if new is PlayerState.FINISHED:
                self._metrics.counter("player.finished").inc()
        if new is PlayerState.STALLED:
            self._escalate_stalled_request()
        if new in (PlayerState.PLAYING, PlayerState.STALLED):
            self._refill()

    def _escalate_stalled_request(self) -> None:
        """Upgrade the request blocking playback to urgent priority."""
        assert self.player is not None
        needed = self.player.next_needed
        if needed is None:
            return
        source = self._inflight.get(needed)
        if source is not None:
            self.send(
                source,
                Request(peer_id=self.name, index=needed, urgent=True),
            )

    def _refill(self) -> None:
        """Top the download pool up to the policy's current size."""
        if not self.alive or self.manifest is None or self.player is None:
            return
        buffer = self.player.buffer
        if buffer.complete:
            return
        if self._config.batch_mode and self._inflight:
            return  # the paper's client: wait out the whole batch
        pool = self.desired_pool_size()
        if pool != self._last_pool_size:
            self._last_pool_size = pool
            if self._tracer.enabled:
                self._tracer.emit(
                    PoolResized(
                        time=self._sim.now,
                        peer=self.name,
                        size=pool,
                        buffered_playtime=self.player.buffered_playtime(),
                        bandwidth=self.bandwidth_estimate(),
                    )
                )
            if self._metrics is not None:
                self._metrics.histogram("p2p.pool_size").observe(
                    self._sim.now, pool, key=self.name
                )
        if len(self._inflight) >= pool:
            return
        candidates = self._selector.order(
            buffer.missing(),
            self.player.next_needed,
            self._availability,
            self._rng,
        )
        for index in candidates:
            if len(self._inflight) >= pool:
                break
            if index in self._inflight:
                continue
            source = self._choose_source(index)
            if source is None:
                continue
            self._issue_request(index, source)

    def _is_urgent(self, index: int) -> bool:
        """Whether fetching ``index`` is playback-critical.

        True when the player is waiting/stalled on exactly this
        segment, or playing with less buffer left than this segment's
        own duration — i.e. a prefetch would not arrive in time anyway.
        """
        player = self.player
        if player is None:
            return index == 0
        if player.next_needed != index:
            return False
        if player.state is not PlayerState.PLAYING:
            return True
        return player.buffered_playtime() <= player.buffer.duration_of(index)

    def _issue_request(self, index: int, source: str) -> None:
        """Send a request and arm its timeout."""
        self._inflight[index] = source
        self._request_times[index] = self._sim.now
        self._arm_timeout(index, source)
        urgent = self._is_urgent(index)
        if self._tracer.enabled:
            self._tracer.emit(
                SegmentRequested(
                    time=self._sim.now,
                    peer=self.name,
                    segment=index,
                    source=source,
                    urgent=urgent,
                    expected_size=float(
                        self.segment_sizes.get(index, -1.0)
                    ),
                )
            )
        if self._metrics is not None:
            self._metrics.counter("p2p.requests_sent").inc()
        self.send(
            source,
            Request(
                peer_id=self.name,
                index=index,
                urgent=urgent,
            ),
        )

    def _arm_timeout(self, index: int, source: str) -> None:
        retries = self._retry_counts.get(index, 0)
        timeout = self._config.request_timeout(
            self.segment_sizes[index]
        ) * (2.0**retries)
        self._timeout_events[index] = self._sim.schedule(
            timeout, self._on_request_timeout, index, source
        )

    def _on_request_timeout(self, index: int, source: str) -> None:
        """A request has sat unanswered too long; maybe switch source.

        Switching only makes sense when no data is flowing yet — the
        request is still queued behind the source's upload slots (or
        the source is gone).  An *active* transfer is left alone:
        cancelling flowing data to start over elsewhere only wastes
        work.
        """
        self._timeout_events.pop(index, None)
        if not self.alive or self._inflight.get(index) != source:
            return
        source_peer = self._control.peer(source)
        if source_peer is not None and source_peer.alive:
            status = source_peer.upload_status(self.name, index)
            if status == "active":
                self._arm_timeout(index, source)
                return
        alternative = self._choose_source(index, exclude=source)
        if alternative is None:
            # Nobody else holds it; keep waiting on the same source.
            self._arm_timeout(index, source)
            return
        self.send(source, Cancel(self.name, index))
        self.metrics.requests_retried += 1
        self._retry_counts[index] = self._retry_counts.get(index, 0) + 1
        self._inflight[index] = alternative
        self._request_times[index] = self._sim.now
        self._arm_timeout(index, alternative)
        urgent = self._is_urgent(index)
        if self._tracer.enabled:
            self._tracer.emit(
                RequestTimedOut(
                    time=self._sim.now,
                    peer=self.name,
                    segment=index,
                    source=source,
                    retry_source=alternative,
                )
            )
            self._tracer.emit(
                SegmentRequested(
                    time=self._sim.now,
                    peer=self.name,
                    segment=index,
                    source=alternative,
                    urgent=urgent,
                    expected_size=float(
                        self.segment_sizes.get(index, -1.0)
                    ),
                )
            )
        if self._metrics is not None:
            self._metrics.counter("p2p.requests_retried").inc()
            self._metrics.counter("p2p.requests_sent").inc()
        self.send(
            alternative,
            Request(
                peer_id=self.name,
                index=index,
                urgent=urgent,
            ),
        )

    def _choose_source(
        self, index: int, exclude: str | None = None
    ) -> str | None:
        """Pick the holder to request ``index`` from.

        Prefers fellow leechers (offloading the seeder, as BitTorrent's
        tit-for-tat naturally does), balancing by the number of our own
        in-flight requests per source, breaking ties randomly.

        Args:
            index: the segment to source.
            exclude: optional holder to avoid (timeout re-requests).
        """
        busy_cdns = {
            source
            for source in self._inflight.values()
            if source in self._config.cdn_sources
        }
        holders = [
            peer_name
            for peer_name, indices in self._availability.items()
            if index in indices
            and peer_name != self.name
            and peer_name != exclude
            and peer_name not in busy_cdns
        ]
        if not holders:
            return None
        now = self._sim.now
        not_backed_off = [
            name
            for name in holders
            if self._source_backoff.get(name, 0.0) <= now
        ]
        if not_backed_off:
            holders = not_backed_off
        peers = [h for h in holders if h != self._seeder_name]
        pool = (
            peers
            if (self._config.prefer_peers_over_seeder and peers)
            else holders
        )
        load: dict[str, int] = {}
        for source in self._inflight.values():
            load[source] = load.get(source, 0) + 1
        lightest = min(load.get(name, 0) for name in pool)
        candidates = [
            name for name in pool if load.get(name, 0) == lightest
        ]
        return self._rng.choice(candidates)
