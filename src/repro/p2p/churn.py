"""Peer-departure (churn) model.

"In P2P video streaming, peers can leave the swarm anytime."  The model
samples, for a configurable fraction of leechers, an exponential
lifetime after which the peer departs — cancelling its uploads and
downloads and broadcasting a goodbye.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class ChurnConfig:
    """Churn parameters.

    Attributes:
        mean_lifetime: mean seconds a churning peer stays, from join.
        fraction: fraction of leechers that will churn (0 disables).
        min_lifetime: floor on sampled lifetimes, seconds.
    """

    mean_lifetime: float = 60.0
    fraction: float = 0.0
    min_lifetime: float = 5.0

    def __post_init__(self) -> None:
        if self.mean_lifetime <= 0:
            raise ConfigurationError(
                f"mean_lifetime must be positive, got {self.mean_lifetime}"
            )
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"fraction must be in [0, 1], got {self.fraction}"
            )
        if self.min_lifetime < 0:
            raise ConfigurationError(
                f"min_lifetime must be >= 0, got {self.min_lifetime}"
            )


class ChurnModel:
    """Samples departure times for a swarm's leechers.

    Args:
        config: churn parameters.
        rng: seeded random source.
    """

    def __init__(self, config: ChurnConfig, rng: random.Random) -> None:
        self._config = config
        self._rng = rng

    @property
    def config(self) -> ChurnConfig:
        """The model's parameters."""
        return self._config

    def departure_delay(self) -> float | None:
        """Seconds after join at which one leecher departs.

        Returns None when this leecher stays for the whole session.
        """
        if self._rng.random() >= self._config.fraction:
            return None
        lifetime = self._rng.expovariate(1.0 / self._config.mean_lifetime)
        return max(self._config.min_lifetime, lifetime)
