"""Swarm membership tracking.

The paper's seeder doubles as the rendezvous point: a joining peer
"contacts the seeder and gets different information about the video and
the swarm".  The :class:`Tracker` is that membership directory; the
seeder embeds its contents in every :class:`~repro.p2p.messages.Manifest`.
"""

from __future__ import annotations

import random

from ..errors import SwarmError


class Tracker:
    """Directory of peers currently in the swarm."""

    def __init__(self) -> None:
        self._peers: dict[str, None] = {}  # insertion-ordered set

    def __len__(self) -> int:
        return len(self._peers)

    def __contains__(self, peer_id: str) -> bool:
        return peer_id in self._peers

    @property
    def peer_ids(self) -> list[str]:
        """All registered peer ids in join order."""
        return list(self._peers)

    def register(self, peer_id: str) -> None:
        """Add a peer to the swarm.

        Raises:
            SwarmError: if the peer is already registered.
        """
        if peer_id in self._peers:
            raise SwarmError(f"peer {peer_id!r} already registered")
        self._peers[peer_id] = None

    def unregister(self, peer_id: str) -> None:
        """Remove a departed peer (idempotent)."""
        self._peers.pop(peer_id, None)

    def peers_for(self, peer_id: str, limit: int | None = None) -> list[str]:
        """Peer ids to hand to ``peer_id`` (everyone but itself).

        Args:
            peer_id: the requesting peer (excluded from the result).
            limit: optional maximum number of peers returned (oldest
                first, like a tracker returning a stable window).
        """
        others = [p for p in self._peers if p != peer_id]
        if limit is not None:
            others = others[:limit]
        return others

    def sample(
        self, peer_id: str, count: int, rng: random.Random
    ) -> list[str]:
        """A random subset of other peers (for partial-view swarms)."""
        others = [p for p in self._peers if p != peer_id]
        if count >= len(others):
            return others
        return rng.sample(others, count)
