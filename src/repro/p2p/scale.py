"""Vectorized cohort / fluid swarm backends (the scale tiers).

The exact engine (:class:`~repro.p2p.swarm.Swarm`) simulates every
peer, every control message, and every TCP transfer; per-event work is
cheap (PR 4) but per-*peer* work is not — a 10³-peer session schedules
tens of millions of events (the Have fan-out alone is O(N²·S)).  This
module trades per-peer fidelity for scale: peer state lives in
struct-of-arrays (numpy) and statistically-identical peers advance
together, so a session's cost depends on the number of *cohorts*
(bounded by :attr:`~repro.p2p.swarm.SwarmConfig.max_cohorts`), not the
number of peers.

Two tiers, selected by ``SwarmConfig.fidelity``:

* ``cohort`` — peers are batched into cohorts by join epoch (same
  bandwidth class and policy throughout a ``SwarmConfig``).  Each
  cohort runs the paper's batch-mode client loop exactly — Eq. 1 pool
  sizing, sequential selection, whole-batch refills — but transfers
  are fluid flows shared between cohorts by a deterministic
  proportional-filling allocator instead of per-connection flow-network
  events.  Segment availability is the cohort prefix vector; pool and
  source decisions are vectorized masks; ties break by cohort index
  (stable, reproducible at any granularity).  Event-driven on the
  existing :class:`~repro.net.engine.Simulator`: one event per state
  change (batch completion, handshake expiry, join, departure).
* ``fluid`` — the mean-field tier for 10⁵–10⁶-peer populations.
  Discrete batches are replaced by per-cohort download-rate ODEs
  (demand capped by Eq. 1's pool times the per-connection Mathis
  ceiling, supply shared by the same allocator) integrated with a
  fixed step on the sim clock.  Stall boundaries are quantized to the
  step; accuracy envelopes are documented in docs/SCALING.md.

Both tiers model the transport first-order effects that decide the
paper's figures — the per-connection Mathis ceiling
``MSS/(RTT·sqrt(2p/3))`` (why pooling matters), the lossy handshake
delay, and request latency — and deliberately drop slow-start ramps,
upload-slot queueing, request timeouts, and per-peer tie-breaking
noise.  They produce the same :class:`~repro.p2p.swarm.SwarmResult` /
:class:`~repro.player.metrics.StreamingMetrics` surface as the exact
engine, so runners, sweeps, benchmarks, and ``repro.obs`` aggregation
work unchanged.
"""

from __future__ import annotations

from ..core.segments import SpliceResult
from ..errors import ConfigurationError
from ..net.engine import Simulator
from ..obs.cohorts import CohortSummary, publish_cohort_aggregates
from ..obs.context import Observability
from ..obs.events import (
    PeerJoined,
    PlaybackFinished,
    PlaybackStarted,
    StallEnded,
    StallStarted,
)
from ..player.metrics import StallEvent, StreamingMetrics
from .selection import SequentialSelector

try:  # gated: the exact engine must work without numpy installed
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is a baked-in dep
    _np = None

#: Allocator convergence rounds.  Proportional filling redistributes
#: supplier leftovers geometrically; eight rounds put the residual far
#: below every tolerance documented in docs/SCALING.md.
_FILL_ROUNDS = 8

#: Bytes below which an in-flight batch counts as complete.
_EPS_BYTES = 1e-3

#: Seconds below which a pending phase change counts as due.
_EPS_TIME = 1e-9

# Cohort phases (int8 array values).
_PRE = 0  # joined, manifest not yet received
_LATENCY = 1  # batch requested, request/handshake latency draining
_DATA = 2  # batch bytes flowing
_DONE = 3  # buffer complete (or cohort emptied by churn)


def require_numpy() -> None:
    """Raise if the vectorized backends' numpy dependency is absent."""
    if _np is None:
        raise ConfigurationError(
            "fidelity 'cohort'/'fluid' requires numpy; install it or "
            "use fidelity='exact'"
        )


class _VectorSwarm:
    """State and machinery shared by the cohort and fluid tiers.

    Subclasses drive :meth:`_on_trigger` differently (event-driven vs
    fixed-step) but share cohort construction, the rate allocator,
    playback bookkeeping, and result materialization.
    """

    def __init__(
        self,
        splice: SpliceResult,
        config,
        obs: Observability | None = None,
    ) -> None:
        require_numpy()
        self._validate_support(config)
        self._splice = splice
        self._config = config
        self.obs = obs
        self.sim = Simulator(
            tracer=obs.tracer if obs is not None else None,
            profile=obs.profile if obs is not None else None,
        )
        np = _np
        self._rng = np.random.default_rng(config.seed)

        # -- segment geometry ------------------------------------------
        sizes = np.asarray(splice.segment_sizes(), dtype=np.float64)
        durations = np.asarray(
            splice.segment_durations(), dtype=np.float64
        )
        self._n_segments = len(sizes)
        # Prefix sums with a leading zero: bytes/seconds of the first
        # ``k`` segments are ``self._wsum[k]`` / ``self._dsum[k]``.
        self._wsum = np.concatenate(([0.0], np.cumsum(sizes)))
        self._dsum = np.concatenate(([0.0], np.cumsum(durations)))
        self._mean_size = float(sizes.mean())

        # -- transport first-order constants ---------------------------
        params = config.tcp_params
        rtt = max(config.peer_rtt, 1e-4)
        self._conn_cap = params.mathis_cap(rtt, config.path_loss)
        if self._conn_cap is None:
            self._conn_cap = float("inf")
        # Per-batch fixed latency: one-way request plus the lossy
        # handshake (every segment download opens a fresh connection).
        self._batch_latency = config.peer_rtt / 2.0 + (
            params.handshake_delay(rtt, config.path_loss)
        )

        # -- cohorts ---------------------------------------------------
        n = config.n_leechers
        count = min(config.max_cohorts, n)
        bounds = np.linspace(0, n, count + 1).astype(np.int64)
        self._lo = bounds[:-1]
        self._hi = bounds[1:]
        self._size = (self._hi - self._lo).astype(np.float64)
        self._count = count
        indices = np.arange(n, dtype=np.float64)
        join_by_peer = indices * config.join_stagger
        # Cohort join epoch: the mean join time of its members.
        self._join = np.array(
            [
                join_by_peer[self._lo[c]: self._hi[c]].mean()
                for c in range(count)
            ]
        )
        # Manifest exchange costs the paper's control round trip to
        # the seeder; availability knowledge is instantaneous after
        # that (the Have fan-out is not simulated).
        self._manifest_at = self._join + config.seeder_rtt

        # -- mutable cohort state --------------------------------------
        self._phase = np.full(count, _PRE, dtype=np.int8)
        self._alive = self._size.copy()
        self._prefix = np.zeros(count, dtype=np.int64)
        self._batch_k = np.zeros(count, dtype=np.int64)
        self._latency_left = np.zeros(count)
        self._bytes_left = np.zeros(count)  # per-peer bytes of batch
        self._bytes_down = np.zeros(count)  # per-peer lifetime bytes
        self._up_bytes = np.zeros(count)  # cohort-total upload bytes
        self._rate = np.zeros(count)  # cohort-total download rate
        self._seeder_rate = np.zeros(count)
        self._sup_rate = np.zeros(count)  # cohort-total upload rate
        self._seeder_bytes = 0.0
        self._bw_down = np.full(count, float(config.bandwidth))
        self._bw_up = np.full(count, float(config.bandwidth))
        seeder_bw = (
            config.seeder_bandwidth
            if config.seeder_bandwidth is not None
            else config.bandwidth
        )
        self._seeder_cap = float(seeder_bw) * config.n_seeders
        hint = (
            config.bandwidth_hint
            if config.bandwidth_hint is not None
            else config.bandwidth
        )
        self._hint = float(hint)

        # -- playback state --------------------------------------------
        nan = float("nan")
        self._pb_start = np.full(count, nan)
        self._play_end = np.full(count, nan)
        self._pb_end = np.full(count, nan)
        self._stall_open = np.zeros(count, dtype=bool)
        self._stall_start = np.full(count, nan)
        self._stalls: list[list[StallEvent]] = [
            [] for _ in range(count)
        ]
        self._preroll = min(
            config.preroll_segments, self._n_segments
        )

        # -- churn -----------------------------------------------------
        # Departures are assigned to the highest peer indices of each
        # cohort first (deterministic naming).  Lifetimes follow the
        # same law as :class:`~repro.p2p.churn.ChurnModel` but are
        # sampled in bulk from one seeded numpy Generator — a per-peer
        # python loop would dominate setup at 10⁵⁺ peers.
        self._departures: list[list[tuple[float, int]]] = [
            [] for _ in range(count)
        ]
        self._departed: list[tuple[float, int, dict]] = []
        if config.churn is not None and config.churn.fraction > 0.0:
            churn = config.churn
            leaves = self._rng.random(n) < churn.fraction
            lifetimes = np.maximum(
                churn.min_lifetime,
                self._rng.exponential(churn.mean_lifetime, size=n),
            )
            depart_at = join_by_peer + lifetimes
            for c in range(count):
                deps = [
                    (float(depart_at[peer]), peer)
                    for peer in range(int(self._lo[c]), int(self._hi[c]))
                    if leaves[peer]
                ]
                deps.sort()
                self._departures[c] = deps

        self._last_t = 0.0
        self._pending = None
        self._ran = False

    # -- configuration gates -------------------------------------------

    @staticmethod
    def _validate_support(config) -> None:
        if not isinstance(config.selector, SequentialSelector):
            raise ConfigurationError(
                "vectorized fidelity tiers model the paper's "
                "sequential selection only; use fidelity='exact' for "
                f"selector {type(config.selector).__name__}"
            )
        if config.estimator_factory is not None:
            raise ConfigurationError(
                "vectorized fidelity tiers use the configured "
                "bandwidth hint; per-peer live estimators need "
                "fidelity='exact'"
            )

    @property
    def config(self):
        """This session's :class:`~repro.p2p.swarm.SwarmConfig`."""
        return self._config

    # -- shared dynamics -----------------------------------------------

    def _buffered_playtime(self, c: int, now: float) -> float:
        """Eq. 1's ``T`` for cohort ``c`` at ``now``."""
        if _np.isnan(self._pb_start[c]) or self._stall_open[c]:
            return 0.0
        return max(0.0, float(self._play_end[c]) - now)

    def _pool_size(self, c: int, now: float) -> int:
        size = self._config.policy.pool_size(
            self._hint,
            self._buffered_playtime(c, now),
            self._mean_size,
        )
        return max(1, min(size, self._n_segments - int(self._prefix[c])))

    def _demand_cap(self, k: _np.ndarray, seeder_fed: _np.ndarray):
        """Per-peer download-rate ceiling for pool size ``k``.

        The pool's connections share the access downlink but each is
        individually bounded by the Mathis ceiling; a CDN-disciplined
        origin (``origin_one_at_a_time``) serves one connection.
        """
        np = _np
        conns = np.maximum(k.astype(np.float64), 1.0)
        if self._config.origin_one_at_a_time:
            conns = np.where(seeder_fed, 1.0, conns)
        if self._conn_cap == float("inf"):
            return self._bw_down.copy()
        return np.minimum(self._bw_down, conns * self._conn_cap)

    def _allocate(self, demander, k, reach) -> None:
        """Share upload supply among demanding cohorts.

        ``reach[c, j]`` says cohort ``j`` holds what cohort ``c`` is
        downloading.  Cohorts some peer can serve split peer uplink
        capacity by deterministic proportional filling (every supplier
        divides its residual capacity among unsatisfied eligible
        downloaders in proportion to residual demand, for
        :data:`_FILL_ROUNDS` rounds).  Cohorts only the seeder can
        serve drain its capacity in strict join order — the continuous
        analogue of the exact engine's discrete completion ordering,
        and the tie-break that keeps same-prefix cohorts from locking
        step (equal proportional shares would advance them in unison
        forever, so none could ever pull ahead and become a supplier).

        Results land in ``_rate`` / ``_seeder_rate`` / ``_sup_rate``.
        """
        np = _np
        count = self._count
        self._rate[:] = 0.0
        self._seeder_rate[:] = 0.0
        self._sup_rate[:] = 0.0
        if not demander.any():
            return
        has_peer = reach.any(axis=1)
        # The exact client prefers peers: the seeder only serves
        # cohorts no peer cohort can reach.
        seeder_fed = demander & ~has_peer
        peer_fed = demander & has_peer
        cap_pp = self._demand_cap(k, seeder_fed)
        cap_left = self._seeder_cap
        for c in np.flatnonzero(seeder_fed):
            got = min(float(self._alive[c] * cap_pp[c]), cap_left)
            self._rate[c] = got
            self._seeder_rate[c] = got
            cap_left -= got
            if cap_left <= _EPS_BYTES:
                break
        if not peer_fed.any():
            return
        res_d = np.where(peer_fed, self._alive * cap_pp, 0.0)
        res_s = self._alive * self._bw_up
        taken = np.zeros((count, count))
        for _ in range(_FILL_ROUNDS):
            open_cols = res_s > _EPS_BYTES
            active = (res_d > _EPS_BYTES) & (
                reach & open_cols[None, :]
            ).any(axis=1)
            if not active.any():
                break
            weight = reach * (res_d * active)[:, None]
            col = weight.sum(axis=0)
            col[col <= 0.0] = np.inf
            offer = (weight / col) * res_s[None, :]
            give = offer.sum(axis=1)
            take = np.minimum(res_d, give)
            scale = np.divide(
                take,
                give,
                out=np.zeros_like(give),
                where=give > 0.0,
            )
            actual = offer * scale[:, None]
            taken += actual
            res_s = res_s - actual.sum(axis=0)
            res_d = res_d - take
        self._rate += taken.sum(axis=1)
        self._sup_rate[:] = taken.sum(axis=0)
        # Peer supply does not idle the seeder: in the exact engine the
        # seeder stays in every client's supplier pool, so whatever
        # capacity the waterfall left over tops up peer-fed cohorts
        # whose demand the peer uplinks could not cover — again in
        # strict join order, which keeps equal-prefix cohorts from
        # advancing in lockstep behind a single early supplier.
        if cap_left > _EPS_BYTES:
            for c in np.flatnonzero(peer_fed):
                want = float(res_d[c])
                if want <= _EPS_BYTES:
                    continue
                got = min(want, cap_left)
                self._rate[c] += got
                self._seeder_rate[c] += got
                cap_left -= got
                if cap_left <= _EPS_BYTES:
                    break

    def _integrate(self, dt: float) -> None:
        """Account ``dt`` seconds of the current allocation."""
        np = _np
        if dt <= 0.0:
            return
        flowing = (self._phase == _DATA) & (self._alive > 0.0)
        if flowing.any():
            per_peer = np.where(
                flowing, self._rate / np.maximum(self._alive, 1.0), 0.0
            )
            self._bytes_left -= per_peer * dt
            self._bytes_down += per_peer * dt
            self._seeder_bytes += float(
                self._seeder_rate[flowing].sum() * dt
            )
            self._up_bytes += self._sup_rate * dt
        waiting = self._phase == _LATENCY
        if waiting.any():
            self._latency_left = np.where(
                waiting,
                np.maximum(self._latency_left - dt, 0.0),
                self._latency_left,
            )

    # -- playback bookkeeping ------------------------------------------

    def _extend_prefix(self, c: int, new_prefix: int, now: float) -> None:
        """Advance cohort ``c``'s contiguous prefix and its player."""
        old = int(self._prefix[c])
        if new_prefix <= old:
            return
        self._prefix[c] = new_prefix
        gained = float(self._dsum[new_prefix] - self._dsum[old])
        if _np.isnan(self._pb_start[c]):
            if new_prefix >= self._preroll:
                self._pb_start[c] = now
                self._play_end[c] = now + float(self._dsum[new_prefix])
        elif self._stall_open[c] or now > self._play_end[c] + _EPS_TIME:
            # The playhead exhausted the old prefix before this
            # arrival: one stall from the exhaustion point to now.
            start = (
                float(self._stall_start[c])
                if self._stall_open[c]
                else float(self._play_end[c])
            )
            self._stalls[c].append(
                StallEvent(start=start, end=now, next_segment=old)
            )
            self._stall_open[c] = False
            self._play_end[c] = now + gained
        else:
            self._play_end[c] += gained
        if new_prefix == self._n_segments and _np.isnan(self._pb_end[c]):
            if not _np.isnan(self._pb_start[c]):
                self._pb_end[c] = self._play_end[c]

    def _open_stalls(self, now: float) -> None:
        """Mark cohorts whose playhead ran dry by ``now`` as stalled."""
        np = _np
        for c in range(self._count):
            if (
                self._stall_open[c]
                or np.isnan(self._pb_start[c])
                or self._prefix[c] >= self._n_segments
            ):
                continue
            if now > self._play_end[c] + _EPS_TIME:
                self._stall_open[c] = True
                self._stall_start[c] = self._play_end[c]

    # -- churn ----------------------------------------------------------

    def _process_departures(self, now: float) -> None:
        for c in range(self._count):
            deps = self._departures[c]
            while deps and deps[0][0] <= now + _EPS_TIME:
                when, peer = deps.pop(0)
                if self._alive[c] <= 0.0:
                    continue
                self._alive[c] -= 1.0
                self._departed.append(
                    (when, peer, self._peer_snapshot(c, when))
                )
                if self._alive[c] <= 0.0 and self._phase[c] != _DONE:
                    self._phase[c] = _DONE

    def _peer_snapshot(self, c: int, when: float) -> dict:
        """A departing peer's metrics, frozen at departure time."""
        pb_start = self._pb_start[c]
        stalls = [s for s in self._stalls[c] if s.end <= when]
        return {
            "session_start": float(self._join[c]),
            "playback_start": (
                float(pb_start)
                if not _np.isnan(pb_start) and pb_start <= when
                else None
            ),
            "playback_end": None,
            "stalls": stalls,
            "bytes_downloaded": float(self._bytes_down[c]),
            "segments_downloaded": int(self._prefix[c]),
        }

    # -- result materialization ----------------------------------------

    def _control_message_estimate(self) -> int:
        """Analytic stand-in for the exact control-plane count.

        Manifest exchange (2 per peer), pairwise handshake+bitfield
        (2 per ordered pair at join), one request per segment per
        peer, and the Have fan-out (every received segment announced
        to every other peer) — the exact engine's dominant terms.
        """
        n = self._config.n_leechers
        s = self._n_segments
        return int(2 * n + n * (n - 1) + n * s + s * n * (n - 1))

    def _departed_names(self) -> tuple[str, ...]:
        ordered = sorted(self._departed, key=lambda d: (d[0], d[1]))
        return tuple(f"peer-{peer + 1}" for _, peer, _ in ordered)

    def _build_result(self):
        from .swarm import SwarmResult

        np = _np
        metrics: dict[str, StreamingMetrics] = {}
        per_peer_up = self._up_bytes / np.maximum(self._size, 1.0)
        for c in range(self._count):
            pb_start = self._pb_start[c]
            pb_end = self._pb_end[c]
            stalls = self._stalls[c]
            for peer in range(int(self._lo[c]), int(self._hi[c])):
                metrics[f"peer-{peer + 1}"] = StreamingMetrics(
                    session_start=float(self._join[c]),
                    playback_start=(
                        float(pb_start) if not np.isnan(pb_start) else None
                    ),
                    playback_end=(
                        float(pb_end) if not np.isnan(pb_end) else None
                    ),
                    stalls=list(stalls),
                    bytes_downloaded=float(self._bytes_down[c]),
                    bytes_uploaded=float(per_peer_up[c]),
                    segments_downloaded=int(self._prefix[c]),
                )
        for when, peer, snapshot in self._departed:
            name = f"peer-{peer + 1}"
            metrics[name] = StreamingMetrics(
                session_start=snapshot["session_start"],
                playback_start=snapshot["playback_start"],
                playback_end=snapshot["playback_end"],
                stalls=snapshot["stalls"],
                bytes_downloaded=snapshot["bytes_downloaded"],
                bytes_uploaded=float(
                    per_peer_up[self._cohort_of(peer)]
                ),
                segments_downloaded=snapshot["segments_downloaded"],
            )
        peer_bytes = float(self._bytes_down @ self._size) - float(
            self._seeder_bytes
        )
        return SwarmResult(
            metrics=metrics,
            seeder_bytes_uploaded=float(self._seeder_bytes),
            peer_bytes_uploaded=max(0.0, peer_bytes),
            control_messages=self._control_message_estimate(),
            departed=self._departed_names(),
            end_time=self.sim.now,
        )

    def _cohort_of(self, peer: int) -> int:
        return int(_np.searchsorted(self._hi, peer, side="right"))

    def _finalize_observability(self) -> None:
        assert self.obs is not None
        registry = self.obs.registry
        for histogram in registry.histograms().values():
            histogram.finalize(self.sim.now)
        if self.obs.profile is not None:
            self.obs.profile.publish(registry)
        np = _np
        summaries = []
        for c in range(self._count):
            pb_start = self._pb_start[c]
            pb_end = self._pb_end[c]
            summaries.append(
                CohortSummary(
                    peers=int(self._size[c]),
                    segments_received=int(self._prefix[c]),
                    bytes_downloaded=float(self._bytes_down[c]),
                    stalls=len(self._stalls[c]),
                    stall_seconds=float(
                        sum(s.duration for s in self._stalls[c])
                    ),
                    started=not np.isnan(pb_start),
                    finished=not np.isnan(pb_end),
                )
            )
        publish_cohort_aggregates(
            registry,
            summaries,
            departures=len(self._departed),
        )
        registry.gauge("swarm.control_messages").set(
            self._control_message_estimate()
        )
        registry.gauge("swarm.seeder_bytes_uploaded").set(
            float(self._seeder_bytes)
        )
        registry.gauge("swarm.peer_bytes_uploaded").set(
            max(
                0.0,
                float(self._bytes_down @ self._size)
                - float(self._seeder_bytes),
            )
        )
        registry.gauge("swarm.end_time").set(self.sim.now)
        self._emit_lifecycle_events()

    def _emit_lifecycle_events(self) -> None:
        """Replay one representative peer's lifecycle per cohort.

        Traced scale runs keep the ``repro trace`` / ``repro analyze``
        surface loadable without emitting O(N) events: the cohort's
        first peer stands in for its members (docs/SCALING.md).
        """
        assert self.obs is not None
        tracer = self.obs.tracer
        if not tracer.enabled:
            return
        np = _np
        events: list = []
        for c in range(self._count):
            name = f"peer-{int(self._lo[c]) + 1}"
            events.append(
                PeerJoined(time=float(self._join[c]), peer=name)
            )
            pb_start = self._pb_start[c]
            if np.isnan(pb_start):
                continue
            events.append(
                PlaybackStarted(
                    time=float(pb_start),
                    peer=name,
                    startup_time=float(pb_start - self._join[c]),
                )
            )
            total = 0.0
            for stall in self._stalls[c]:
                total += stall.duration
                events.append(
                    StallStarted(
                        time=stall.start,
                        peer=name,
                        segment=stall.next_segment,
                        expected_size=float(
                            self._wsum[stall.next_segment + 1]
                            - self._wsum[stall.next_segment]
                        ),
                    )
                )
                events.append(
                    StallEnded(
                        time=stall.end,
                        peer=name,
                        segment=stall.next_segment,
                        duration=stall.duration,
                        expected_size=float(
                            self._wsum[stall.next_segment + 1]
                            - self._wsum[stall.next_segment]
                        ),
                    )
                )
            pb_end = self._pb_end[c]
            if not np.isnan(pb_end):
                events.append(
                    PlaybackFinished(
                        time=float(pb_end),
                        peer=name,
                        stalls=len(self._stalls[c]),
                        total_stall_duration=total,
                    )
                )
        events.sort(key=lambda e: e.time)
        for event in events:
            if tracer.enabled:
                tracer.emit(event)

    # -- external control ----------------------------------------------

    def set_peer_bandwidth(self, bandwidth: float) -> None:
        """Change every leecher's access bandwidth mid-run.

        The square-wave / variable-bandwidth experiments call this
        from scheduled sim events; the allocation is rebuilt from the
        new capacities immediately.
        """
        if bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {bandwidth}"
            )
        self._catch_up()
        self._bw_down[:] = float(bandwidth)
        self._bw_up[:] = float(bandwidth)
        self._reschedule()

    # Subclass hooks -----------------------------------------------------

    def _catch_up(self) -> None:
        """Integrate state up to ``sim.now`` (before external change)."""
        raise NotImplementedError

    def _reschedule(self) -> None:
        raise NotImplementedError

    def run(self):
        raise NotImplementedError


class CohortSwarm(_VectorSwarm):
    """The event-driven cohort tier (``fidelity='cohort'``).

    Runs the paper's batch-mode client loop per cohort: Eq. 1 sizes a
    batch of the next ``k`` sequential segments, the batch waits out
    request+handshake latency, drains at the allocator's rate, and
    refills on completion.  One sim event per state change.
    """

    def __init__(self, splice, config, obs=None) -> None:
        super().__init__(splice, config, obs)

    # -- batch lifecycle -----------------------------------------------

    def _start_batch(self, c: int, now: float) -> None:
        prefix = int(self._prefix[c])
        if prefix >= self._n_segments or self._alive[c] <= 0.0:
            self._phase[c] = _DONE
            return
        k = self._pool_size(c, now)
        self._batch_k[c] = k
        self._bytes_left[c] = float(
            self._wsum[prefix + k] - self._wsum[prefix]
        )
        self._latency_left[c] = self._batch_latency
        self._phase[c] = _LATENCY

    def _complete_batch(self, c: int, now: float) -> None:
        new_prefix = int(self._prefix[c]) + int(self._batch_k[c])
        self._batch_k[c] = 0
        self._bytes_left[c] = 0.0
        self._extend_prefix(c, new_prefix, now)
        self._start_batch(c, now)

    # -- event loop ------------------------------------------------------

    def _reallocate(self) -> None:
        np = _np
        demander = (self._phase == _DATA) & (self._alive > 0.0)
        # reach[c, j]: cohort j holds cohort c's whole current batch.
        want_hi = self._prefix + self._batch_k
        reach = (
            (self._prefix[None, :] >= want_hi[:, None])
            & demander[:, None]
            & (self._alive > 0.0)[None, :]
            & (self._phase != _PRE)[None, :]
        )
        np.fill_diagonal(reach, False)
        self._allocate(demander, self._batch_k, reach)

    def _next_trigger(self, now: float) -> float:
        np = _np
        candidates = [float("inf")]
        pre = self._phase == _PRE
        if pre.any():
            candidates.append(float(self._manifest_at[pre].min()))
        lat = self._phase == _LATENCY
        if lat.any():
            candidates.append(now + float(self._latency_left[lat].min()))
        flowing = (self._phase == _DATA) & (self._rate > _EPS_BYTES)
        if flowing.any():
            per_peer = self._rate[flowing] / np.maximum(
                self._alive[flowing], 1.0
            )
            eta = self._bytes_left[flowing] / per_peer
            candidates.append(now + float(eta.min()))
        for deps in self._departures:
            if deps:
                candidates.append(deps[0][0])
        return min(candidates)

    def _process(self, now: float) -> None:
        """Fire every transition due at ``now``, in cohort order."""
        self._process_departures(now)
        for c in range(self._count):
            phase = self._phase[c]
            if phase == _PRE and now + _EPS_TIME >= self._manifest_at[c]:
                self._start_batch(c, now)
                # A fresh batch still waits its latency; fall through
                # so a zero-latency config advances in one event.
                phase = self._phase[c]
            if phase == _LATENCY and self._latency_left[c] <= _EPS_TIME:
                self._latency_left[c] = 0.0
                self._phase[c] = _DATA
            elif phase == _DATA and self._bytes_left[c] <= _EPS_BYTES:
                self._complete_batch(c, now)
                if self._phase[c] == _LATENCY and (
                    self._latency_left[c] <= _EPS_TIME
                ):
                    self._phase[c] = _DATA

    def _on_trigger(self) -> None:
        now = self.sim.now
        self._integrate(now - self._last_t)
        self._last_t = now
        self._process(now)
        self._reallocate()
        self._schedule(now)

    def _schedule(self, now: float) -> None:
        self._pending = None
        target = self._next_trigger(now)
        if target == float("inf") or target > self._config.max_time:
            return
        delay = max(target - now, _EPS_TIME)
        self._pending = self.sim.schedule(delay, self._on_trigger)

    def _catch_up(self) -> None:
        now = self.sim.now
        self._integrate(now - self._last_t)
        self._last_t = now

    def _reschedule(self) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        now = self.sim.now
        self._process(now)
        self._reallocate()
        self._schedule(now)

    def run(self):
        """Run the session and materialize a ``SwarmResult``."""
        if self._ran:
            from ..errors import SwarmError

            raise SwarmError("a swarm session can only run once")
        self._ran = True
        self._schedule(0.0)
        self.sim.run(until=self._config.max_time)
        # Stalls still open at the cap stay unrecorded, exactly like
        # the exact player (StallEvents are recorded on resume).
        if self.obs is not None:
            self._finalize_observability()
        return self._build_result()


class FluidSwarm(_VectorSwarm):
    """The mean-field tier (``fidelity='fluid'``).

    Per-cohort download progress follows a rate ODE integrated with a
    fixed step on the sim clock: demand is Eq. 1's pool times the
    Mathis per-connection ceiling, derated by the per-batch handshake
    overhead; supply is shared by the proportional-filling allocator
    with cohorts strictly ahead (by contiguous prefix) serving those
    behind and the seeder feeding the front.  Stall boundaries are
    quantized to the step (default: a quarter of the shortest segment
    duration, clamped to [50 ms, 1 s]).
    """

    def __init__(self, splice, config, obs=None) -> None:
        super().__init__(splice, config, obs)
        np = _np
        if config.fluid_dt is not None:
            self._dt = float(config.fluid_dt)
        else:
            shortest = float(
                np.diff(self._dsum).min()
            )
            self._dt = min(1.0, max(0.05, shortest / 4.0))
        # Continuous per-peer byte progress (prefix derives from it).
        self._progress = np.zeros(self._count)
        self._total_bytes = float(self._wsum[-1])

    def _fluid_rates(self, now: float) -> None:
        np = _np
        active = (
            (self._manifest_at <= now)
            & (self._alive > 0.0)
            & (self._progress < self._total_bytes - _EPS_BYTES)
        )
        done = (self._progress >= self._total_bytes - _EPS_BYTES) | (
            self._alive <= 0.0
        )
        self._phase[:] = np.where(
            active, _DATA, np.where(done, _DONE, _PRE)
        ).astype(np.int8)
        k = np.array(
            [
                self._pool_size(c, now) if active[c] else 1
                for c in range(self._count)
            ],
            dtype=np.int64,
        )
        # reach[c, j]: cohort j is strictly ahead of cohort c.
        reach = (
            (self._prefix[None, :] > self._prefix[:, None])
            & active[:, None]
            & (self._alive > 0.0)[None, :]
            & (self._manifest_at <= now)[None, :]
        )
        # Mean-field self-supply (Kumar–Ross): a cohort's members are
        # internally staggered, so once any copy of the data exists in
        # the cohort its own uplink spreads it epidemically — the
        # seeder only bootstraps the first copy.  Without this the
        # front cohort would be seeder-bound and per-peer throughput
        # would collapse as 1/N instead of staying flat.
        diag = np.arange(self._count)
        reach[diag, diag] = active & (self._progress > _EPS_BYTES)
        self._allocate(active, k, reach)
        # Derate for per-batch request+handshake latency: a batch of
        # k mean-size segments at rate r pays `latency` dead seconds.
        cap = np.maximum(self._rate / np.maximum(self._alive, 1.0), 0.0)
        batch_bytes = k * self._mean_size
        eta = batch_bytes / (
            batch_bytes + self._batch_latency * np.maximum(cap, 1.0)
        )
        self._rate *= eta
        self._seeder_rate *= eta
        # Supplier-side attribution shrinks by the demanders' average
        # derate; recompute proportionally.
        self._sup_rate *= float(eta.mean())

    def _step(self) -> None:
        now = self.sim.now
        dt = now - self._last_t
        np = _np
        if dt > 0.0:
            flowing = self._phase == _DATA
            per_peer = np.where(
                flowing, self._rate / np.maximum(self._alive, 1.0), 0.0
            )
            gained = per_peer * dt
            self._progress = np.minimum(
                self._progress + gained, self._total_bytes
            )
            self._bytes_down += gained
            self._bytes_left[:] = 0.0
            self._seeder_bytes += float(
                (self._seeder_rate * dt)[flowing].sum()
            )
            self._up_bytes += self._sup_rate * dt
        self._last_t = now
        self._process_departures(now)
        new_prefix = np.searchsorted(
            self._wsum[1:], self._progress + _EPS_BYTES, side="right"
        )
        for c in range(self._count):
            self._extend_prefix(c, int(new_prefix[c]), now)
        self._open_stalls(now)
        self._fluid_rates(now)
        if (self._phase != _DONE).any() and now < self._config.max_time:
            self._pending = self.sim.schedule(self._dt, self._step)
        else:
            self._pending = None

    def _catch_up(self) -> None:
        # Fluid state advances only on step boundaries; nothing to do
        # between them (rates are piecewise constant per step).
        pass

    def _reschedule(self) -> None:
        self._fluid_rates(self.sim.now)

    def run(self):
        """Run the session and materialize a ``SwarmResult``."""
        if self._ran:
            from ..errors import SwarmError

            raise SwarmError("a swarm session can only run once")
        self._ran = True
        self._pending = self.sim.schedule(0.0, self._step)
        self.sim.run(until=self._config.max_time)
        if self.obs is not None:
            self._finalize_observability()
        return self._build_result()
