"""Peer plumbing shared by seeders and leechers.

Control messages (handshakes, haves, requests) are small: they are
encoded through the real wire codec, then delivered after the
end-to-end control latency — their bandwidth use is negligible and not
charged against links.  Segment payloads are large: each one travels as
its own TCP transfer through the flow network, exactly like the paper's
per-segment Java-socket connections.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..errors import PeerError
from ..net.engine import Simulator
from ..net.flownet import FlowNetwork
from ..net.tcp import TcpParams, TcpTransfer, start_tcp_transfer
from ..net.topology import Node, StarTopology
from ..obs.context import Observability
from ..obs.tracer import NULL_TRACER
from .messages import (
    Bitfield,
    Cancel,
    Goodbye,
    Handshake,
    Have,
    Manifest,
    ManifestRequest,
    Message,
    Piece,
    Request,
    RequestRejected,
    decode_message,
    encode_message,
)
from .wire import FrameDecoder, encode_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    pass


def piece_wire_overhead(peer_id: str, index: int, size: int) -> int:
    """Bytes of protocol overhead carried with one segment transfer."""
    return len(encode_frame(encode_message(Piece(peer_id, index, size))))


class ControlPlane:
    """Latency-delayed, loss-free delivery of encoded control messages.

    Args:
        sim: the simulator.
        topology: supplies baseline node-to-node propagation latency.
        extra_latency: optional ``(src_name, dst_name) -> seconds``
            hook adding latency for specific pairs — used to model the
            paper's 500 ms peer-to-seeder control latency.
    """

    def __init__(
        self,
        sim: Simulator,
        topology: StarTopology,
        extra_latency: Callable[[str, str], float] | None = None,
    ) -> None:
        self._sim = sim
        self._topology = topology
        self._extra_latency = extra_latency
        self._peers: dict[str, "PeerBase"] = {}
        self.messages_sent = 0
        self.control_bytes = 0

    def register(self, peer: "PeerBase") -> None:
        """Make a peer reachable by name."""
        if peer.name in self._peers:
            raise PeerError(f"peer name {peer.name!r} already registered")
        self._peers[peer.name] = peer

    def unregister(self, name: str) -> None:
        """Remove a departed peer (idempotent)."""
        self._peers.pop(name, None)

    def peer(self, name: str) -> "PeerBase | None":
        """Look a live peer up by name (None if gone)."""
        return self._peers.get(name)

    def delay(self, src_name: str, dst_name: str) -> float:
        """Control-message latency from ``src`` to ``dst``, seconds."""
        src = self._topology.node(src_name)
        dst = self._topology.node(dst_name)
        base = self._topology.one_way_latency(src, dst)
        if self._extra_latency is not None:
            base += self._extra_latency(src_name, dst_name)
        return base

    def send(self, src: "PeerBase", dst_name: str, message: Message) -> None:
        """Encode and deliver ``message`` after the pair's latency.

        Messages to peers that have left by delivery time are silently
        dropped, as a closed socket would drop them.
        """
        raw = encode_frame(encode_message(message))
        self.messages_sent += 1
        self.control_bytes += len(raw)
        delay = self.delay(src.name, dst_name)
        self._sim.schedule(delay, self._deliver, src.name, dst_name, raw)

    def _deliver(self, src_name: str, dst_name: str, raw: bytes) -> None:
        dst = self._peers.get(dst_name)
        if dst is not None and dst.alive:
            dst.receive_control(src_name, raw)


class PeerBase:
    """State and behaviour common to seeders and leechers.

    Uploads can be *slotted*, like BitTorrent's unchoked set: at most
    ``upload_slots`` segment transfers run at once, further requests
    queue (urgent first), and requests landing on an over-full queue
    are choked (``RequestRejected(busy=True)``).  The default
    (``upload_slots=None``) serves every request concurrently and lets
    TCP fair-sharing sort it out — which is what the paper's plain
    Java-socket application did.
    """

    def __init__(
        self,
        name: str,
        node: Node,
        sim: Simulator,
        network: FlowNetwork,
        topology: StarTopology,
        control: ControlPlane,
        tcp_params: TcpParams | None = None,
        upload_slots: int | None = None,
        obs: Observability | None = None,
    ) -> None:
        if upload_slots is not None and upload_slots < 1:
            raise PeerError(
                f"upload_slots must be >= 1 or None, got {upload_slots}"
            )
        self._tracer = obs.tracer if obs is not None else NULL_TRACER
        self._metrics = obs.registry if obs is not None else None
        self.name = name
        self.node = node
        self._sim = sim
        self._network = network
        self._topology = topology
        self._control = control
        self._tcp_params = tcp_params or TcpParams()
        self._decoder = FrameDecoder()
        self.alive = True
        self.owned: set[int] = set()
        self.segment_sizes: dict[int, int] = {}
        self.bytes_uploaded = 0.0
        self.upload_slots = upload_slots
        self._uploads: dict[int, tuple[TcpTransfer, str, int]] = {}
        self._upload_queue: list[tuple[str, int, bool]] = []
        self._upload_seq = 0

    # -- identity ------------------------------------------------------

    @property
    def sim(self) -> Simulator:
        """The simulator this peer lives in."""
        return self._sim

    @property
    def control(self) -> ControlPlane:
        """The control plane used for small messages."""
        return self._control

    @property
    def active_upload_count(self) -> int:
        """Number of segment uploads currently in flight."""
        return len(self._uploads)

    # -- messaging -----------------------------------------------------

    def send(self, dst_name: str, message: Message) -> None:
        """Send a control message to another peer."""
        if not self.alive:
            return
        self._control.send(self, dst_name, message)

    def receive_control(self, src_name: str, raw: bytes) -> None:
        """Decode an incoming control frame and dispatch it."""
        for payload in self._decoder.feed(raw):
            self.handle_message(src_name, decode_message(payload))

    def handle_message(self, src_name: str, message: Message) -> None:
        """Dispatch one decoded message; subclasses extend."""
        if isinstance(message, Request):
            self._handle_request(src_name, message.index, message.urgent)
        elif isinstance(message, Cancel):
            self._handle_cancel(src_name, message.index)
        elif isinstance(message, Handshake):
            self._handle_handshake(src_name, message)
        elif isinstance(message, Goodbye):
            self._handle_goodbye(src_name)
        elif isinstance(
            message,
            (Bitfield, Have, Manifest, ManifestRequest, RequestRejected,
             Piece),
        ):
            # Subclasses that care override handle_message and call
            # super() for the shared cases; silently ignoring here
            # mirrors a real peer tolerating unexpected messages.
            pass
        else:  # pragma: no cover - registry covers all message types
            raise PeerError(f"unhandled message {type(message).__name__}")

    def _handle_handshake(self, src_name: str, message: Handshake) -> None:
        """Default handshake reply: our bitfield."""
        self.send(
            src_name,
            Bitfield(peer_id=self.name, indices=tuple(sorted(self.owned))),
        )

    # -- uploading -----------------------------------------------------

    def _handle_request(
        self, src_name: str, index: int, urgent: bool = False
    ) -> None:
        if index not in self.owned:
            self.send(src_name, RequestRejected(self.name, index))
            return
        if (
            not urgent
            and self.upload_slots is not None
            and len(self._upload_queue) >= self.upload_slots
        ):
            # Choke: the queue is already a full rotation deep; tell
            # the requester to try another holder.
            self.send(
                src_name, RequestRejected(self.name, index, busy=True)
            )
            return
        # Duplicate requests upgrade priority rather than double-send.
        for transfer, dst, idx in self._uploads.values():
            if dst == src_name and idx == index:
                return  # already being sent
        for pos, (src, idx, urg) in enumerate(self._upload_queue):
            if src == src_name and idx == index:
                if urgent and not urg:
                    del self._upload_queue[pos]
                    break
                return  # already queued at sufficient priority
        if urgent:
            # Playback-critical: ahead of every queued prefetch, behind
            # earlier urgent requests.
            insert_at = sum(
                1 for entry in self._upload_queue if entry[2]
            )
            self._upload_queue.insert(insert_at, (src_name, index, True))
        else:
            self._upload_queue.append((src_name, index, False))
        self._pump_uploads()

    def _handle_cancel(self, src_name: str, index: int) -> None:
        """Drop a queued or in-flight upload the requester withdrew."""
        self._upload_queue = [
            entry
            for entry in self._upload_queue
            if not (entry[0] == src_name and entry[1] == index)
        ]
        for upload_id, (transfer, dst, idx) in list(self._uploads.items()):
            if dst == src_name and idx == index:
                transfer.cancel()
                del self._uploads[upload_id]
        self._pump_uploads()

    def _handle_goodbye(self, src_name: str) -> None:
        """Drop queued/active uploads addressed to a departed peer."""
        self._upload_queue = [
            entry for entry in self._upload_queue if entry[0] != src_name
        ]
        for upload_id, (transfer, dst, _) in list(self._uploads.items()):
            if dst == src_name:
                transfer.cancel()
                del self._uploads[upload_id]
        self.on_peer_left(src_name)
        self._pump_uploads()

    def upload_status(self, dst_name: str, index: int) -> str | None:
        """Where an upload to ``dst_name`` for ``index`` stands.

        Returns ``"active"`` when bytes are flowing, ``"queued"`` when
        the request waits for a free slot, and ``None`` when this peer
        knows nothing of it.  (A real receiver observes the same
        distinction: data arriving on the socket, or silence.)
        """
        for transfer, dst, idx in self._uploads.values():
            if dst == dst_name and idx == index and transfer.active:
                return "active"
        for src, idx, _ in self._upload_queue:
            if src == dst_name and idx == index:
                return "queued"
        return None

    def _pump_uploads(self) -> None:
        """Start queued uploads while slots are free."""
        while (
            self.alive
            and self._upload_queue
            and (
                self.upload_slots is None
                or len(self._uploads) < self.upload_slots
            )
        ):
            src_name, index, _ = self._upload_queue.pop(0)
            requester = self._control.peer(src_name)
            if requester is None or not requester.alive:
                continue
            size = self.segment_sizes[index]
            wire_size = size + piece_wire_overhead(self.name, index, size)
            route = self._topology.route(self.node, requester.node)
            self._upload_seq += 1
            upload_id = self._upload_seq
            # Only build the label string when it will be recorded.
            label = (
                f"{self.name}->{src_name}#{index}"
                if self._tracer.enabled
                else ""
            )
            transfer = start_tcp_transfer(
                self._sim,
                self._network,
                route,
                wire_size,
                params=self._tcp_params,
                on_complete=lambda t, uid=upload_id: (
                    self._on_upload_complete(uid, t)
                ),
                tracer=self._tracer,
                label=label,
            )
            self._uploads[upload_id] = (transfer, src_name, index)
            if self._metrics is not None:
                self._metrics.counter("tcp.transfers_started").inc()

    def _on_upload_complete(
        self, upload_id: int, transfer: TcpTransfer
    ) -> None:
        _, dst_name, index = self._uploads.pop(upload_id)
        self.bytes_uploaded += transfer.size
        if self._metrics is not None:
            self._metrics.counter("tcp.bytes_uploaded").inc(transfer.size)
        receiver = self._control.peer(dst_name)
        if receiver is not None and receiver.alive:
            receiver.on_segment_received(
                self.name, index, self.segment_sizes[index]
            )
        self._pump_uploads()

    # -- churn ---------------------------------------------------------

    def leave(self) -> None:
        """Depart the swarm: abort transfers and say goodbye."""
        if not self.alive:
            return
        self.alive = False
        for transfer, _, _ in self._uploads.values():
            transfer.cancel()
        self._uploads.clear()
        self._upload_queue.clear()
        for other in list(self._control_peer_names()):
            self._control.send(self, other, Goodbye(self.name))
        self._control.unregister(self.name)

    def _control_peer_names(self) -> list[str]:
        return [
            name
            for name in self._control._peers  # noqa: SLF001 - same package
            if name != self.name
        ]

    # -- hooks for subclasses -------------------------------------------

    def on_segment_received(
        self, src_name: str, index: int, size: int
    ) -> None:
        """A segment transfer addressed to this peer completed."""

    def on_peer_left(self, peer_name: str) -> None:
        """A peer announced departure."""
