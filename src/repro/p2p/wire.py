"""Length-prefixed message framing.

Every protocol message travels as ``u32 length || payload`` — the same
framing BitTorrent uses.  :class:`FrameDecoder` is an incremental
parser: feed it arbitrary byte chunks (as a TCP stream would deliver
them) and collect whole payloads as they complete.
"""

from __future__ import annotations

import struct

from ..errors import WireFormatError

_LENGTH = struct.Struct(">I")

#: Refuse frames larger than this (corrupt length prefixes otherwise
#: make the decoder buffer unboundedly).
MAX_FRAME_SIZE = 64 * 1024 * 1024


def encode_frame(payload: bytes) -> bytes:
    """Wrap ``payload`` in a length prefix."""
    if len(payload) > MAX_FRAME_SIZE:
        raise WireFormatError(
            f"payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_SIZE}-byte frame limit"
        )
    return _LENGTH.pack(len(payload)) + payload


class FrameDecoder:
    """Incremental length-prefixed frame parser."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buffer)

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data`` and return every completed payload.

        Raises:
            WireFormatError: on a length prefix exceeding the frame
                limit (stream corruption).
        """
        self._buffer.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buffer) < _LENGTH.size:
                break
            (length,) = _LENGTH.unpack_from(self._buffer, 0)
            if length > MAX_FRAME_SIZE:
                raise WireFormatError(
                    f"frame length {length} exceeds the "
                    f"{MAX_FRAME_SIZE}-byte limit"
                )
            if len(self._buffer) < _LENGTH.size + length:
                break
            start = _LENGTH.size
            frames.append(bytes(self._buffer[start : start + length]))
            del self._buffer[: start + length]
        return frames
