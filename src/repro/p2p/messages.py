"""Protocol messages and their byte codec.

A BitTorrent-like message set adapted to streaming: peers exchange a
manifest (segment layout — what a tracker-less HLS playlist carries),
bitfields and haves for availability, and request/piece for data.

Encoding: ``msg_id (1 byte) || body``.  Strings are
``u16 length || utf-8``; arrays are ``u32 count || items``.  All
integers big-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import Callable, ClassVar, Type, TypeVar

from ..errors import WireFormatError

_U8 = struct.Struct(">B")
_U16 = struct.Struct(">H")
_U32 = struct.Struct(">I")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")


class Message:
    """Base class for protocol messages; subclasses define ``MSG_ID``."""

    MSG_ID: ClassVar[int]


@dataclass(frozen=True, slots=True)
class Handshake(Message):
    """Opens a peer link: who I am and which stream I want."""

    MSG_ID: ClassVar[int] = 1
    peer_id: str
    info_hash: str


@dataclass(frozen=True, slots=True)
class ManifestRequest(Message):
    """Ask the seeder for the video manifest and swarm membership."""

    MSG_ID: ClassVar[int] = 2
    peer_id: str


@dataclass(frozen=True, slots=True)
class Manifest(Message):
    """The seeder's reply: segment layout plus current swarm members.

    This is "different information about the video and the swarm" the
    paper says every peer fetches from the seeder at startup.
    """

    MSG_ID: ClassVar[int] = 3
    info_hash: str
    segment_sizes: tuple[int, ...]
    segment_durations: tuple[float, ...]
    peers: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if len(self.segment_sizes) != len(self.segment_durations):
            raise WireFormatError(
                "segment_sizes and segment_durations must have equal "
                f"lengths, got {len(self.segment_sizes)} and "
                f"{len(self.segment_durations)}"
            )

    @property
    def segment_count(self) -> int:
        """Number of segments in the stream."""
        return len(self.segment_sizes)


@dataclass(frozen=True, slots=True)
class Bitfield(Message):
    """Which segments the sender currently holds."""

    MSG_ID: ClassVar[int] = 4
    peer_id: str
    indices: tuple[int, ...]


@dataclass(frozen=True, slots=True)
class Have(Message):
    """Announce one newly-acquired segment."""

    MSG_ID: ClassVar[int] = 5
    peer_id: str
    index: int


@dataclass(frozen=True, slots=True)
class Request(Message):
    """Ask the receiver to upload one segment to the sender.

    ``urgent`` marks playback-critical requests (the requester is
    stalled on, or about to play, this segment); uploaders serve urgent
    requests before prefetches.
    """

    MSG_ID: ClassVar[int] = 6
    peer_id: str
    index: int
    urgent: bool = False


@dataclass(frozen=True, slots=True)
class RequestRejected(Message):
    """Refusal: the segment is not held, or the sender is choked.

    ``busy`` distinguishes a BitTorrent-style choke (queue full — try
    elsewhere and come back) from a genuine miss.
    """

    MSG_ID: ClassVar[int] = 7
    peer_id: str
    index: int
    busy: bool = False


@dataclass(frozen=True, slots=True)
class Piece(Message):
    """Header accompanying a completed segment transfer."""

    MSG_ID: ClassVar[int] = 8
    peer_id: str
    index: int
    size: int


@dataclass(frozen=True, slots=True)
class Goodbye(Message):
    """The sender is leaving the swarm (churn)."""

    MSG_ID: ClassVar[int] = 9
    peer_id: str


@dataclass(frozen=True, slots=True)
class Cancel(Message):
    """Withdraw an earlier :class:`Request` (re-requested elsewhere)."""

    MSG_ID: ClassVar[int] = 10
    peer_id: str
    index: int


T = TypeVar("T", bound=Message)


def _pack_str(value: str) -> bytes:
    raw = value.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise WireFormatError(f"string of {len(raw)} bytes is too long")
    return _U16.pack(len(raw)) + raw


class _Reader:
    """Cursor over a message body with bounds checking."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def _take(self, fmt: struct.Struct) -> tuple:
        if self._pos + fmt.size > len(self._data):
            raise WireFormatError("message truncated")
        values = fmt.unpack_from(self._data, self._pos)
        self._pos += fmt.size
        return values

    def u8(self) -> int:
        return self._take(_U8)[0]

    def u32(self) -> int:
        return self._take(_U32)[0]

    def u64(self) -> int:
        return self._take(_U64)[0]

    def f64(self) -> float:
        return self._take(_F64)[0]

    def string(self) -> str:
        (length,) = self._take(_U16)
        if self._pos + length > len(self._data):
            raise WireFormatError("string extends past message end")
        raw = self._data[self._pos : self._pos + length]
        self._pos += length
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireFormatError(
                f"string field is not valid UTF-8: {exc}"
            ) from exc

    def expect_end(self) -> None:
        if self._pos != len(self._data):
            raise WireFormatError(
                f"{len(self._data) - self._pos} trailing bytes after message"
            )


def encode_message(message: Message) -> bytes:
    """Serialize a message to its wire bytes (without framing)."""
    body: list[bytes] = [_U8.pack(message.MSG_ID)]
    if isinstance(message, Handshake):
        body += [_pack_str(message.peer_id), _pack_str(message.info_hash)]
    elif isinstance(message, ManifestRequest):
        body += [_pack_str(message.peer_id)]
    elif isinstance(message, Manifest):
        body += [_pack_str(message.info_hash)]
        body += [_U32.pack(len(message.segment_sizes))]
        body += [_U64.pack(size) for size in message.segment_sizes]
        body += [_F64.pack(d) for d in message.segment_durations]
        body += [_U32.pack(len(message.peers))]
        body += [_pack_str(peer) for peer in message.peers]
    elif isinstance(message, Bitfield):
        body += [_pack_str(message.peer_id)]
        body += [_U32.pack(len(message.indices))]
        body += [_U32.pack(index) for index in message.indices]
    elif isinstance(message, Request):
        body += [
            _pack_str(message.peer_id),
            _U32.pack(message.index),
            _U8.pack(1 if message.urgent else 0),
        ]
    elif isinstance(message, RequestRejected):
        body += [
            _pack_str(message.peer_id),
            _U32.pack(message.index),
            _U8.pack(1 if message.busy else 0),
        ]
    elif isinstance(message, (Have, Cancel)):
        body += [_pack_str(message.peer_id), _U32.pack(message.index)]
    elif isinstance(message, Piece):
        body += [
            _pack_str(message.peer_id),
            _U32.pack(message.index),
            _U64.pack(message.size),
        ]
    elif isinstance(message, Goodbye):
        body += [_pack_str(message.peer_id)]
    else:
        raise WireFormatError(f"cannot encode {type(message).__name__}")
    return b"".join(body)


def _decode_handshake(r: _Reader) -> Handshake:
    return Handshake(peer_id=r.string(), info_hash=r.string())


def _decode_manifest_request(r: _Reader) -> ManifestRequest:
    return ManifestRequest(peer_id=r.string())


def _decode_manifest(r: _Reader) -> Manifest:
    info_hash = r.string()
    count = r.u32()
    sizes = tuple(r.u64() for _ in range(count))
    durations = tuple(r.f64() for _ in range(count))
    npeers = r.u32()
    peers = tuple(r.string() for _ in range(npeers))
    return Manifest(
        info_hash=info_hash,
        segment_sizes=sizes,
        segment_durations=durations,
        peers=peers,
    )


def _decode_bitfield(r: _Reader) -> Bitfield:
    peer_id = r.string()
    count = r.u32()
    return Bitfield(
        peer_id=peer_id, indices=tuple(r.u32() for _ in range(count))
    )


def _decode_have(r: _Reader) -> Have:
    return Have(peer_id=r.string(), index=r.u32())


def _decode_request(r: _Reader) -> Request:
    return Request(peer_id=r.string(), index=r.u32(), urgent=r.u8() != 0)


def _decode_rejected(r: _Reader) -> RequestRejected:
    return RequestRejected(
        peer_id=r.string(), index=r.u32(), busy=r.u8() != 0
    )


def _decode_piece(r: _Reader) -> Piece:
    return Piece(peer_id=r.string(), index=r.u32(), size=r.u64())


def _decode_goodbye(r: _Reader) -> Goodbye:
    return Goodbye(peer_id=r.string())


def _decode_cancel(r: _Reader) -> Cancel:
    return Cancel(peer_id=r.string(), index=r.u32())


_DECODERS: dict[int, Callable[[_Reader], Message]] = {
    Handshake.MSG_ID: _decode_handshake,
    ManifestRequest.MSG_ID: _decode_manifest_request,
    Manifest.MSG_ID: _decode_manifest,
    Bitfield.MSG_ID: _decode_bitfield,
    Have.MSG_ID: _decode_have,
    Request.MSG_ID: _decode_request,
    RequestRejected.MSG_ID: _decode_rejected,
    Piece.MSG_ID: _decode_piece,
    Goodbye.MSG_ID: _decode_goodbye,
    Cancel.MSG_ID: _decode_cancel,
}


def decode_message(data: bytes) -> Message:
    """Parse wire bytes (without framing) into a message.

    Raises:
        WireFormatError: on unknown message ids, truncation, or
            trailing garbage.
    """
    if not data:
        raise WireFormatError("empty message")
    reader = _Reader(data)
    msg_id = reader.u8()
    decoder = _DECODERS.get(msg_id)
    if decoder is None:
        raise WireFormatError(f"unknown message id {msg_id}")
    message = decoder(reader)
    reader.expect_end()
    return message
