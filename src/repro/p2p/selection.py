"""Piece-selection strategies.

The paper's client watches (and therefore fetches) sequentially,
citing that "95% of users of a P2P TV watch video sequentially".
Classic BitTorrent instead fetches rarest-first to maximise piece
diversity.  Streaming systems in the literature (and this module)
bridge the two: sequential for what is about to play, rarest-first
inside a look-ahead window for everything else.

A selector orders the *candidate* segments a leecher may request; the
leecher still applies its pool-size policy on top.
"""

from __future__ import annotations

import abc
import random
from typing import TYPE_CHECKING

from ..errors import ConfigurationError
from ..obs.events import SelectionMade

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.engine import Simulator
    from ..obs.tracer import Tracer


class PieceSelector(abc.ABC):
    """Strategy interface: order candidate segments for requesting."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short selector name used in reports."""

    @abc.abstractmethod
    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        """Return ``missing`` reordered by request priority.

        Args:
            missing: segment indices not yet buffered, ascending.
            next_needed: the segment the player needs next (None when
                playback has finished or not begun).
            availability: holder -> set of segment indices, the
                leecher's current knowledge of the swarm.
            rng: the leecher's seeded tie-break source.
        """


class SequentialSelector(PieceSelector):
    """The paper's policy: strictly in playback order."""

    @property
    def name(self) -> str:
        return "sequential"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        return sorted(missing)


class RarestFirstSelector(PieceSelector):
    """Pure BitTorrent ordering: fewest holders first.

    Poorly suited to streaming on its own (it happily fetches the
    video's tail first); provided as the classic baseline.
    """

    @property
    def name(self) -> str:
        return "rarest-first"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        counts = _holder_counts(missing, availability)
        shuffled = list(missing)
        rng.shuffle(shuffled)  # random tie-break, like BitTorrent
        return sorted(shuffled, key=lambda index: counts[index])


class WindowedRarestSelector(PieceSelector):
    """Streaming hybrid: sequential head, rarest-first look-ahead.

    The next ``urgent_window`` segments after the playhead are taken
    strictly in order (they are about to play); within the following
    ``lookahead`` segments, rarest-first maximises swarm diversity.

    Args:
        urgent_window: segments fetched strictly in playback order.
        lookahead: size of the rarest-first window behind them.
    """

    def __init__(self, urgent_window: int = 2, lookahead: int = 8) -> None:
        if urgent_window < 1:
            raise ConfigurationError(
                f"urgent_window must be >= 1, got {urgent_window}"
            )
        if lookahead < 0:
            raise ConfigurationError(
                f"lookahead must be >= 0, got {lookahead}"
            )
        self._urgent_window = urgent_window
        self._lookahead = lookahead

    @property
    def name(self) -> str:
        return f"windowed-rarest-{self._urgent_window}+{self._lookahead}"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        ordered = sorted(missing)
        if next_needed is None:
            head_base = ordered[0] if ordered else 0
        else:
            head_base = next_needed
        head = [
            index
            for index in ordered
            if index < head_base + self._urgent_window
        ]
        window = [
            index
            for index in ordered
            if head_base + self._urgent_window
            <= index
            < head_base + self._urgent_window + self._lookahead
        ]
        tail = [
            index
            for index in ordered
            if index >= head_base + self._urgent_window + self._lookahead
        ]
        counts = _holder_counts(window, availability)
        shuffled = list(window)
        rng.shuffle(shuffled)
        window_sorted = sorted(
            shuffled, key=lambda index: counts[index]
        )
        return head + window_sorted + tail


class TracingSelector(PieceSelector):
    """Decorator: trace another selector's decisions.

    Wraps any :class:`PieceSelector` and emits a debug-severity
    :class:`~repro.obs.events.SelectionMade` event per ordering call —
    the leecher installs it automatically when its tracer is enabled,
    so piece-selection decisions appear in traces without the
    strategies themselves knowing about observability.

    Args:
        inner: the selector making the actual decisions.
        tracer: where the events go.
        peer: the owning leecher's name, stamped on every event.
        sim: the clock supplying event timestamps.
    """

    #: How many leading indices of each decision the event records.
    HEAD = 5

    def __init__(
        self,
        inner: PieceSelector,
        tracer: "Tracer",
        peer: str,
        sim: "Simulator",
    ) -> None:
        self._inner = inner
        self._tracer = tracer
        self._peer = peer
        self._sim = sim

    @property
    def name(self) -> str:
        return self._inner.name

    @property
    def inner(self) -> PieceSelector:
        """The wrapped selector."""
        return self._inner

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        ordered = self._inner.order(
            missing, next_needed, availability, rng
        )
        if self._tracer.enabled and ordered:
            self._tracer.emit(
                SelectionMade(
                    time=self._sim.now,
                    peer=self._peer,
                    selector=self._inner.name,
                    head=tuple(ordered[: self.HEAD]),
                    candidates=len(ordered),
                )
            )
        return ordered


def _holder_counts(
    indices: list[int], availability: dict[str, set[int]]
) -> dict[int, int]:
    counts = {index: 0 for index in indices}
    for held in availability.values():
        for index in indices:
            if index in held:
                counts[index] += 1
    return counts
