"""Piece-selection strategies.

The paper's client watches (and therefore fetches) sequentially,
citing that "95% of users of a P2P TV watch video sequentially".
Classic BitTorrent instead fetches rarest-first to maximise piece
diversity.  Streaming systems in the literature (and this module)
bridge the two: sequential for what is about to play, rarest-first
inside a look-ahead window for everything else.

A selector orders the *candidate* segments a leecher may request; the
leecher still applies its pool-size policy on top.
"""

from __future__ import annotations

import abc
import random

from ..errors import ConfigurationError


class PieceSelector(abc.ABC):
    """Strategy interface: order candidate segments for requesting."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short selector name used in reports."""

    @abc.abstractmethod
    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        """Return ``missing`` reordered by request priority.

        Args:
            missing: segment indices not yet buffered, ascending.
            next_needed: the segment the player needs next (None when
                playback has finished or not begun).
            availability: holder -> set of segment indices, the
                leecher's current knowledge of the swarm.
            rng: the leecher's seeded tie-break source.
        """


class SequentialSelector(PieceSelector):
    """The paper's policy: strictly in playback order."""

    @property
    def name(self) -> str:
        return "sequential"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        return sorted(missing)


class RarestFirstSelector(PieceSelector):
    """Pure BitTorrent ordering: fewest holders first.

    Poorly suited to streaming on its own (it happily fetches the
    video's tail first); provided as the classic baseline.
    """

    @property
    def name(self) -> str:
        return "rarest-first"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        counts = _holder_counts(missing, availability)
        shuffled = list(missing)
        rng.shuffle(shuffled)  # random tie-break, like BitTorrent
        return sorted(shuffled, key=lambda index: counts[index])


class WindowedRarestSelector(PieceSelector):
    """Streaming hybrid: sequential head, rarest-first look-ahead.

    The next ``urgent_window`` segments after the playhead are taken
    strictly in order (they are about to play); within the following
    ``lookahead`` segments, rarest-first maximises swarm diversity.

    Args:
        urgent_window: segments fetched strictly in playback order.
        lookahead: size of the rarest-first window behind them.
    """

    def __init__(self, urgent_window: int = 2, lookahead: int = 8) -> None:
        if urgent_window < 1:
            raise ConfigurationError(
                f"urgent_window must be >= 1, got {urgent_window}"
            )
        if lookahead < 0:
            raise ConfigurationError(
                f"lookahead must be >= 0, got {lookahead}"
            )
        self._urgent_window = urgent_window
        self._lookahead = lookahead

    @property
    def name(self) -> str:
        return f"windowed-rarest-{self._urgent_window}+{self._lookahead}"

    def order(
        self,
        missing: list[int],
        next_needed: int | None,
        availability: dict[str, set[int]],
        rng: random.Random,
    ) -> list[int]:
        ordered = sorted(missing)
        if next_needed is None:
            head_base = ordered[0] if ordered else 0
        else:
            head_base = next_needed
        head = [
            index
            for index in ordered
            if index < head_base + self._urgent_window
        ]
        window = [
            index
            for index in ordered
            if head_base + self._urgent_window
            <= index
            < head_base + self._urgent_window + self._lookahead
        ]
        tail = [
            index
            for index in ordered
            if index >= head_base + self._urgent_window + self._lookahead
        ]
        counts = _holder_counts(window, availability)
        shuffled = list(window)
        rng.shuffle(shuffled)
        window_sorted = sorted(
            shuffled, key=lambda index: counts[index]
        )
        return head + window_sorted + tail


def _holder_counts(
    indices: list[int], availability: dict[str, set[int]]
) -> dict[int, int]:
    counts = {index: 0 for index in indices}
    for held in availability.values():
        for index in indices:
            if index in held:
                counts[index] += 1
    return counts
