"""BitTorrent-like P2P streaming protocol.

The paper's application "implemented our own BitTorrent like messaging
protocol" over Java sockets; the seeder splices the video and every
peer both leeches and seeds.  This package is that application:

* :mod:`repro.p2p.wire` — length-prefixed framing;
* :mod:`repro.p2p.messages` — the message set and its byte codec;
* :mod:`repro.p2p.tracker` — swarm membership;
* :mod:`repro.p2p.peer` — plumbing shared by all peers;
* :mod:`repro.p2p.seeder` / :mod:`repro.p2p.leecher` — the two roles;
* :mod:`repro.p2p.churn` — peer-departure model;
* :mod:`repro.p2p.swarm` — end-to-end session orchestration;
* :mod:`repro.p2p.scale` — vectorized cohort/fluid backends for
  10³–10⁶-peer sessions (``SwarmConfig.fidelity``).
"""

from .churn import ChurnModel
from .leecher import Leecher, LeecherConfig
from .messages import (
    Bitfield,
    Goodbye,
    Handshake,
    Have,
    Manifest,
    ManifestRequest,
    Message,
    Piece,
    Request,
    RequestRejected,
    decode_message,
    encode_message,
)
from .scale import CohortSwarm, FluidSwarm
from .seeder import Seeder
from .selection import (
    PieceSelector,
    RarestFirstSelector,
    SequentialSelector,
    WindowedRarestSelector,
)
from .swarm import FIDELITY_TIERS, Swarm, SwarmConfig, build_swarm
from .tracker import Tracker
from .wire import FrameDecoder, encode_frame

__all__ = [
    "Bitfield",
    "ChurnModel",
    "CohortSwarm",
    "FIDELITY_TIERS",
    "FluidSwarm",
    "FrameDecoder",
    "Goodbye",
    "Handshake",
    "Have",
    "Leecher",
    "LeecherConfig",
    "Manifest",
    "ManifestRequest",
    "Message",
    "Piece",
    "PieceSelector",
    "RarestFirstSelector",
    "Request",
    "RequestRejected",
    "Seeder",
    "SequentialSelector",
    "Swarm",
    "WindowedRarestSelector",
    "SwarmConfig",
    "Tracker",
    "build_swarm",
    "decode_message",
    "encode_frame",
    "encode_message",
]
