"""Adaptive-bitrate (ABR) streaming — the approach the paper argues
against.

"Their clients determine a bit-rate based on the available bandwidth.
As they keep the duration of the segment constant and vary the
bit-rates, it will degrade the video quality ...  Instead of varying
the bit-rate, we can vary the segment duration."

To quantify that argument, this package implements the contrasted
baseline: a multi-bitrate ladder (:mod:`repro.abr.ladder`), the two
classic client policies (:mod:`repro.abr.policy` — throughput-based
and buffer-based), and a client-server streaming session
(:mod:`repro.abr.session`) reporting stalls *and* delivered quality.
"""

from .ladder import BitrateLadder, Rendition, encode_ladder
from .policy import AbrPolicy, BufferBasedAbr, ThroughputAbr
from .session import AbrMetrics, AbrSession, AbrSessionConfig

__all__ = [
    "AbrMetrics",
    "AbrPolicy",
    "AbrSession",
    "AbrSessionConfig",
    "BitrateLadder",
    "BufferBasedAbr",
    "Rendition",
    "ThroughputAbr",
    "encode_ladder",
]
