"""ABR rendition-selection policies.

The two families the measurement literature (the paper's reference
[7], "Confused, Timid, and Unstable") contrasts:

* **throughput-based** — pick the highest bitrate below a safety
  fraction of the estimated throughput;
* **buffer-based** (BBA-style) — map the buffer level linearly from a
  reservoir to a cushion onto the ladder, ignoring throughput.
"""

from __future__ import annotations

import abc

from ..errors import ConfigurationError
from .ladder import BitrateLadder


class AbrPolicy(abc.ABC):
    """Strategy interface: choose a ladder rung for the next segment."""

    @property
    @abc.abstractmethod
    def name(self) -> str:
        """Short policy name used in reports."""

    @abc.abstractmethod
    def choose(
        self,
        ladder: BitrateLadder,
        buffer_level: float,
        throughput_estimate: float | None,
        current_rung: int,
    ) -> int:
        """Pick the rung (index into the ladder) for the next segment.

        Args:
            ladder: the available renditions.
            buffer_level: seconds of video buffered ahead.
            throughput_estimate: recent bytes/second, None early on.
            current_rung: the rung of the previous segment.
        """


class ThroughputAbr(AbrPolicy):
    """Highest bitrate under ``safety * estimated throughput``.

    Args:
        safety: fraction of the estimate considered spendable.
    """

    def __init__(self, safety: float = 0.8) -> None:
        if not 0.0 < safety <= 1.0:
            raise ConfigurationError(
                f"safety must be in (0, 1], got {safety}"
            )
        self._safety = safety

    @property
    def name(self) -> str:
        return f"throughput-{self._safety:g}"

    def choose(
        self,
        ladder: BitrateLadder,
        buffer_level: float,
        throughput_estimate: float | None,
        current_rung: int,
    ) -> int:
        if throughput_estimate is None:
            return 0  # start cautious, like real players
        budget = self._safety * throughput_estimate * 8  # bits/s
        chosen = 0
        for index, bitrate in enumerate(ladder.bitrates):
            if bitrate <= budget:
                chosen = index
        return chosen


class BufferBasedAbr(AbrPolicy):
    """BBA-style: rung from buffer level, reservoir to cushion.

    Below ``reservoir`` seconds of buffer the lowest rung is used;
    above ``reservoir + cushion`` the highest; linear in between.

    Args:
        reservoir: panic threshold, seconds.
        cushion: width of the linear ramp, seconds.
    """

    def __init__(self, reservoir: float = 8.0, cushion: float = 16.0) -> None:
        if reservoir < 0:
            raise ConfigurationError(
                f"reservoir must be >= 0, got {reservoir}"
            )
        if cushion <= 0:
            raise ConfigurationError(
                f"cushion must be positive, got {cushion}"
            )
        self._reservoir = reservoir
        self._cushion = cushion

    @property
    def name(self) -> str:
        return f"buffer-{self._reservoir:g}+{self._cushion:g}"

    def choose(
        self,
        ladder: BitrateLadder,
        buffer_level: float,
        throughput_estimate: float | None,
        current_rung: int,
    ) -> int:
        if buffer_level <= self._reservoir:
            return 0
        if buffer_level >= self._reservoir + self._cushion:
            return len(ladder) - 1
        fraction = (buffer_level - self._reservoir) / self._cushion
        return min(
            len(ladder) - 1, int(fraction * len(ladder))
        )


class FixedRung(AbrPolicy):
    """Always the same rung — the non-adaptive control.

    Args:
        rung: ladder index to pin (negative indexes from the top).
    """

    def __init__(self, rung: int = -1) -> None:
        self._rung = rung

    @property
    def name(self) -> str:
        return f"fixed-rung-{self._rung}"

    def choose(
        self,
        ladder: BitrateLadder,
        buffer_level: float,
        throughput_estimate: float | None,
        current_rung: int,
    ) -> int:
        return self._rung % len(ladder)
