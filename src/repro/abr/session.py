"""A single ABR client streaming from a CDN.

The classic HLS loop: fetch segments sequentially over one connection
at a time, re-estimate throughput after each, pick the next segment's
rendition with the configured policy, and pause fetching when the
buffer is full.  Reports the paper's observables *plus* delivered
quality — the quantity duration-adaptive splicing preserves and ABR
sacrifices.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from ..bwest.estimators import WindowedThroughputEstimator
from ..errors import ConfigurationError
from ..net.engine import Simulator
from ..net.flownet import FlowNetwork
from ..net.tcp import TcpParams, start_tcp_transfer
from ..net.topology import StarTopology, per_link_loss
from ..player.metrics import StreamingMetrics
from ..player.player import Player, PlayerState
from .ladder import BitrateLadder
from .policy import AbrPolicy


@dataclass(frozen=True, slots=True)
class AbrSessionConfig:
    """Client-server ABR session parameters.

    Attributes:
        bandwidth: client access bandwidth, bytes/second.
        server_bandwidth: CDN bandwidth; ``None`` uses 8x the client.
        rtt: client-server round-trip time, seconds.
        path_loss: end-to-end loss probability.
        max_buffer: stop fetching above this many buffered seconds.
        tcp_params: transport model parameters.
    """

    bandwidth: float
    server_bandwidth: float | None = None
    rtt: float = 0.05
    path_loss: float = 0.05
    max_buffer: float = 30.0
    tcp_params: TcpParams = field(default_factory=TcpParams)

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be positive, got {self.bandwidth}"
            )
        if self.max_buffer <= 0:
            raise ConfigurationError(
                f"max_buffer must be positive, got {self.max_buffer}"
            )


@dataclass(slots=True)
class AbrMetrics:
    """Streaming metrics plus quality accounting.

    Attributes:
        streaming: the stall/startup observables.
        rungs: rung chosen per segment, in order.
        bitrates: bitrate (bits/s) per segment, in order.
    """

    streaming: StreamingMetrics
    rungs: list[int] = field(default_factory=list)
    bitrates: list[float] = field(default_factory=list)

    @property
    def mean_bitrate(self) -> float:
        """Mean delivered bitrate across segments, bits/second."""
        return statistics.fmean(self.bitrates) if self.bitrates else 0.0

    @property
    def switches(self) -> int:
        """Rendition switches (instability, per the paper's ref [7])."""
        return sum(
            1 for a, b in zip(self.rungs, self.rungs[1:]) if a != b
        )

    @property
    def lowest_rung_fraction(self) -> float:
        """Fraction of segments delivered at the bottom rung."""
        if not self.rungs:
            return 0.0
        return sum(1 for rung in self.rungs if rung == 0) / len(
            self.rungs
        )


class AbrSession:
    """One ABR client against one CDN server.

    Args:
        ladder: the aligned multi-bitrate renditions.
        policy: the rendition-selection policy.
        config: network and buffering parameters.
    """

    def __init__(
        self,
        ladder: BitrateLadder,
        policy: AbrPolicy,
        config: AbrSessionConfig,
    ) -> None:
        self._ladder = ladder
        self._policy = policy
        self._config = config
        self.sim = Simulator()
        self.network = FlowNetwork(self.sim)
        self.topology = StarTopology()
        loss = per_link_loss(config.path_loss)
        server_bandwidth = (
            config.server_bandwidth
            if config.server_bandwidth is not None
            else 8 * config.bandwidth
        )
        self._server = self.topology.add_node(
            "cdn", server_bandwidth, config.rtt / 4.0, loss
        )
        self._client = self.topology.add_node(
            "client", config.bandwidth, config.rtt / 4.0, loss
        )
        self._estimator = WindowedThroughputEstimator(window=12.0)
        self.metrics = AbrMetrics(
            streaming=StreamingMetrics(session_start=0.0)
        )
        durations = [
            ladder.segment_duration(i)
            for i in range(ladder.segment_count)
        ]
        self.player = Player(
            self.sim, durations, metrics=self.metrics.streaming
        )
        self._next_segment = 0
        self._current_rung = 0
        self._fetching = False

    def run(self, max_time: float = 3600.0) -> AbrMetrics:
        """Stream the whole video; returns the collected metrics."""
        self.sim.schedule(0.0, self._fetch_next)
        self.sim.run(until=max_time)
        return self.metrics

    # ------------------------------------------------------------------

    def _buffer_level(self) -> float:
        if self.player.state is PlayerState.PLAYING:
            return self.player.buffered_playtime()
        # Before startup the whole contiguous run counts.
        end = self.player.buffer.contiguous_through(0)
        return sum(
            self.player.buffer.duration_of(i) for i in range(end)
        )

    def _fetch_next(self) -> None:
        if self._fetching:
            return
        if self._next_segment >= self._ladder.segment_count:
            return
        buffer_level = self._buffer_level()
        if buffer_level >= self._config.max_buffer:
            # Buffer full: resume when one segment's worth drained.
            self.sim.schedule(
                max(
                    0.1,
                    buffer_level - self._config.max_buffer + 1.0,
                ),
                self._fetch_next,
            )
            return
        rung = self._policy.choose(
            self._ladder,
            buffer_level,
            self._estimator.estimate(self.sim.now),
            self._current_rung,
        )
        segment_index = self._next_segment
        size = self._ladder.segment_size(rung, segment_index)
        self._fetching = True
        started = self.sim.now
        start_tcp_transfer(
            self.sim,
            self.network,
            self.topology.route(self._server, self._client),
            size,
            params=self._config.tcp_params,
            on_complete=lambda t: self._on_segment(
                segment_index, rung, size, started
            ),
        )

    def _on_segment(
        self, index: int, rung: int, size: int, started: float
    ) -> None:
        self._fetching = False
        self._estimator.record(self.sim.now, size)
        self.metrics.rungs.append(rung)
        self.metrics.bitrates.append(self._ladder.bitrates[rung])
        self.metrics.streaming.bytes_downloaded += size
        self.metrics.streaming.segments_downloaded += 1
        self._current_rung = rung
        self._next_segment = index + 1
        self.player.segment_available(index)
        self._fetch_next()
