"""Multi-bitrate encoding ladders.

An ABR service encodes the *same content* at several bitrates and
splices every rendition on aligned segment boundaries so the client
can switch at any boundary.  The ladder here encodes one scene plan at
each bitrate and duration-splices all renditions identically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.segments import SpliceResult
from ..core.splicer import DurationSplicer
from ..errors import ConfigurationError
from ..video.encoder import EncoderConfig, SyntheticEncoder
from ..video.scene import generate_scene_plan

#: The ladder used by the transport study (bits/second); the top rung
#: matches the paper's 1 Mbps nominal video.
DEFAULT_BITRATES: tuple[float, ...] = (
    237_500.0,
    475_000.0,
    712_500.0,
    950_000.0,
)


@dataclass(frozen=True, slots=True)
class Rendition:
    """One rung of the ladder.

    Attributes:
        bitrate: realized mean bitrate, bits/second.
        splice: the rendition's segments (aligned across renditions).
    """

    bitrate: float
    splice: SpliceResult


class BitrateLadder:
    """Aligned renditions of one video at several bitrates."""

    def __init__(self, renditions: list[Rendition]) -> None:
        if not renditions:
            raise ConfigurationError("ladder must have >= 1 rendition")
        ordered = sorted(renditions, key=lambda r: r.bitrate)
        count = len(ordered[0].splice)
        for rendition in ordered[1:]:
            if len(rendition.splice) != count:
                raise ConfigurationError(
                    "renditions must have aligned segment counts; got "
                    f"{len(rendition.splice)} vs {count}"
                )
        self._renditions = tuple(ordered)

    @property
    def renditions(self) -> tuple[Rendition, ...]:
        """Rungs in ascending bitrate order."""
        return self._renditions

    @property
    def bitrates(self) -> tuple[float, ...]:
        """Available bitrates, ascending."""
        return tuple(r.bitrate for r in self._renditions)

    @property
    def segment_count(self) -> int:
        """Segments per rendition."""
        return len(self._renditions[0].splice)

    @property
    def top(self) -> Rendition:
        """The highest-quality rung."""
        return self._renditions[-1]

    @property
    def bottom(self) -> Rendition:
        """The lowest-quality rung."""
        return self._renditions[0]

    def rung(self, index: int) -> Rendition:
        """The ``index``-th rung (ascending bitrate)."""
        return self._renditions[index]

    def __len__(self) -> int:
        return len(self._renditions)

    def segment_size(self, rung_index: int, segment_index: int) -> int:
        """Size in bytes of one segment of one rendition."""
        rendition = self._renditions[rung_index]
        return rendition.splice.segments[segment_index].size

    def segment_duration(self, segment_index: int) -> float:
        """Playback duration of a segment (same across renditions)."""
        return self._renditions[0].splice.segments[segment_index].duration


def encode_ladder(
    seed: int = 0,
    duration: float = 120.0,
    bitrates: tuple[float, ...] = DEFAULT_BITRATES,
    segment_duration: float = 4.0,
    config: EncoderConfig | None = None,
) -> BitrateLadder:
    """Encode one scene plan at every ladder bitrate and splice it.

    The scene plan (and thus GOP structure and segment alignment) is
    shared across renditions, exactly as a production packager aligns
    its ladder.

    Args:
        seed: scene-plan and jitter seed.
        duration: video duration, seconds.
        bitrates: ladder rungs in bits/second.
        segment_duration: aligned segment duration, seconds.
        config: base encoder configuration (bitrate is overridden).

    Returns:
        The aligned :class:`BitrateLadder`.
    """
    if not bitrates:
        raise ConfigurationError("bitrates must be non-empty")
    plan = generate_scene_plan(duration, random.Random(seed))
    base = config or EncoderConfig()
    splicer = DurationSplicer(segment_duration)
    renditions = []
    for bitrate in bitrates:
        encoder_config = EncoderConfig(
            fps=base.fps,
            bitrate=bitrate,
            keyframe_interval=base.keyframe_interval,
            b_frames=base.b_frames,
            i_weight=base.i_weight,
            p_weight=base.p_weight,
            b_weight=base.b_weight,
            size_jitter=base.size_jitter,
            open_gop=base.open_gop,
        )
        stream = SyntheticEncoder(encoder_config).encode(
            plan, random.Random(seed + 1)
        )
        renditions.append(
            Rendition(bitrate=bitrate, splice=splicer.splice(stream))
        )
    return BitrateLadder(renditions)
