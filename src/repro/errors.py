"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError` so
applications can catch library failures with a single ``except`` clause
while still distinguishing subsystem-specific failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An object was constructed or configured with invalid parameters."""


class VideoError(ReproError):
    """Base class for errors in the synthetic video subsystem."""


class BitstreamError(VideoError):
    """A bitstream violates MPEG-4 structural invariants."""


class SpliceError(ReproError):
    """A splicing operation could not produce valid segments."""


class NetworkError(ReproError):
    """Base class for errors in the network simulator."""


class SimulationError(NetworkError):
    """The discrete-event engine was driven into an invalid state."""


class RoutingError(NetworkError):
    """No path exists between two nodes in the topology."""


class LinkError(NetworkError):
    """A link was configured or used incorrectly."""


class ProtocolError(ReproError):
    """Base class for P2P wire-protocol violations."""


class WireFormatError(ProtocolError):
    """Bytes on the wire could not be decoded into a message."""


class HandshakeError(ProtocolError):
    """Peers failed to agree on a session during handshake."""


class PeerError(ReproError):
    """A peer was driven into an invalid state."""


class SwarmError(ReproError):
    """Swarm-level orchestration failure (e.g. no seeder available)."""


class PlaybackError(ReproError):
    """The player or playback buffer was used incorrectly."""


class RSpecError(ReproError):
    """An RSpec document could not be generated or parsed."""


class ExperimentError(ReproError):
    """An experiment configuration or run is invalid."""


class SweepError(ExperimentError):
    """One or more runs of a parallel sweep failed.

    The message names every failing (cell, seed) so a crashed worker
    is attributable without re-running the sweep.
    """


class StoreError(ExperimentError):
    """The content-addressed result store was misused or a sweep plan
    is malformed or stale.

    Covers caching a failed outcome, unreadable/invalid
    ``repro.sweep/1`` plan documents, and plan/code digest drift
    (a shard plan built by a different code version).
    """


class OpsError(ReproError):
    """An operational-telemetry document is malformed or unreadable.

    Covers ``repro.ops/1`` span logs that fail to parse or validate
    and shard heartbeat files with schema drift — the wall-clock
    observability layer (:mod:`repro.obs.ops`), not the sim-time
    tracer.
    """


class TraceError(ReproError):
    """A trace, metric, or exporter was configured or parsed incorrectly."""


class LintError(ReproError):
    """A lint run was misconfigured or a source file is unusable.

    Covers bad rule selections, unreadable/unparseable sources,
    malformed suppression comments, and ``repro.lint/1`` payload
    drift — *not* rule findings, which are data, not exceptions.
    """


class ArtifactError(ReproError):
    """A benchmark artifact is missing, malformed, or schema-invalid."""


class BenchError(ReproError):
    """A benchmark suite was configured or driven incorrectly."""
