"""The pre-incremental flow solver, kept as an executable specification.

:class:`ReferenceFlowNetwork` is the naive solver
:class:`~repro.net.flownet.FlowNetwork` replaced: every flow
arrival/departure/cap/capacity change triggers a *global* progressive
filling over all flows, byte accounting walks every flow's whole route
on every advance, and completions rescan every flow.  It is
deliberately simple — the allocation it produces *defines* correctness
for the incremental solver:

* the property tests in ``tests/net/test_incremental_solver.py``
  cross-check the incremental solver against it on randomized
  topologies, caps, and update schedules;
* ``benchmarks/bench_flownet.py`` uses it as the baseline the
  incremental solver's speedup is measured against.

It mirrors the public :class:`~repro.net.flownet.FlowNetwork` surface
(``start_flow`` / ``cancel_flow`` / ``set_rate_limit`` /
``set_capacity`` / ``bytes_carried`` / ``capacity_generation``) so the
TCP model and benchmark harnesses can drive either interchangeably.
Do not use it outside tests and benchmarks.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..errors import NetworkError
from .engine import EventHandle, Simulator
from .flownet import _COMPLETION_EPSILON, _RATE_EPSILON, Flow
from .link import Link


class ReferenceFlowNetwork:
    """Globally re-solving max-min flow network (the pre-PR solver)."""

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._flows: list[Flow] = []
        self._flow_ids = itertools.count(1)
        self._last_update = 0.0
        self._completion_event: EventHandle | None = None
        self._link_bytes: dict[str, float] = {}
        self._capacity_generation = 0

    @property
    def sim(self) -> Simulator:
        """The simulator driving this network."""
        return self._sim

    @property
    def active_flows(self) -> list[Flow]:
        """Currently-active flows (snapshot copy)."""
        return list(self._flows)

    @property
    def capacity_generation(self) -> int:
        """Bumped on every :meth:`set_capacity` (API parity)."""
        return self._capacity_generation

    def flows_on(self, link: Link) -> int:
        """Number of active flows traversing ``link``."""
        return sum(1 for flow in self._flows if link in flow.route)

    def bytes_carried(self, link: Link) -> float:
        """Cumulative bytes this link has carried (for utilization)."""
        self._advance()
        return self._link_bytes.get(link.name, 0.0)

    def start_flow(
        self,
        route: list[Link] | tuple[Link, ...],
        size: float,
        rate_limit: float | None = None,
        on_complete: Callable[[Flow], None] | None = None,
        min_efficient_rate: float = 0.0,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes over ``route``."""
        route = tuple(route)
        if not route:
            raise NetworkError("flow route must contain at least one link")
        if size <= 0:
            raise NetworkError(f"flow size must be positive, got {size}")
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if min_efficient_rate < 0:
            raise NetworkError(
                f"min_efficient_rate must be >= 0, got {min_efficient_rate}"
            )
        self._advance()
        flow = Flow(
            next(self._flow_ids),
            route,
            size,
            rate_limit,
            on_complete,
            self._sim.now,
            min_efficient_rate,
        )
        self._flows.append(flow)
        self._recompute()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an active flow (no completion callback fires)."""
        if not flow.active:
            return
        self._advance()
        flow.cancelled = True
        self._flows.remove(flow)
        self._recompute()

    def set_rate_limit(self, flow: Flow, rate_limit: float | None) -> None:
        """Change a flow's rate cap; triggers global resharing."""
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if not flow.active:
            return
        self._advance()
        flow.rate_limit = rate_limit
        self._recompute()

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity at runtime."""
        self._advance()
        link.capacity = capacity
        self._capacity_generation += 1
        self._recompute()

    # ------------------------------------------------------------------
    # internals

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update."""
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                moved = flow._rate * elapsed
                flow.remaining = max(0.0, flow.remaining - moved)
                for link in flow.route:
                    self._link_bytes[link.name] = (
                        self._link_bytes.get(link.name, 0.0) + moved
                    )
        self._last_update = now

    def _recompute(self) -> None:
        """Re-solve all rates globally and reschedule the completion."""
        self._allocate_max_min()
        self._reschedule_completion()

    def _allocate_max_min(self) -> None:
        """Progressive-filling max-min fair allocation with rate caps."""
        unfrozen = set(self._flows)
        for flow in self._flows:
            flow._rate = 0.0
        link_remaining: dict[str, float] = {}
        link_unfrozen: dict[str, set[Flow]] = {}
        links: dict[str, Link] = {}
        for flow in self._flows:
            for link in flow.route:
                links[link.name] = link
                link_remaining.setdefault(link.name, link.capacity)
                link_unfrozen.setdefault(link.name, set()).add(flow)

        while unfrozen:
            delta = min(
                (
                    link_remaining[name] / len(members)
                    for name, members in link_unfrozen.items()
                    if members
                ),
                default=float("inf"),
            )
            # repro: lint-ok[D3] min() reduction is order-independent
            for flow in unfrozen:
                if flow.rate_limit is not None:
                    delta = min(delta, flow.rate_limit - flow._rate)
            if delta == float("inf"):
                break
            delta = max(delta, 0.0)

            if delta > 0:
                # repro: lint-ok[D3] same delta added to each flow
                for flow in unfrozen:
                    flow._rate += delta
                for name, members in link_unfrozen.items():
                    link_remaining[name] -= delta * len(members)

            newly_frozen = {
                flow
                # repro: lint-ok[D3] builds a set; order-free
                for flow in unfrozen
                if flow.rate_limit is not None
                and flow._rate >= flow.rate_limit - _RATE_EPSILON
            }
            for name, members in link_unfrozen.items():
                if link_remaining[name] <= _RATE_EPSILON * max(
                    1.0, links[name].capacity
                ):
                    newly_frozen |= members
            if not newly_frozen:
                if delta <= 0:
                    newly_frozen = set(unfrozen)
                else:
                    continue
            unfrozen -= newly_frozen
            for members in link_unfrozen.values():
                members -= newly_frozen

        for flow in self._flows:
            floor = flow.min_efficient_rate
            if floor > 0 and 0 < flow._rate < floor:
                flow._rate = flow._rate * flow._rate / floor

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        soonest: float | None = None
        for flow in self._flows:
            if flow._rate <= 0:
                continue
            eta = flow.remaining / flow._rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._completion_event = self._sim.schedule(
                soonest, self._on_completion_due
            )

    def _on_completion_due(self) -> None:
        self._completion_event = None
        self._advance()
        done = [
            flow
            for flow in self._flows
            if flow.remaining <= _COMPLETION_EPSILON
        ]
        for flow in done:
            flow.remaining = 0.0
            flow.completed_at = self._sim.now
            self._flows.remove(flow)
        self._recompute()
        for flow in done:
            if flow.on_complete is not None:
                flow.on_complete(flow)
