"""Analytic TCP connection model.

Each segment download in the paper's application opens a fresh TCP
connection over Java sockets.  Three first-order TCP behaviours decide
the experiment outcomes, and all three are modeled here:

1. **connection setup** — ~1.5 RTT of handshake before the first data
   byte, inflated by loss (SYN retransmissions);
2. **slow start** — the congestion window starts small and doubles
   every RTT, so short transfers never reach link speed (why many tiny
   segments waste bandwidth);
3. **loss-bounded steady state** — with loss probability ``p`` a TCP
   connection cannot exceed the Mathis limit
   ``MSS / (RTT * sqrt(2p/3))`` regardless of link capacity (why peers
   must download several segments in parallel to fill a fat link).

The model drives a :class:`~repro.net.flownet.Flow` whose rate cap
follows the congestion window; actual sharing with competing transfers
is solved by the flow network.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from ..errors import NetworkError
from ..obs.events import (
    FlowRateChanged,
    TransferCancelled,
    TransferCompleted,
    TransferStarted,
)
from ..obs.tracer import NULL_TRACER, Tracer
from ..units import DEFAULT_MSS
from .engine import EventHandle, Simulator
from .flownet import Flow, FlowNetwork
from .link import Link, path_latency, path_loss_rate

#: RTT floor so zero-latency test topologies don't divide by zero.
_MIN_RTT = 1e-4


@dataclass(frozen=True, slots=True)
class TcpParams:
    """Tunables of the transport model.

    The defaults model loss-based TCP (Reno/Cubic-flavoured).  Setting
    ``loss_capped=False`` models a delay-based transport in the
    PPSPP/Libswift (LEDBAT) family the paper's related work cites:
    losses neither bound the steady-state rate (no Mathis ceiling) nor
    collapse small windows (no retransmission-timeout floor), and the
    lightweight datagram handshake costs a single RTT.

    Attributes:
        mss: maximum segment size in bytes.
        initial_window: initial congestion window in MSS (RFC 6928's 10).
        handshake_rtts: RTTs consumed before the first data byte.
        loss_capped: whether loss bounds throughput (True for TCP,
            False for delay-based transports).
    """

    mss: int = DEFAULT_MSS
    initial_window: int = 10
    handshake_rtts: float = 1.5
    loss_capped: bool = True

    def __post_init__(self) -> None:
        if self.mss <= 0:
            raise NetworkError(f"mss must be positive, got {self.mss}")
        if self.initial_window < 1:
            raise NetworkError(
                f"initial_window must be >= 1, got {self.initial_window}"
            )
        if self.handshake_rtts < 0:
            raise NetworkError(
                f"handshake_rtts must be >= 0, got {self.handshake_rtts}"
            )

    def mathis_cap(self, rtt: float, loss_rate: float) -> float | None:
        """Loss-bounded steady-state rate in bytes/s.

        None when lossless or when the transport is not loss-capped.
        """
        if loss_rate <= 0 or not self.loss_capped:
            return None
        return self.mss / (rtt * math.sqrt(2.0 * loss_rate / 3.0))

    def handshake_delay(self, rtt: float, loss_rate: float) -> float:
        """Connection setup time, inflated by loss retransmissions."""
        return self.handshake_rtts * rtt / (1.0 - loss_rate)


def ppspp_params(mss: int = DEFAULT_MSS) -> TcpParams:
    """Transport parameters for a PPSPP/Libswift-style UDP protocol.

    One-RTT datagram handshake, delay-based congestion control (no
    Mathis ceiling, no timeout floor).
    """
    return TcpParams(
        mss=mss,
        initial_window=10,
        handshake_rtts=1.0,
        loss_capped=False,
    )


class TcpTransfer:
    """One TCP transfer in progress.

    Create via :func:`start_tcp_transfer`.  Lifecycle: handshake delay,
    then a flow whose rate cap doubles each RTT (slow start) until it
    reaches the Mathis ceiling, then steady state until completion.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        route: tuple[Link, ...],
        size: float,
        params: TcpParams,
        on_complete: Callable[["TcpTransfer"], None] | None,
        tracer: Tracer = NULL_TRACER,
        label: str = "",
    ) -> None:
        self._sim = sim
        self._network = network
        self.route = route
        self.size = size
        self.params = params
        self._on_complete = on_complete
        self._tracer = tracer
        self.label = label
        self.rtt = max(2.0 * path_latency(route), _MIN_RTT)
        self.loss_rate = path_loss_rate(route)
        self.started_at = sim.now
        self.completed_at: float | None = None
        self.cancelled = False
        self._flow: Flow | None = None
        self._cwnd_segments = params.initial_window
        self._pending: EventHandle | None = None
        self._cap = params.mathis_cap(self.rtt, self.loss_rate)
        self._bottleneck = 0.0
        self._capacity_gen = -1
        self._pending = sim.schedule(
            params.handshake_delay(self.rtt, self.loss_rate),
            self._begin_data,
        )

    @property
    def active(self) -> bool:
        """Whether the transfer is still in progress."""
        return self.completed_at is None and not self.cancelled

    @property
    def duration(self) -> float | None:
        """Wall-clock seconds from open to last byte (None if active)."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def transferred(self) -> float:
        """Bytes delivered so far."""
        if self._flow is None:
            return 0.0 if self.active else self.size
        return self._flow.transferred

    @property
    def current_rate(self) -> float:
        """Instantaneous allocated rate in bytes/second."""
        return self._flow.rate if self._flow is not None else 0.0

    def cancel(self) -> None:
        """Abort the transfer; no completion callback will fire."""
        if not self.active:
            return
        if self._tracer.enabled:
            # Before flipping ``cancelled`` so ``transferred`` still
            # reads the live flow, not the post-cancel fallback.
            self._tracer.emit(
                TransferCancelled(
                    time=self._sim.now,
                    label=self.label,
                    transferred=self.transferred,
                )
            )
        self.cancelled = True
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        if self._flow is not None and self._flow.active:
            self._network.cancel_flow(self._flow)

    # ------------------------------------------------------------------

    def _window_rate(self) -> float:
        """Rate implied by the current congestion window."""
        rate = self._cwnd_segments * self.params.mss / self.rtt
        if self._cap is not None:
            rate = min(rate, self._cap)
        return rate

    def _begin_data(self) -> None:
        self._pending = None
        if self.cancelled:
            return
        if self._tracer.enabled:
            self._tracer.emit(
                TransferStarted(
                    time=self._sim.now,
                    label=self.label,
                    size=self.size,
                    rtt=self.rtt,
                    loss_rate=self.loss_rate,
                )
            )
        # The window floor (sub-MSS congestion windows cannot recover
        # losses via fast retransmit) only bites loss-based transports
        # on lossy paths.
        floor = (
            self.params.mss / self.rtt
            if self.loss_rate > 0 and self.params.loss_capped
            else 0.0
        )
        self._flow = self._network.start_flow(
            self.route,
            self.size,
            rate_limit=self._window_rate(),
            on_complete=self._on_flow_complete,
            min_efficient_rate=floor,
        )
        self._schedule_window_growth()

    def _path_bottleneck(self) -> float:
        """Smallest capacity along the route, cached between RTT ticks.

        The scan only re-runs when the network's capacity generation
        moved (a ``set_capacity`` happened somewhere), so steady-state
        window growth pays an O(1) check instead of an O(route) scan
        per RTT.
        """
        generation = self._network.capacity_generation
        if generation != self._capacity_gen:
            self._capacity_gen = generation
            self._bottleneck = min(link.capacity for link in self.route)
        return self._bottleneck

    def _schedule_window_growth(self) -> None:
        if self._cap is not None and self._window_rate() >= self._cap:
            return  # already at the loss ceiling; stop ramping
        bottleneck = self._path_bottleneck()
        if self._window_rate() >= 2.0 * bottleneck:
            # The window has outgrown the path; it no longer binds.
            # Leave only the Mathis ceiling (if any) in place so the
            # flow tracks future capacity changes.
            if self._flow is not None and self._flow.active:
                self._network.set_rate_limit(self._flow, self._cap)
                if self._tracer.enabled:
                    self._tracer.emit(
                        FlowRateChanged(
                            time=self._sim.now,
                            label=self.label,
                            rate=self._cap if self._cap is not None else 0.0,
                        )
                    )
            return
        self._pending = self._sim.schedule(self.rtt, self._grow_window)

    def _grow_window(self) -> None:
        self._pending = None
        if self.cancelled or self._flow is None or not self._flow.active:
            return
        self._cwnd_segments *= 2
        self._network.set_rate_limit(self._flow, self._window_rate())
        if self._tracer.enabled:
            self._tracer.emit(
                FlowRateChanged(
                    time=self._sim.now,
                    label=self.label,
                    rate=self._window_rate(),
                )
            )
        self._schedule_window_growth()

    def _on_flow_complete(self, flow: Flow) -> None:
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None
        self.completed_at = self._sim.now
        if self._tracer.enabled:
            self._tracer.emit(
                TransferCompleted(
                    time=self._sim.now,
                    label=self.label,
                    size=self.size,
                    duration=self.completed_at - self.started_at,
                )
            )
        if self._on_complete is not None:
            self._on_complete(self)


def start_tcp_transfer(
    sim: Simulator,
    network: FlowNetwork,
    route: list[Link] | tuple[Link, ...],
    size: float,
    params: TcpParams | None = None,
    on_complete: Callable[[TcpTransfer], None] | None = None,
    tracer: Tracer = NULL_TRACER,
    label: str = "",
) -> TcpTransfer:
    """Open a TCP connection and transfer ``size`` bytes over ``route``.

    Args:
        sim: the simulator.
        network: the flow network the data flow joins after handshake.
        route: ordered links from sender to receiver (non-empty).
        size: bytes to transfer (> 0).
        params: TCP tunables (defaults per :class:`TcpParams`).
        on_complete: called with the transfer when the last byte lands.
        tracer: where transfer lifecycle events go (disabled default).
        label: caller-chosen transfer name carried in every event
            (convention: ``src->dst#segment``).

    Returns:
        The in-flight :class:`TcpTransfer` (cancel with ``.cancel()``).
    """
    route = tuple(route)
    if not route:
        raise NetworkError("transfer route must contain at least one link")
    if size <= 0:
        raise NetworkError(f"transfer size must be positive, got {size}")
    return TcpTransfer(
        sim,
        network,
        route,
        size,
        params or TcpParams(),
        on_complete,
        tracer=tracer,
        label=label,
    )
