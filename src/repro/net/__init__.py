"""Discrete-event network simulator.

A flow-level model of the paper's GENI star topology:

* :mod:`repro.net.engine` — the event loop and simulated clock;
* :mod:`repro.net.link` — capacity/latency/loss links;
* :mod:`repro.net.flownet` — max-min fair bandwidth sharing across
  concurrent flows (progressive filling, re-solved incrementally:
  only link-connected components touched by an update recompute, and
  same-timestamp updates coalesce into one solve);
* :mod:`repro.net.tcp` — an analytic TCP connection model layered on
  the flow network: handshake, slow-start ramp, Mathis loss cap;
* :mod:`repro.net.topology` — nodes, star topology, routing.
"""

from .engine import EventHandle, Simulator
from .flownet import Flow, FlowNetwork
from .link import Link
from .monitor import LinkMonitor, LinkUtilization
from .tcp import TcpParams, TcpTransfer, ppspp_params, start_tcp_transfer
from .topology import Node, StarTopology

__all__ = [
    "EventHandle",
    "Flow",
    "FlowNetwork",
    "Link",
    "LinkMonitor",
    "LinkUtilization",
    "Node",
    "Simulator",
    "StarTopology",
    "TcpParams",
    "TcpTransfer",
    "ppspp_params",
    "start_tcp_transfer",
]
