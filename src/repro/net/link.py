"""Unidirectional network links."""

from __future__ import annotations

from typing import Iterable

from ..errors import LinkError


class Link:
    """A unidirectional link with capacity, propagation latency, and loss.

    A full-duplex physical link is modeled as two :class:`Link`
    objects, one per direction, so upload and download contention stay
    independent — as on the paper's GENI virtual links.

    Args:
        name: unique human-readable identifier.
        capacity: data rate in bytes/second (> 0); mutable at runtime
            via :attr:`capacity` to model variable-bandwidth scenarios.
        latency: one-way propagation delay in seconds (>= 0).
        loss_rate: packet loss probability in [0, 1).
    """

    __slots__ = ("name", "_capacity", "latency", "loss_rate")

    def __init__(
        self,
        name: str,
        capacity: float,
        latency: float = 0.0,
        loss_rate: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise LinkError(f"link {name}: capacity must be > 0: {capacity}")
        if latency < 0:
            raise LinkError(f"link {name}: latency must be >= 0: {latency}")
        if not 0.0 <= loss_rate < 1.0:
            raise LinkError(
                f"link {name}: loss_rate must be in [0, 1): {loss_rate}"
            )
        self.name = name
        self._capacity = capacity
        self.latency = latency
        self.loss_rate = loss_rate

    @property
    def capacity(self) -> float:
        """Link data rate in bytes/second."""
        return self._capacity

    @capacity.setter
    def capacity(self, value: float) -> None:
        if value <= 0:
            raise LinkError(
                f"link {self.name}: capacity must be > 0: {value}"
            )
        self._capacity = value

    def __repr__(self) -> str:
        return (
            f"Link({self.name!r}, capacity={self._capacity:.0f}B/s, "
            f"latency={self.latency * 1000:.1f}ms, loss={self.loss_rate})"
        )


def path_latency(links: Iterable[Link]) -> float:
    """One-way propagation latency of a path, in seconds."""
    return sum(link.latency for link in links)


def path_loss_rate(links: Iterable[Link]) -> float:
    """End-to-end loss probability of a path (independent per link)."""
    survive = 1.0
    for link in links:
        survive *= 1.0 - link.loss_rate
    return 1.0 - survive
