"""Discrete-event simulation engine.

A minimal, deterministic event loop: events are ``(time, seq,
callback)`` triples in a heap; ties in time break by scheduling order
(``seq``), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
from time import perf_counter
from typing import TYPE_CHECKING, Any, Callable

from ..errors import SimulationError
from ..obs.events import SimulationCompleted, SimulationStarted

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.profile import EngineProfile
    from ..obs.tracer import Tracer


class EventHandle:
    """A scheduled event that can be cancelled before it fires."""

    __slots__ = ("time", "_seq", "_callback", "_args", "_cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple[Any, ...],
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self._seq = seq
        self._callback = callback
        self._args = args
        self._cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing (idempotent)."""
        if self._cancelled:
            return
        self._cancelled = True
        # Keep the owning simulator's live-event count exact: the
        # handle leaves the count the moment it is cancelled, not when
        # the stale heap entry is eventually popped.  ``_sim`` is None
        # once the event has been popped, so a late cancel (after the
        # callback already fired) cannot corrupt the count.
        sim = self._sim
        if sim is not None:
            self._sim = None
            sim._live -= 1

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self._cancelled

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.time, self._seq) < (other.time, other._seq)

    def _fire(self) -> None:
        self._callback(*self._args)


class Simulator:
    """The simulated clock and event queue.

    Typical use::

        sim = Simulator()
        sim.schedule(1.5, my_callback, arg)
        sim.run()

    Args:
        tracer: optional event tracer; when enabled, each ``run``
            brackets its events with ``SimulationStarted`` /
            ``SimulationCompleted``.
        profile: optional :class:`~repro.obs.profile.EngineProfile`
            accumulating per-handler-category wall time.  Profiling
            never touches the simulated clock — results are identical
            with it on or off.
    """

    def __init__(
        self,
        tracer: "Tracer | None" = None,
        profile: "EngineProfile | None" = None,
    ) -> None:
        self._now = 0.0
        self._seq = 0
        self._queue: list[EventHandle] = []
        self._live = 0
        self._running = False
        self._tracer = tracer
        self.profile = profile
        self._events_fired = 0
        self._barriers: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_fired(self) -> int:
        """Total callbacks the event loop has executed."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events.

        O(1): backed by a live counter maintained on schedule, cancel
        and pop rather than a scan of the heap (which still holds
        cancelled entries until they surface).
        """
        return self._live

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now.

        Args:
            delay: non-negative offset from the current time.
            callback: function invoked when the event fires.
            *args: positional arguments for the callback.

        Returns:
            A cancellable :class:`EventHandle`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time}, current time is {self._now}"
            )
        self._seq += 1
        event = EventHandle(
            max(time, self._now), self._seq, callback, args, self
        )
        heapq.heappush(self._queue, event)
        self._live += 1
        return event

    def call_at_timestamp_end(self, callback: Callable[[], None]) -> None:
        """Run ``callback`` once all events at the current instant fired.

        The *end-of-timestamp barrier*: callbacks registered here run
        after every event scheduled at the current simulated time has
        been processed, and strictly before the clock advances (or the
        run returns).  Components use it to coalesce a burst of
        same-instant updates into one deferred recomputation.

        Barrier callbacks are not events: they consume no sequence
        number, do not count toward :attr:`events_fired`, and may
        schedule ordinary events (including at the current time, which
        re-opens the timestamp and re-arms any barriers registered
        during the drain).
        """
        self._barriers.append(callback)

    def _drain_barriers(self) -> None:
        barriers = self._barriers
        while barriers:
            pending = barriers[:]
            barriers.clear()
            for callback in pending:
                callback()

    def run(self, until: float | None = None) -> None:
        """Process events in time order.

        Args:
            until: stop once the clock would pass this time (the event
                at exactly ``until`` still fires); ``None`` runs until
                the queue drains.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly")
        self._running = True
        tracer = self._tracer
        tracing = tracer is not None and tracer.enabled
        profile = self.profile
        if tracing:
            tracer.emit(
                SimulationStarted(
                    time=self._now, pending=self.pending_events
                )
            )
        wall_started = perf_counter() if tracing else 0.0
        fired = 0
        # Hot loop: locals beat attribute loads, the time limit is a
        # plain float compare (inf when unbounded), and cancelled
        # entries are discarded without touching the live counter
        # (cancel() already removed them from it).  End-of-timestamp
        # barriers drain whenever the next live event would move the
        # clock (and when the queue runs dry), before time advances.
        queue = self._queue
        pop = heapq.heappop
        barriers = self._barriers
        limit = float("inf") if until is None else until
        try:
            while queue or barriers:
                if not queue:
                    self._drain_barriers()
                    if not queue:
                        break
                    continue
                event = queue[0]
                if event._cancelled:
                    pop(queue)
                    continue
                time = event.time
                if barriers and time > self._now:
                    self._drain_barriers()
                    continue
                if time > limit:
                    break
                pop(queue)
                event._sim = None
                self._live -= 1
                self._now = time
                fired += 1
                if profile is None:
                    event._callback(*event._args)
                else:
                    handler_started = perf_counter()
                    event._callback(*event._args)
                    profile.record(
                        event._callback, perf_counter() - handler_started
                    )
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._events_fired += fired
            self._running = False
        if tracing:
            tracer.emit(
                SimulationCompleted(
                    time=self._now,
                    events_fired=fired,
                    wall_seconds=perf_counter() - wall_started,
                )
            )

    def run_until_idle(self, max_time: float = 1e9) -> None:
        """Run until no events remain, guarding against runaway loops.

        Raises:
            SimulationError: if the clock exceeds ``max_time`` with
                events still pending (almost always a scheduling bug).
        """
        self.run(until=max_time)
        if self.pending_events:
            raise SimulationError(
                f"simulation still has {self.pending_events} events pending "
                f"at the {max_time}s safety limit"
            )
