"""Flow-level bandwidth sharing with max-min fairness, solved incrementally.

Concurrent transfers are *fluid flows* over routes of links.  Whenever
the set of flows (or a capacity or per-flow rate cap) changes, rates
are re-solved by progressive filling: all flows' rates rise together
until a link saturates or a flow hits its cap, those flows freeze, and
filling continues — the textbook max-min fair allocation.

This is the standard abstraction for simulating TCP sharing at the
timescale of segment downloads: each flow's cap is supplied by the TCP
model (slow-start ramp, Mathis loss ceiling) and the network solves the
induced sharing exactly instead of simulating packets.

Two structural facts make the solve incremental without changing a
single allocated byte:

* **Max-min decomposes over link-connected components.**  Flows that
  share no link (directly or transitively) cannot influence each
  other's rates, so the network partitions its flows into components
  and re-runs progressive filling only over the component(s) an update
  touched; untouched components keep their cached rates.  A removal may
  split a component — connectivity is re-derived lazily at the next
  solve of that component.

* **Same-timestamp updates coalesce.**  Rates only matter across
  intervals of nonzero simulated time, so a burst of updates landing at
  one instant (window ramps, multi-flow churn) marks components dirty
  and defers the solve to the engine's end-of-timestamp barrier
  (:meth:`~repro.net.engine.Simulator.call_at_timestamp_end`) — one
  re-solve instead of one per call.  Reading :attr:`Flow.rate` flushes
  pending work first, so callers always observe solved rates.

The naive solver this replaces (global re-solve on every update,
per-flow per-link byte accounting, full completion rescans) survives as
:class:`repro.net.reference.ReferenceFlowNetwork` — the executable
specification the property tests cross-check against.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Iterable

from ..errors import NetworkError
from .engine import EventHandle, Simulator
from .link import Link

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.metrics import MetricsRegistry

#: Bytes below which a flow counts as complete (float-drift guard).
_COMPLETION_EPSILON = 1e-3
#: Rate increments below this are treated as zero in progressive filling.
_RATE_EPSILON = 1e-9
#: Relative slack when deciding whether a component *might* hold a flow
#: within :data:`_COMPLETION_EPSILON` of completion.  The cached
#: estimate extrapolates linearly with the same rates the advance loop
#: uses, so it can drift from the advanced ``remaining`` only by
#: accumulated rounding — orders of magnitude below this slack.  The
#: slack errs toward scanning a component that turns out to have
#: nothing due, which costs time but never changes behaviour.
_SWEEP_SLACK = 1e-6


class Flow:
    """One fluid transfer across a route of links.

    Created via :meth:`FlowNetwork.start_flow`; read-only for callers.
    """

    __slots__ = (
        "id",
        "route",
        "size",
        "remaining",
        "_rate",
        "rate_limit",
        "min_efficient_rate",
        "on_complete",
        "started_at",
        "completed_at",
        "cancelled",
        "_network",
    )

    def __init__(
        self,
        flow_id: int,
        route: tuple[Link, ...],
        size: float,
        rate_limit: float | None,
        on_complete: Callable[["Flow"], None] | None,
        started_at: float,
        min_efficient_rate: float = 0.0,
        network: "FlowNetwork | None" = None,
    ) -> None:
        self.id = flow_id
        self.route = route
        self.size = size
        self.remaining = size
        self._rate = 0.0
        self.rate_limit = rate_limit
        self.min_efficient_rate = min_efficient_rate
        self.on_complete = on_complete
        self.started_at = started_at
        self.completed_at: float | None = None
        self.cancelled = False
        self._network = network

    @property
    def rate(self) -> float:
        """Allocated rate in bytes/second.

        Reading flushes any deferred re-solve first, so the value is
        always the solved allocation for the network's current state.
        """
        network = self._network
        if network is not None and network._dirty:
            network._flush()
        return self._rate

    @property
    def transferred(self) -> float:
        """Bytes moved so far."""
        return self.size - self.remaining

    @property
    def active(self) -> bool:
        """Whether the flow is still moving data."""
        return self.completed_at is None and not self.cancelled

    def __repr__(self) -> str:
        return (
            f"Flow(#{self.id}, size={self.size:.0f}, "
            f"remaining={self.remaining:.0f}, rate={self._rate:.0f}B/s)"
        )


class _Component:
    """One link-connected set of flows with cached solve results."""

    __slots__ = ("flows", "links", "eta_flow", "eps_eta", "needs_split")

    def __init__(self) -> None:
        #: member flows, insertion-ordered (dict used as ordered set).
        self.flows: dict[Flow, None] = {}
        #: links traversed by member flows; a superset between a
        #: removal and the next solve, exact after every solve.
        self.links: dict[str, Link] = {}
        #: the member with the soonest full-completion ETA at the last
        #: solve (rates are constant between solves, so it stays the
        #: argmin until the next solve).
        self.eta_flow: Flow | None = None
        #: absolute sim time when the earliest member may come within
        #: the completion epsilon of done (+inf when none can).
        self.eps_eta: float = float("inf")
        #: a member was removed since the last solve — connectivity
        #: must be re-derived before solving.
        self.needs_split = False


class FlowNetwork:
    """The set of links and currently-active flows.

    Args:
        sim: the simulator supplying the clock and event queue.
        registry: optional metrics registry; when given, the solver
            publishes counters (``net.flownet.*``) for updates,
            coalesced updates, component re-solves, and re-solved flow
            counts.  Recording never changes allocations.
    """

    def __init__(
        self,
        sim: Simulator,
        registry: "MetricsRegistry | None" = None,
    ) -> None:
        self._sim = sim
        self._flows: dict[Flow, None] = {}
        self._flow_ids = itertools.count(1)
        self._last_update = 0.0
        self._completion_event: EventHandle | None = None
        self._link_bytes: dict[str, float] = {}
        # Aggregate allocated rate per link, refreshed at solve time so
        # byte accounting is O(links) per advance instead of
        # O(flows x route).
        self._link_rates: dict[str, float] = {}
        self._comps: dict[_Component, None] = {}
        self._comp_of: dict[Flow, _Component] = {}
        self._link_comp: dict[str, _Component] = {}
        self._dirty: dict[_Component, None] = {}
        self._barrier_pending = False
        self._completion_stale = False
        self._capacity_generation = 0
        if registry is None:
            self._updates = None
            self._coalesced = None
            self._resolves = None
            self._resolved_flows = None
        else:
            self._updates = registry.counter("net.flownet.updates")
            self._coalesced = registry.counter(
                "net.flownet.coalesced_updates"
            )
            self._resolves = registry.counter("net.flownet.resolves")
            self._resolved_flows = registry.counter(
                "net.flownet.resolved_flows"
            )

    @property
    def sim(self) -> Simulator:
        """The simulator driving this network."""
        return self._sim

    @property
    def active_flows(self) -> list[Flow]:
        """Currently-active flows (snapshot copy)."""
        return list(self._flows)

    @property
    def capacity_generation(self) -> int:
        """Bumped on every :meth:`set_capacity`.

        Lets callers cache path properties derived from capacities
        (e.g. the TCP model's bottleneck rate) and invalidate in O(1).
        """
        return self._capacity_generation

    def flows_on(self, link: Link) -> int:
        """Number of active flows traversing ``link``."""
        return sum(1 for flow in self._flows if link in flow.route)

    def bytes_carried(self, link: Link) -> float:
        """Cumulative bytes this link has carried (for utilization)."""
        self._advance()
        return self._link_bytes.get(link.name, 0.0)

    def start_flow(
        self,
        route: list[Link] | tuple[Link, ...],
        size: float,
        rate_limit: float | None = None,
        on_complete: Callable[[Flow], None] | None = None,
        min_efficient_rate: float = 0.0,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes over ``route``.

        Args:
            route: ordered links the flow traverses (non-empty).
            size: bytes to move (> 0).
            rate_limit: optional cap in bytes/second (e.g. a TCP
                congestion window); ``None`` means link-limited only.
            on_complete: called with the flow when the last byte lands.
            min_efficient_rate: the TCP window floor in bytes/second
                (≈ MSS/RTT).  A fair share below this puts a real TCP
                connection in the retransmission-timeout regime, so
                goodput degrades quadratically below the floor; 0
                disables the penalty.

        Returns:
            The new :class:`Flow`.
        """
        route = tuple(route)
        if not route:
            raise NetworkError("flow route must contain at least one link")
        if size <= 0:
            raise NetworkError(f"flow size must be positive, got {size}")
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if min_efficient_rate < 0:
            raise NetworkError(
                f"min_efficient_rate must be >= 0, got {min_efficient_rate}"
            )
        self._advance()
        flow = Flow(
            next(self._flow_ids),
            route,
            size,
            rate_limit,
            on_complete,
            self._sim.now,
            min_efficient_rate,
            network=self,
        )
        self._flows[flow] = None
        comp = self._adopt(flow)
        self._mark_dirty(comp)
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an active flow (no completion callback fires)."""
        if not flow.active or flow not in self._flows:
            return
        self._advance()
        flow.cancelled = True
        self._remove_flow(flow)

    def set_rate_limit(self, flow: Flow, rate_limit: float | None) -> None:
        """Change a flow's rate cap (TCP window ramp); triggers resharing."""
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if not flow.active:
            return
        self._advance()
        flow.rate_limit = rate_limit
        comp = self._comp_of.get(flow)
        if comp is not None:
            self._mark_dirty(comp)

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity at runtime (variable-bandwidth runs)."""
        self._advance()
        link.capacity = capacity
        self._capacity_generation += 1
        comp = self._link_comp.get(link.name)
        if comp is not None:
            self._mark_dirty(comp)

    # ------------------------------------------------------------------
    # component bookkeeping

    def _adopt(self, flow: Flow) -> _Component:
        """Place a new flow, merging every component its route touches."""
        touched: list[_Component] = []
        for link in flow.route:
            comp = self._link_comp.get(link.name)
            if comp is not None and comp not in touched:
                touched.append(comp)
        if not touched:
            home = _Component()
            self._comps[home] = None
        else:
            home = max(touched, key=lambda c: len(c.flows))
            for other in touched:
                if other is home:
                    continue
                for member in other.flows:
                    home.flows[member] = None
                    self._comp_of[member] = home
                for name, link in other.links.items():
                    home.links[name] = link
                    self._link_comp[name] = home
                home.needs_split |= other.needs_split
                if other in self._dirty:
                    del self._dirty[other]
                del self._comps[other]
        home.flows[flow] = None
        self._comp_of[flow] = home
        for link in flow.route:
            home.links[link.name] = link
            self._link_comp[link.name] = home
        return home

    def _remove_flow(self, flow: Flow) -> None:
        """Detach a finished/cancelled flow and dirty its component."""
        del self._flows[flow]
        flow._network = None
        comp = self._comp_of.pop(flow)
        del comp.flows[flow]
        if not comp.flows:
            self._dissolve(comp)
        else:
            comp.needs_split = True
            self._mark_dirty(comp)

    def _dissolve(self, comp: _Component) -> None:
        for name in comp.links:
            if self._link_comp.get(name) is comp:
                del self._link_comp[name]
                self._link_rates.pop(name, None)
        self._dirty.pop(comp, None)
        del self._comps[comp]
        # The pending completion event may target this component.
        self._schedule_flush()

    def _mark_dirty(self, comp: _Component) -> None:
        if self._updates is not None:
            self._updates.inc()
            if comp in self._dirty:
                self._coalesced.inc()
        self._dirty[comp] = None
        self._schedule_flush()

    def _schedule_flush(self) -> None:
        self._completion_stale = True
        if not self._barrier_pending:
            self._barrier_pending = True
            self._sim.call_at_timestamp_end(self._on_barrier)

    def _on_barrier(self) -> None:
        self._barrier_pending = False
        self._flush()

    def _flush(self) -> None:
        """Solve every dirty component and refresh the completion event."""
        if self._dirty:
            dirty = self._dirty
            self._dirty = {}
            for comp in dirty:
                if comp in self._comps:
                    self._solve(comp)
        if self._completion_stale:
            self._completion_stale = False
            self._reschedule_completion()

    # ------------------------------------------------------------------
    # solving

    def _solve(self, comp: _Component) -> None:
        """Re-solve one dirty component (splitting it first if needed)."""
        # Release this component's link ownership; each surviving part
        # re-registers exactly the links its flows still traverse.
        for name in comp.links:
            if self._link_comp.get(name) is comp:
                del self._link_comp[name]
                self._link_rates.pop(name, None)
        if comp.needs_split:
            parts = self._split(comp)
        else:
            parts = (comp,)
        for part in parts:
            self._fill(part)

    def _split(self, comp: _Component) -> list[_Component]:
        """Re-derive link-connectivity after removals.

        Returns the component itself when still connected, else fresh
        components (member order preserved) replacing it.
        """
        comp.needs_split = False
        flows = list(comp.flows)
        parent = list(range(len(flows)))

        def find(i: int) -> int:
            root = i
            while parent[root] != root:
                root = parent[root]
            while parent[i] != root:
                parent[i], i = root, parent[i]
            return root

        by_link: dict[str, int] = {}
        for index, flow in enumerate(flows):
            for link in flow.route:
                first = by_link.setdefault(link.name, index)
                if first != index:
                    parent[find(index)] = find(first)

        groups: dict[int, list[Flow]] = {}
        for index, flow in enumerate(flows):
            groups.setdefault(find(index), []).append(flow)
        if len(groups) == 1:
            return [comp]

        del self._comps[comp]
        parts = []
        for members in groups.values():
            part = _Component()
            for flow in members:
                part.flows[flow] = None
                self._comp_of[flow] = part
            self._comps[part] = None
            parts.append(part)
        return parts

    def _fill(self, comp: _Component) -> None:
        """Progressive-filling max-min fair allocation with rate caps.

        Arithmetic is the exact restriction of the global reference
        solve to this component's flows: the delta sequence is a pure
        function of the member flows' links and caps, so solving a
        component in isolation reproduces the joint solve bit-for-bit
        (components share no links by construction).
        """
        flows = comp.flows
        unfrozen = set(flows)
        for flow in flows:
            flow._rate = 0.0
        link_remaining: dict[str, float] = {}
        link_unfrozen: dict[str, set[Flow]] = {}
        links: dict[str, Link] = {}
        for flow in flows:
            for link in flow.route:
                links[link.name] = link
                link_remaining.setdefault(link.name, link.capacity)
                link_unfrozen.setdefault(link.name, set()).add(flow)

        while unfrozen:
            # Largest uniform rate increment that stays feasible.
            delta = min(
                (
                    link_remaining[name] / len(members)
                    for name, members in link_unfrozen.items()
                    if members
                ),
                default=float("inf"),
            )
            # repro: lint-ok[D3] min() reduction is order-independent
            for flow in unfrozen:
                if flow.rate_limit is not None:
                    delta = min(delta, flow.rate_limit - flow._rate)
            if delta == float("inf"):
                break
            delta = max(delta, 0.0)

            if delta > 0:
                # repro: lint-ok[D3] same delta added to each flow
                for flow in unfrozen:
                    flow._rate += delta
                for name, members in link_unfrozen.items():
                    link_remaining[name] -= delta * len(members)

            # Freeze flows that hit their cap or sit on a full link.
            newly_frozen = {
                flow
                # repro: lint-ok[D3] builds a set; order-free
                for flow in unfrozen
                if flow.rate_limit is not None
                and flow._rate >= flow.rate_limit - _RATE_EPSILON
            }
            for name, members in link_unfrozen.items():
                if link_remaining[name] <= _RATE_EPSILON * max(
                    1.0, links[name].capacity
                ):
                    newly_frozen |= members
            if not newly_frozen:
                # delta == 0 without anything freezing would loop
                # forever; freeze everything as a defensive stop.
                if delta <= 0:
                    newly_frozen = set(unfrozen)
                else:
                    continue
            unfrozen -= newly_frozen
            for members in link_unfrozen.values():
                members -= newly_frozen

        # TCP window floor: a share below ~MSS/RTT leaves a real
        # connection timeout-bound; goodput falls off quadratically.
        for flow in flows:
            floor = flow.min_efficient_rate
            if floor > 0 and 0 < flow._rate < floor:
                flow._rate = flow._rate * flow._rate / floor

        # Cache what the rest of the network needs from this solve:
        # per-link aggregate rates, link ownership, and the ETA bounds
        # the completion machinery consults.
        now = self._sim.now
        eps = _COMPLETION_EPSILON
        comp.links = links
        link_rates = dict.fromkeys(links, 0.0)
        eta_flow: Flow | None = None
        best_eta = float("inf")
        eps_eta = float("inf")
        for flow in flows:
            rate = flow._rate
            for link in flow.route:
                link_rates[link.name] += rate
            remaining = flow.remaining
            if remaining <= eps:
                eps_eta = now
            if rate <= 0:
                continue
            eta = remaining / rate
            if eta < best_eta:
                best_eta = eta
                eta_flow = flow
            if remaining > eps:
                crossing = now + (remaining - eps) / rate
                if crossing < eps_eta:
                    eps_eta = crossing
        comp.eta_flow = eta_flow
        comp.eps_eta = eps_eta
        for name, rate in link_rates.items():
            self._link_rates[name] = rate
            self._link_comp[name] = comp

        if self._resolves is not None:
            self._resolves.inc()
            self._resolved_flows.inc(len(flows))

    # ------------------------------------------------------------------
    # time advance and completions

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update.

        Rates are constant across the advanced interval: dirty
        components can only exist within the current timestamp (the
        engine barrier flushes them before the clock moves), so the
        cached ``_rate``/``_link_rates`` values are exactly the rates
        that applied since ``_last_update``.
        """
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                flow.remaining = max(
                    0.0, flow.remaining - flow._rate * elapsed
                )
            link_bytes = self._link_bytes
            for name, rate in self._link_rates.items():
                if rate:
                    link_bytes[name] = (
                        link_bytes.get(name, 0.0) + rate * elapsed
                    )
        self._last_update = now

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        soonest: float | None = None
        for comp in self._comps:
            flow = comp.eta_flow
            if flow is None:
                continue
            eta = flow.remaining / flow._rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._completion_event = self._sim.schedule(
                soonest, self._on_completion_due
            )

    def _on_completion_due(self) -> None:
        self._completion_event = None
        self._advance()
        now = self._sim.now
        horizon = now + _SWEEP_SLACK * (1.0 + now)
        done = [
            flow
            for comp in self._comps
            if comp.eps_eta <= horizon
            for flow in comp.flows
            if flow.remaining <= _COMPLETION_EPSILON
        ]
        if not done:
            # Scheduled ETA drifted past the actual crossing by a few
            # ULPs; re-arm and let the next firing catch it.
            self._reschedule_completion()
            return
        done.sort(key=lambda flow: flow.id)
        for flow in done:
            flow.remaining = 0.0
            flow.completed_at = now
            self._remove_flow(flow)
        self._flush()
        for flow in done:
            if flow.on_complete is not None:
                flow.on_complete(flow)
