"""Flow-level bandwidth sharing with max-min fairness.

Concurrent transfers are *fluid flows* over routes of links.  Whenever
the set of flows (or a capacity or per-flow rate cap) changes, rates
are re-solved by progressive filling: all flows' rates rise together
until a link saturates or a flow hits its cap, those flows freeze, and
filling continues — the textbook max-min fair allocation.

This is the standard abstraction for simulating TCP sharing at the
timescale of segment downloads: each flow's cap is supplied by the TCP
model (slow-start ramp, Mathis loss ceiling) and the network solves the
induced sharing exactly instead of simulating packets.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..errors import NetworkError
from .engine import EventHandle, Simulator
from .link import Link

#: Bytes below which a flow counts as complete (float-drift guard).
_COMPLETION_EPSILON = 1e-3
#: Rate increments below this are treated as zero in progressive filling.
_RATE_EPSILON = 1e-9


class Flow:
    """One fluid transfer across a route of links.

    Created via :meth:`FlowNetwork.start_flow`; read-only for callers.
    """

    _ids = itertools.count(1)

    __slots__ = (
        "id",
        "route",
        "size",
        "remaining",
        "rate",
        "rate_limit",
        "min_efficient_rate",
        "on_complete",
        "started_at",
        "completed_at",
        "cancelled",
    )

    def __init__(
        self,
        route: tuple[Link, ...],
        size: float,
        rate_limit: float | None,
        on_complete: Callable[["Flow"], None] | None,
        started_at: float,
        min_efficient_rate: float = 0.0,
    ) -> None:
        self.id = next(Flow._ids)
        self.route = route
        self.size = size
        self.remaining = size
        self.rate = 0.0
        self.rate_limit = rate_limit
        self.min_efficient_rate = min_efficient_rate
        self.on_complete = on_complete
        self.started_at = started_at
        self.completed_at: float | None = None
        self.cancelled = False

    @property
    def transferred(self) -> float:
        """Bytes moved so far."""
        return self.size - self.remaining

    @property
    def active(self) -> bool:
        """Whether the flow is still moving data."""
        return self.completed_at is None and not self.cancelled

    def __repr__(self) -> str:
        return (
            f"Flow(#{self.id}, size={self.size:.0f}, "
            f"remaining={self.remaining:.0f}, rate={self.rate:.0f}B/s)"
        )


class FlowNetwork:
    """The set of links and currently-active flows.

    Args:
        sim: the simulator supplying the clock and event queue.
    """

    def __init__(self, sim: Simulator) -> None:
        self._sim = sim
        self._flows: list[Flow] = []
        self._last_update = 0.0
        self._completion_event: EventHandle | None = None
        self._link_bytes: dict[str, float] = {}

    @property
    def sim(self) -> Simulator:
        """The simulator driving this network."""
        return self._sim

    @property
    def active_flows(self) -> list[Flow]:
        """Currently-active flows (snapshot copy)."""
        return list(self._flows)

    def flows_on(self, link: Link) -> int:
        """Number of active flows traversing ``link``."""
        return sum(1 for flow in self._flows if link in flow.route)

    def bytes_carried(self, link: Link) -> float:
        """Cumulative bytes this link has carried (for utilization)."""
        self._advance()
        return self._link_bytes.get(link.name, 0.0)

    def start_flow(
        self,
        route: list[Link] | tuple[Link, ...],
        size: float,
        rate_limit: float | None = None,
        on_complete: Callable[[Flow], None] | None = None,
        min_efficient_rate: float = 0.0,
    ) -> Flow:
        """Begin a transfer of ``size`` bytes over ``route``.

        Args:
            route: ordered links the flow traverses (non-empty).
            size: bytes to move (> 0).
            rate_limit: optional cap in bytes/second (e.g. a TCP
                congestion window); ``None`` means link-limited only.
            on_complete: called with the flow when the last byte lands.
            min_efficient_rate: the TCP window floor in bytes/second
                (≈ MSS/RTT).  A fair share below this puts a real TCP
                connection in the retransmission-timeout regime, so
                goodput degrades quadratically below the floor; 0
                disables the penalty.

        Returns:
            The new :class:`Flow`.
        """
        route = tuple(route)
        if not route:
            raise NetworkError("flow route must contain at least one link")
        if size <= 0:
            raise NetworkError(f"flow size must be positive, got {size}")
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if min_efficient_rate < 0:
            raise NetworkError(
                f"min_efficient_rate must be >= 0, got {min_efficient_rate}"
            )
        self._advance()
        flow = Flow(
            route,
            size,
            rate_limit,
            on_complete,
            self._sim.now,
            min_efficient_rate,
        )
        self._flows.append(flow)
        self._recompute()
        return flow

    def cancel_flow(self, flow: Flow) -> None:
        """Abort an active flow (no completion callback fires)."""
        if not flow.active:
            return
        self._advance()
        flow.cancelled = True
        self._flows.remove(flow)
        self._recompute()

    def set_rate_limit(self, flow: Flow, rate_limit: float | None) -> None:
        """Change a flow's rate cap (TCP window ramp); triggers resharing."""
        if rate_limit is not None and rate_limit <= 0:
            raise NetworkError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if not flow.active:
            return
        self._advance()
        flow.rate_limit = rate_limit
        self._recompute()

    def set_capacity(self, link: Link, capacity: float) -> None:
        """Change a link's capacity at runtime (variable-bandwidth runs)."""
        self._advance()
        link.capacity = capacity
        self._recompute()

    # ------------------------------------------------------------------
    # internals

    def _advance(self) -> None:
        """Credit every active flow with progress since the last update."""
        now = self._sim.now
        elapsed = now - self._last_update
        if elapsed > 0:
            for flow in self._flows:
                moved = flow.rate * elapsed
                flow.remaining = max(0.0, flow.remaining - moved)
                for link in flow.route:
                    self._link_bytes[link.name] = (
                        self._link_bytes.get(link.name, 0.0) + moved
                    )
        self._last_update = now

    def _recompute(self) -> None:
        """Re-solve rates and reschedule the next completion."""
        self._allocate_max_min()
        self._reschedule_completion()

    def _allocate_max_min(self) -> None:
        """Progressive-filling max-min fair allocation with rate caps."""
        unfrozen = set(self._flows)
        for flow in self._flows:
            flow.rate = 0.0
        link_remaining: dict[str, float] = {}
        link_unfrozen: dict[str, set[Flow]] = {}
        links: dict[str, Link] = {}
        for flow in self._flows:
            for link in flow.route:
                links[link.name] = link
                link_remaining.setdefault(link.name, link.capacity)
                link_unfrozen.setdefault(link.name, set()).add(flow)

        while unfrozen:
            # Largest uniform rate increment that stays feasible.
            delta = min(
                (
                    link_remaining[name] / len(members)
                    for name, members in link_unfrozen.items()
                    if members
                ),
                default=float("inf"),
            )
            for flow in unfrozen:
                if flow.rate_limit is not None:
                    delta = min(delta, flow.rate_limit - flow.rate)
            if delta == float("inf"):
                break
            delta = max(delta, 0.0)

            if delta > 0:
                for flow in unfrozen:
                    flow.rate += delta
                for name, members in link_unfrozen.items():
                    link_remaining[name] -= delta * len(members)

            # Freeze flows that hit their cap or sit on a full link.
            newly_frozen = {
                flow
                for flow in unfrozen
                if flow.rate_limit is not None
                and flow.rate >= flow.rate_limit - _RATE_EPSILON
            }
            for name, members in link_unfrozen.items():
                if link_remaining[name] <= _RATE_EPSILON * max(
                    1.0, links[name].capacity
                ):
                    newly_frozen |= members
            if not newly_frozen:
                # delta == 0 without anything freezing would loop
                # forever; freeze everything as a defensive stop.
                if delta <= 0:
                    newly_frozen = set(unfrozen)
                else:
                    continue
            unfrozen -= newly_frozen
            for members in link_unfrozen.values():
                members -= newly_frozen

        # TCP window floor: a share below ~MSS/RTT leaves a real
        # connection timeout-bound; goodput falls off quadratically.
        for flow in self._flows:
            floor = flow.min_efficient_rate
            if floor > 0 and 0 < flow.rate < floor:
                flow.rate = flow.rate * flow.rate / floor

    def _reschedule_completion(self) -> None:
        if self._completion_event is not None:
            self._completion_event.cancel()
            self._completion_event = None
        soonest: float | None = None
        for flow in self._flows:
            if flow.rate <= 0:
                continue
            eta = flow.remaining / flow.rate
            if soonest is None or eta < soonest:
                soonest = eta
        if soonest is not None:
            self._completion_event = self._sim.schedule(
                soonest, self._on_completion_due
            )

    def _on_completion_due(self) -> None:
        self._completion_event = None
        self._advance()
        done = [
            flow
            for flow in self._flows
            if flow.remaining <= _COMPLETION_EPSILON
        ]
        for flow in done:
            flow.remaining = 0.0
            flow.completed_at = self._sim.now
            self._flows.remove(flow)
        self._recompute()
        for flow in done:
            if flow.on_complete is not None:
                flow.on_complete(flow)
