"""Nodes and the paper's star topology.

The experiment connects twenty Xen VMs "in a star topology using
another virtual node" (Section V).  We model each node's access as a
pair of unidirectional links to an ideal hub: an uplink and a downlink
of equal capacity.  Any node pair's path is then
``src.uplink -> dst.downlink``, so upload contention at a busy seeder
and download contention at a busy leecher both emerge naturally.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ConfigurationError, RoutingError
from .flownet import FlowNetwork
from .link import Link


@dataclass(frozen=True, slots=True)
class Node:
    """A host attached to the star.

    Attributes:
        name: unique node name.
        uplink: node-to-hub link (carries this node's uploads).
        downlink: hub-to-node link (carries this node's downloads).
    """

    name: str
    uplink: Link
    downlink: Link

    @property
    def bandwidth(self) -> float:
        """Access bandwidth in bytes/second (uplink == downlink)."""
        return self.uplink.capacity

    @property
    def latency_to_hub(self) -> float:
        """One-way latency from the node to the hub, seconds."""
        return self.uplink.latency


def per_link_loss(path_loss: float) -> float:
    """Per-access-link loss giving ``path_loss`` across a 2-link path.

    The paper quotes end-to-end loss (5 %); a 2-hop star path crosses
    two access links, so each carries ``1 - sqrt(1 - path_loss)``.
    """
    if not 0.0 <= path_loss < 1.0:
        raise ConfigurationError(
            f"path_loss must be in [0, 1), got {path_loss}"
        )
    return 1.0 - math.sqrt(1.0 - path_loss)


class StarTopology:
    """A star of nodes around an ideal hub.

    Typical use::

        topo = StarTopology()
        seeder = topo.add_node("seeder", bandwidth=kB_per_s(512),
                               latency_to_hub=0.475, loss_rate=0.0253)
        peer = topo.add_node("peer-1", bandwidth=kB_per_s(512),
                             latency_to_hub=0.025, loss_rate=0.0253)
        route = topo.route(seeder, peer)
    """

    def __init__(self) -> None:
        self._nodes: dict[str, Node] = {}

    @property
    def nodes(self) -> list[Node]:
        """All nodes in insertion order."""
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, name: str) -> bool:
        return name in self._nodes

    def node(self, name: str) -> Node:
        """Look a node up by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise RoutingError(f"unknown node {name!r}") from None

    def add_node(
        self,
        name: str,
        bandwidth: float,
        latency_to_hub: float = 0.0,
        loss_rate: float = 0.0,
    ) -> Node:
        """Attach a node to the star.

        Args:
            name: unique node name.
            bandwidth: access-link capacity, bytes/second (both
                directions).
            latency_to_hub: one-way propagation delay to the hub,
                seconds.  Two nodes ``a`` and ``b`` then see a one-way
                path latency of ``a.latency + b.latency``.
            loss_rate: per-access-link loss probability (see
                :func:`per_link_loss` to derive it from an end-to-end
                target).

        Returns:
            The new :class:`Node`.
        """
        if name in self._nodes:
            raise ConfigurationError(f"duplicate node name {name!r}")
        node = Node(
            name=name,
            uplink=Link(
                f"{name}:up", bandwidth, latency_to_hub, loss_rate
            ),
            downlink=Link(
                f"{name}:down", bandwidth, latency_to_hub, loss_rate
            ),
        )
        self._nodes[name] = node
        return node

    def route(self, src: Node, dst: Node) -> list[Link]:
        """The link path from ``src`` to ``dst`` through the hub."""
        if src.name not in self._nodes or dst.name not in self._nodes:
            raise RoutingError(
                f"both endpoints must belong to this topology: "
                f"{src.name!r} -> {dst.name!r}"
            )
        if src.name == dst.name:
            raise RoutingError(f"no route from {src.name!r} to itself")
        return [src.uplink, dst.downlink]

    def one_way_latency(self, src: Node, dst: Node) -> float:
        """One-way propagation latency between two nodes, seconds."""
        return sum(link.latency for link in self.route(src, dst))

    def set_node_bandwidth(
        self, network: FlowNetwork, node: Node, bandwidth: float
    ) -> None:
        """Change a node's access bandwidth mid-run (both directions).

        Goes through the flow network so active flows are re-shared
        immediately (variable-bandwidth experiments).
        """
        if node.name not in self._nodes:
            raise RoutingError(f"unknown node {node.name!r}")
        network.set_capacity(node.uplink, bandwidth)
        network.set_capacity(node.downlink, bandwidth)
