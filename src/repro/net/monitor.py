"""Link utilization monitoring.

Samples the flow network at a fixed period and accumulates per-link
utilization statistics — the observability layer the ablations and the
A1 sweet-spot analysis rely on ("very small segments reduce network
throughput" is a utilization statement).

Samples are published as ``net.link.<name>.utilization`` timeseries in
a :class:`~repro.obs.metrics.MetricsRegistry` — pass the run's registry
to fold link telemetry into its run report / CSV export, or let the
monitor keep a private one.  The summary API (:meth:`~LinkMonitor.utilization`,
:meth:`~LinkMonitor.report`) is unchanged either way.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..errors import ConfigurationError
from ..obs.metrics import MetricsRegistry, Timeseries
from .engine import Simulator
from .flownet import FlowNetwork
from .link import Link


@dataclass(frozen=True, slots=True)
class LinkUtilization:
    """Utilization summary of one link over the monitored window.

    Attributes:
        link_name: which link.
        mean: mean utilization in [0, 1] across samples.
        peak: maximum sampled utilization.
        busy_fraction: fraction of samples with any active flow.
        samples: number of samples taken.
    """

    link_name: str
    mean: float
    peak: float
    busy_fraction: float
    samples: int


class LinkMonitor:
    """Periodically samples allocated rate / capacity per link.

    Args:
        sim: the simulator.
        network: the flow network to sample.
        links: links to watch.
        period: sampling period in seconds.
        registry: metrics registry to publish samples into; a private
            one is created when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        network: FlowNetwork,
        links: list[Link],
        period: float = 1.0,
        registry: MetricsRegistry | None = None,
    ) -> None:
        if period <= 0:
            raise ConfigurationError(
                f"period must be positive, got {period}"
            )
        if not links:
            raise ConfigurationError("links must be non-empty")
        self._sim = sim
        self._network = network
        self._links = list(links)
        self._period = period
        self._registry = registry if registry is not None else MetricsRegistry()
        self._series: dict[str, Timeseries] = {
            link.name: self._registry.timeseries(
                f"net.link.{link.name}.utilization"
            )
            for link in self._links
        }
        self._running = False

    @property
    def registry(self) -> MetricsRegistry:
        """The registry receiving the utilization timeseries."""
        return self._registry

    def start(self) -> None:
        """Begin sampling (idempotent)."""
        if self._running:
            return
        self._running = True
        self._sim.schedule(self._period, self._sample)

    def stop(self) -> None:
        """Stop sampling after the current period."""
        self._running = False

    def _sample(self) -> None:
        if not self._running:
            return
        now = self._sim.now
        for link in self._links:
            allocated = sum(
                flow.rate
                for flow in self._network.active_flows
                if link in flow.route
            )
            self._series[link.name].sample(
                now, min(1.0, allocated / link.capacity)
            )
        self._sim.schedule(self._period, self._sample)

    def utilization(self, link: Link) -> LinkUtilization:
        """Summarize the samples collected for ``link``.

        Raises:
            ConfigurationError: if the link was never monitored or no
                samples were taken.
        """
        series = self._series.get(link.name)
        if series is None:
            raise ConfigurationError(
                f"link {link.name!r} is not monitored"
            )
        samples = series.values()
        if not samples:
            raise ConfigurationError(
                f"no samples collected for link {link.name!r}"
            )
        return LinkUtilization(
            link_name=link.name,
            mean=statistics.fmean(samples),
            peak=max(samples),
            busy_fraction=sum(1 for s in samples if s > 0)
            / len(samples),
            samples=len(samples),
        )

    def report(self) -> list[LinkUtilization]:
        """Utilization summaries for every monitored link with samples."""
        return [
            self.utilization(link)
            for link in self._links
            if len(self._series[link.name])
        ]
