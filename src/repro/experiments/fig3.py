"""Figure 3 — total stall duration for different bandwidths.

Same sweep as Figure 2, reporting summed stall seconds instead of
stall counts.  Expected shape (paper Section VI-A): GOP-based splicing
gives long stalls; smaller duration-based segments give shorter total
stall time even when their stall *count* is higher.
"""

from __future__ import annotations

from ..obs.context import Observability
from ..parallel import SweepExecutor, cell_for
from ..video.bitstream import Bitstream
from .config import PAPER_BANDWIDTHS_KB, ExperimentConfig
from .fig2 import splicer_specs
from .runner import FigureResult


def cells(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
) -> list:
    """The figure's sweep cells (same grid as Fig. 2, fig3 labels)."""
    cfg = config or ExperimentConfig()
    return [
        cell_for(
            spec,
            bw,
            cfg,
            video=video,
            label=f"fig3/{spec.technique} @ {bw} kB/s",
        )
        for spec in splicer_specs()
        for bw in bandwidths_kb
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    obs: Observability | None = None,
    executor: SweepExecutor | None = None,
    analyze: bool = False,
) -> FigureResult:
    """Reproduce Figure 3 (see module docstring)."""
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    specs = splicer_specs()
    sweep_cells = cells(cfg, video=video, bandwidths_kb=bandwidths_kb)
    results = iter(
        sweep.run_cells(sweep_cells, obs=obs, analyze=analyze)
    )
    series = {
        spec.technique: [next(results) for _ in bandwidths_kb]
        for spec in specs
    }
    return FigureResult(
        figure="fig3",
        title="Total stall duration for different bandwidths",
        metric="stall_duration",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run()))


if __name__ == "__main__":
    main()
