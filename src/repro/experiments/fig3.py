"""Figure 3 — total stall duration for different bandwidths.

Same sweep as Figure 2, reporting summed stall seconds instead of
stall counts.  Expected shape (paper Section VI-A): GOP-based splicing
gives long stalls; smaller duration-based segments give shorter total
stall time even when their stall *count* is higher.
"""

from __future__ import annotations

from ..obs.context import Observability
from ..video.bitstream import Bitstream
from .config import PAPER_BANDWIDTHS_KB, ExperimentConfig, make_paper_video
from .fig2 import splicers
from .runner import FigureResult, run_cell


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    obs: Observability | None = None,
) -> FigureResult:
    """Reproduce Figure 3 (see module docstring)."""
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    series = {}
    for splicer in splicers():
        splice = splicer.splice(stream)
        series[splice.technique] = [
            run_cell(splice, bw, cfg, obs=obs) for bw in bandwidths_kb
        ]
    return FigureResult(
        figure="fig3",
        title="Total stall duration for different bandwidths",
        metric="stall_duration",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run()))


if __name__ == "__main__":
    main()
