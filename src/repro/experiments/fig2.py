"""Figure 2 — total number of stalls for different bandwidths.

Series: GOP-based splicing and 2/4/8-second duration splicing; x-axis
bandwidth 128–768 kB/s; adaptive pooling throughout.

Expected shape (paper Section VI-A): GOP-based splicing stalls most;
2-second segments stall more than 4-second segments at low bandwidth
(many small TCP connections) and converge toward them as bandwidth
grows; 8-second segments stall more than 4-second at the low end; all
series decrease with bandwidth.
"""

from __future__ import annotations

from ..core.splicer import Splicer
from ..obs.context import Observability
from ..parallel import SplicerSpec, SweepExecutor, cell_for
from ..video.bitstream import Bitstream
from .config import PAPER_BANDWIDTHS_KB, PAPER_DURATIONS, ExperimentConfig
from .runner import FigureResult


def splicer_specs() -> list[SplicerSpec]:
    """Specs of the four splicing techniques of Figs. 2 and 3."""
    return [SplicerSpec("gop")] + [
        SplicerSpec("duration", duration)
        for duration in PAPER_DURATIONS
    ]


def splicers() -> list[Splicer]:
    """The four splicing techniques of Figs. 2 and 3."""
    return [spec.build() for spec in splicer_specs()]


def cells(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
) -> list:
    """The figure's sweep cells (technique-major, bandwidth-minor).

    Shared by :func:`run` and the sweep planner (``repro sweep``), so
    a sharded sweep covers exactly the cells a direct run computes.
    """
    cfg = config or ExperimentConfig()
    return [
        cell_for(
            spec,
            bw,
            cfg,
            video=video,
            label=f"fig2/{spec.technique} @ {bw} kB/s",
        )
        for spec in splicer_specs()
        for bw in bandwidths_kb
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    obs: Observability | None = None,
    executor: SweepExecutor | None = None,
    analyze: bool = False,
) -> FigureResult:
    """Reproduce Figure 2.

    Args:
        config: shared experiment parameters.
        video: pre-encoded video (encoded fresh when omitted).
        bandwidths_kb: x-axis points in kB/s.
        obs: optional observability context shared by every cell
            (metrics-only recommended; see :func:`~.runner.run_cell`).
        executor: sweep executor; ``None`` runs serially in-process.
        analyze: trace + diagnose every run and attach a merged
            :class:`~repro.obs.analyze.CellAnalysis` to each cell.

    Returns:
        Stall-count series per splicing technique.
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    specs = splicer_specs()
    sweep_cells = cells(cfg, video=video, bandwidths_kb=bandwidths_kb)
    results = iter(
        sweep.run_cells(sweep_cells, obs=obs, analyze=analyze)
    )
    series = {
        spec.technique: [next(results) for _ in bandwidths_kb]
        for spec in specs
    }
    return FigureResult(
        figure="fig2",
        title="Total number of stalls for different bandwidths",
        metric="stall_count",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run()))


if __name__ == "__main__":
    main()
