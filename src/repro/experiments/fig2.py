"""Figure 2 — total number of stalls for different bandwidths.

Series: GOP-based splicing and 2/4/8-second duration splicing; x-axis
bandwidth 128–768 kB/s; adaptive pooling throughout.

Expected shape (paper Section VI-A): GOP-based splicing stalls most;
2-second segments stall more than 4-second segments at low bandwidth
(many small TCP connections) and converge toward them as bandwidth
grows; 8-second segments stall more than 4-second at the low end; all
series decrease with bandwidth.
"""

from __future__ import annotations

from ..core.splicer import DurationSplicer, GopSplicer, Splicer
from ..obs.context import Observability
from ..video.bitstream import Bitstream
from .config import PAPER_BANDWIDTHS_KB, PAPER_DURATIONS, ExperimentConfig
from .config import make_paper_video
from .runner import FigureResult, run_cell


def splicers() -> list[Splicer]:
    """The four splicing techniques of Figs. 2 and 3."""
    return [GopSplicer()] + [
        DurationSplicer(duration) for duration in PAPER_DURATIONS
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    obs: Observability | None = None,
) -> FigureResult:
    """Reproduce Figure 2.

    Args:
        config: shared experiment parameters.
        video: pre-encoded video (encoded fresh when omitted).
        bandwidths_kb: x-axis points in kB/s.
        obs: optional observability context shared by every cell
            (metrics-only recommended; see :func:`~.runner.run_cell`).

    Returns:
        Stall-count series per splicing technique.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    series = {}
    for splicer in splicers():
        splice = splicer.splice(stream)
        series[splice.technique] = [
            run_cell(splice, bw, cfg, obs=obs) for bw in bandwidths_kb
        ]
    return FigureResult(
        figure="fig2",
        title="Total number of stalls for different bandwidths",
        metric="stall_count",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run()))


if __name__ == "__main__":
    main()
