"""Figure 5 — total number of stalls for different pool sizes.

Series: the paper's adaptive pooling (Eq. 1) against fixed pools of 2,
4, and 8 segments; 4-second duration splicing; x-axis bandwidth
128–768 kB/s.

Expected shape (paper Section VI-B): adaptive pooling stalls least;
"when the bandwidth is small, a large pool size increases the network
overload in the peer's network which increases the stalls", while at
high bandwidth large pools are harmless.
"""

from __future__ import annotations

from ..core.policy import AdaptivePoolPolicy, DownloadPolicy, FixedPoolPolicy
from ..obs.context import Observability
from ..parallel import SplicerSpec, SweepExecutor, cell_for
from ..video.bitstream import Bitstream
from .config import (
    PAPER_BANDWIDTHS_KB,
    PAPER_POOL_SIZES,
    ExperimentConfig,
)
from .runner import FigureResult

#: Segment duration used in the pooling experiment, seconds.
FIG5_SEGMENT_DURATION = 4.0


def policies() -> list[DownloadPolicy]:
    """Adaptive pooling plus the paper's fixed-pool baselines."""
    return [AdaptivePoolPolicy()] + [
        FixedPoolPolicy(size) for size in PAPER_POOL_SIZES
    ]


_LABELS = {
    "adaptive": "Adaptive pooling",
    "fixed-2": "Pool size: 2",
    "fixed-4": "Pool size: 4",
    "fixed-8": "Pool size: 8",
}


def cells(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
) -> list:
    """The figure's sweep cells (policy-major, bandwidth-minor)."""
    cfg = config or ExperimentConfig()
    splicer = SplicerSpec("duration", FIG5_SEGMENT_DURATION)
    return [
        cell_for(
            splicer,
            bw,
            cfg,
            policy=policy,
            video=video,
            label=f"fig5/{_LABELS[policy.name]} @ {bw} kB/s",
        )
        for policy in policies()
        for bw in bandwidths_kb
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    obs: Observability | None = None,
    executor: SweepExecutor | None = None,
    analyze: bool = False,
) -> FigureResult:
    """Reproduce Figure 5 (see module docstring)."""
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    labels = _LABELS
    pool_policies = policies()
    sweep_cells = cells(cfg, video=video, bandwidths_kb=bandwidths_kb)
    results = iter(
        sweep.run_cells(sweep_cells, obs=obs, analyze=analyze)
    )
    series = {
        labels[policy.name]: [next(results) for _ in bandwidths_kb]
        for policy in pool_policies
    }
    return FigureResult(
        figure="fig5",
        title="Total number of stalls for different pool sizes",
        metric="stall_count",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run()))


if __name__ == "__main__":
    main()
