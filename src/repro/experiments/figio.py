"""JSON persistence for reproduced figures.

Lets a long benchmark run be archived and re-rendered (or diffed
against a later run) without re-simulating.
"""

from __future__ import annotations

import dataclasses
import json

from ..errors import ExperimentError
from .runner import CellResult, FigureResult


def figure_to_json(result: FigureResult) -> str:
    """Serialize a figure (and all of its cells) to JSON text."""
    payload = {
        "figure": result.figure,
        "title": result.title,
        "metric": result.metric,
        "series": {
            label: [dataclasses.asdict(cell) for cell in cells]
            for label, cells in result.series.items()
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def figure_from_json(text: str) -> FigureResult:
    """Parse JSON produced by :func:`figure_to_json`.

    Raises:
        ExperimentError: on malformed or incomplete documents.
    """
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ExperimentError(f"malformed figure JSON: {exc}") from exc
    try:
        series = {
            label: [CellResult(**cell) for cell in cells]
            for label, cells in payload["series"].items()
        }
        return FigureResult(
            figure=payload["figure"],
            title=payload["title"],
            metric=payload["metric"],
            series=series,
        )
    except (KeyError, TypeError) as exc:
        raise ExperimentError(
            f"figure JSON missing required fields: {exc}"
        ) from exc
