"""Run the whole evaluation and emit one consolidated report.

``reproduce_all`` regenerates every paper figure plus the ablations
and renders them as a single markdown-ish document — the programmatic
equivalent of EXPERIMENTS.md's measured columns.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..video.bitstream import Bitstream
from . import fig2, fig3, fig4, fig5
from .ablations import (
    run_churn,
    run_overhead,
    run_preroll,
    run_segment_size_sweep,
    run_swarm_scaling,
    run_variable_bandwidth,
)
from .config import ExperimentConfig, make_paper_video
from .report import format_figure
from .runner import FigureResult


@dataclass(frozen=True, slots=True)
class ReproductionReport:
    """Everything one reproduction run produced.

    Attributes:
        figures: the regenerated figures, in paper order.
        overhead_table: the A3 byte-overhead rows, pre-rendered.
        elapsed: wall-clock seconds the run took.
    """

    figures: tuple[FigureResult, ...]
    overhead_table: str
    elapsed: float

    def render(self) -> str:
        """Render the whole report as text."""
        parts = [
            "# Reproduction report",
            "",
            f"(regenerated in {self.elapsed:.0f}s wall-clock)",
            "",
            "## Splicing overhead (A3)",
            "",
            self.overhead_table,
        ]
        for figure in self.figures:
            parts.append("")
            parts.append(f"## {figure.figure}")
            parts.append("")
            precision = 2 if figure.metric == "startup_time" else 1
            parts.append(format_figure(figure, precision=precision))
        return "\n".join(parts) + "\n"


def reproduce_all(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    include_ablations: bool = True,
) -> ReproductionReport:
    """Regenerate every figure (and optionally every ablation).

    Args:
        config: shared experiment parameters (the paper's defaults).
        video: pre-encoded video; encoded fresh when omitted.
        include_ablations: also run A1/A2/A4/A7/A8 (slower).

    Returns:
        The consolidated :class:`ReproductionReport`.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    started = time.monotonic()

    figures: list[FigureResult] = [
        fig2.run(cfg, video=stream),
        fig3.run(cfg, video=stream),
        fig4.run(cfg, video=stream),
        fig5.run(cfg, video=stream),
    ]
    if include_ablations:
        figures.extend(
            [
                run_segment_size_sweep(cfg, video=stream),
                run_churn(cfg, video=stream),
                run_variable_bandwidth(cfg, video=stream),
                run_preroll(cfg, video=stream),
                run_swarm_scaling(cfg, video=stream),
            ]
        )

    lines = [
        f"{'technique':12s} {'segments':>8s} {'total MB':>9s} "
        f"{'overhead':>9s}"
    ]
    for row in run_overhead(video=stream):
        lines.append(
            f"{row.technique:12s} {row.segments:8d} "
            f"{row.total_bytes / 1e6:9.2f} "
            f"{row.overhead_percent:8.1f}%"
        )

    return ReproductionReport(
        figures=tuple(figures),
        overhead_table="\n".join(lines),
        elapsed=time.monotonic() - started,
    )
