"""Run the whole evaluation and emit one consolidated report.

``reproduce_all`` regenerates every paper figure plus the ablations
and renders them as a single markdown-ish document — the programmatic
equivalent of EXPERIMENTS.md's measured columns.

Every figure and swarm-running ablation goes through one shared
:class:`~repro.parallel.SweepExecutor`, so ``jobs>1`` fans the grid's
independent runs out over worker processes while producing numerically
identical tables (see ``docs/PERFORMANCE.md``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ..parallel import SweepExecutor, VideoSpec, cached_video
from ..video.bitstream import Bitstream
from . import fig2, fig3, fig4, fig5
from .ablations import (
    run_churn,
    run_overhead,
    run_preroll,
    run_segment_size_sweep,
    run_swarm_scaling,
    run_variable_bandwidth,
)
from .config import ExperimentConfig
from .report import format_figure
from .runner import FigureResult


@dataclass(frozen=True, slots=True)
class ReproductionReport:
    """Everything one reproduction run produced.

    Attributes:
        figures: the regenerated figures, in paper order.
        overhead_table: the A3 byte-overhead rows, pre-rendered.
        elapsed: wall-clock seconds the run took.
        events_fired: simulator callbacks executed across every run.
        jobs: worker processes the sweep used.
        runs_cached: runs served from the result store instead of
            being simulated (``--cache``/``--resume``).
    """

    figures: tuple[FigureResult, ...]
    overhead_table: str
    elapsed: float
    events_fired: int = 0
    jobs: int = 1
    runs_cached: int = 0

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulated events per wall-clock second."""
        if self.elapsed <= 0:
            return 0.0
        return self.events_fired / self.elapsed

    def render(self) -> str:
        """Render the whole report as text."""
        header = f"(regenerated in {self.elapsed:.0f}s wall-clock"
        if self.events_fired:
            header += (
                f" with {self.jobs} worker"
                f"{'' if self.jobs == 1 else 's'} — "
                f"{self.events_fired} simulated events, "
                f"{self.events_per_sec:.0f} events/s"
            )
        if self.runs_cached:
            header += f"; {self.runs_cached} runs from cache"
        header += ")"
        parts = [
            "# Reproduction report",
            "",
            header,
            "",
            "## Splicing overhead (A3)",
            "",
            self.overhead_table,
        ]
        for figure in self.figures:
            parts.append("")
            parts.append(f"## {figure.figure}")
            parts.append("")
            precision = 2 if figure.metric == "startup_time" else 1
            parts.append(format_figure(figure, precision=precision))
        return "\n".join(parts) + "\n"


def reproduce_all(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    include_ablations: bool = True,
    jobs: int | None = 1,
    executor: SweepExecutor | None = None,
) -> ReproductionReport:
    """Regenerate every figure (and optionally every ablation).

    Args:
        config: shared experiment parameters (the paper's defaults).
        video: pre-encoded video; encoded fresh when omitted.
        include_ablations: also run A1/A2/A4/A7/A8 (slower).
        jobs: sweep worker processes; ``1`` (the default) runs fully
            in-process, ``None`` auto-detects the core count.
        executor: pre-built executor (overrides ``jobs``); its
            cumulative stats feed the report header.

    Returns:
        The consolidated :class:`ReproductionReport`.
    """
    cfg = config or ExperimentConfig()
    sweep = executor if executor is not None else SweepExecutor(jobs=jobs)
    # The overhead table needs the bitstream in-process; going through
    # the cache shares the encode with this process's sweep runs.
    stream = (
        video
        if video is not None
        else cached_video(VideoSpec(seed=cfg.video_seed))
    )
    # repro: lint-ok[D1] wall elapsed for the report header
    started = time.monotonic()
    events_before = sweep.stats.events_fired
    cached_before = sweep.stats.runs_cached

    figures: list[FigureResult] = [
        fig2.run(cfg, video=video, executor=sweep),
        fig3.run(cfg, video=video, executor=sweep),
        fig4.run(cfg, video=video, executor=sweep),
        fig5.run(cfg, video=video, executor=sweep),
    ]
    if include_ablations:
        figures.extend(
            [
                run_segment_size_sweep(cfg, video=video, executor=sweep),
                run_churn(cfg, video=video, executor=sweep),
                run_variable_bandwidth(cfg, video=video, executor=sweep),
                run_preroll(cfg, video=video, executor=sweep),
                run_swarm_scaling(cfg, video=video, executor=sweep),
            ]
        )

    lines = [
        f"{'technique':12s} {'segments':>8s} {'total MB':>9s} "
        f"{'overhead':>9s}"
    ]
    for row in run_overhead(video=stream):
        lines.append(
            f"{row.technique:12s} {row.segments:8d} "
            f"{row.total_bytes / 1e6:9.2f} "
            f"{row.overhead_percent:8.1f}%"
        )

    return ReproductionReport(
        figures=tuple(figures),
        overhead_table="\n".join(lines),
        # repro: lint-ok[D1] wall elapsed for the report header
        elapsed=time.monotonic() - started,
        events_fired=sweep.stats.events_fired - events_before,
        jobs=sweep.jobs,
        runs_cached=sweep.stats.runs_cached - cached_before,
    )
