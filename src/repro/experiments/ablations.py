"""Ablations beyond the paper's figures (DESIGN.md A1–A5).

These answer the questions the paper leaves open: where the
segment-size sweet spot lies (A1, its Section IV discussion), whether
adaptive pooling helps under churn (A2), how much the duration
splicing overhead costs in bytes (A3), how splicing behaves under
variable bandwidth (A4, the paper's future work), and what the
duration-adaptive splicer from Section VII's future work buys (A5).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from ..core.segment_size import AdaptiveDurationPlanner
from ..core.segments import SpliceResult
from ..core.splicer import DurationSplicer, GopSplicer
from ..errors import ExperimentError
from ..p2p.churn import ChurnConfig
from ..p2p.swarm import Swarm
from ..units import kB_per_s
from ..video.bitstream import Bitstream
from .config import (
    PAPER_BANDWIDTHS_KB,
    ExperimentConfig,
    make_paper_video,
    make_swarm_config,
)
from .runner import CellResult, FigureResult, run_cell

#: Durations swept by the segment-size ablation, seconds.
A1_DURATIONS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def run_segment_size_sweep(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = (128, 512),
    durations: tuple[float, ...] = A1_DURATIONS,
) -> FigureResult:
    """A1 — stall count across a wide range of segment durations.

    The paper's Section IV argues the segment must be neither too
    small (TCP overhead) nor too large (coarse scheduling); this sweep
    locates the sweet spot per bandwidth.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    series: dict[str, list[CellResult]] = {}
    for duration in durations:
        splice = DurationSplicer(duration).splice(stream)
        series[splice.technique] = [
            run_cell(splice, bw, cfg) for bw in bandwidths_kb
        ]
    return FigureResult(
        figure="A1",
        title="Stalls across segment durations",
        metric="stall_count",
        series=series,
    )


def run_churn(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    churn_fractions: tuple[float, ...] = (0.0, 0.25, 0.5),
    mean_lifetime: float = 60.0,
) -> FigureResult:
    """A2 — stalls under increasing peer departure rates.

    Peers "can leave the swarm anytime"; prefetching is the paper's
    antidote.  Reported per churn fraction at one bandwidth; the
    bandwidth column of each series is reused for the fraction.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    splice = DurationSplicer(4.0).splice(stream)
    series: dict[str, list[CellResult]] = {}
    for fraction in churn_fractions:
        churn = (
            ChurnConfig(mean_lifetime=mean_lifetime, fraction=fraction)
            if fraction > 0
            else None
        )
        churn_cfg = replace(cfg, churn=churn)
        series[f"churn {int(fraction * 100)}%"] = [
            run_cell(splice, bandwidth_kb, churn_cfg)
        ]
    return FigureResult(
        figure="A2",
        title=f"Stalls under churn at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


@dataclass(frozen=True, slots=True)
class OverheadRow:
    """A3 — byte overhead of one splicing technique.

    Attributes:
        technique: splicer name.
        segments: number of segments produced.
        total_bytes: spliced size in bytes.
        overhead_bytes: bytes added over the source stream.
        overhead_percent: overhead as percent of the source size.
    """

    technique: str
    segments: int
    total_bytes: int
    overhead_bytes: int
    overhead_percent: float


def run_overhead(
    video: Bitstream | None = None,
    durations: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
) -> list[OverheadRow]:
    """A3 — quantify "much more data to be transferred".

    Pure computation: splice the video each way and compare sizes.
    """
    stream = video if video is not None else make_paper_video()

    def row(splice: SpliceResult) -> OverheadRow:
        return OverheadRow(
            technique=splice.technique,
            segments=len(splice),
            total_bytes=splice.total_size,
            overhead_bytes=splice.overhead_bytes,
            overhead_percent=100.0 * splice.overhead_ratio,
        )

    rows = [row(GopSplicer().splice(stream))]
    rows.extend(
        row(DurationSplicer(duration).splice(stream))
        for duration in durations
    )
    return rows


def run_variable_bandwidth(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    base_kb: int = 256,
    amplitude: float = 0.5,
    period: float = 20.0,
) -> FigureResult:
    """A4 — splicing under oscillating bandwidth (paper future work).

    Every peer's access bandwidth follows a square wave between
    ``base * (1 - amplitude)`` and ``base * (1 + amplitude)`` with the
    given period, changing mid-run through the flow network so active
    transfers re-share immediately.
    """
    if not 0.0 < amplitude < 1.0:
        raise ExperimentError(f"amplitude must be in (0, 1): {amplitude}")
    if period <= 0:
        raise ExperimentError(f"period must be positive: {period}")
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    series: dict[str, list[CellResult]] = {}
    for splicer in (
        GopSplicer(),
        DurationSplicer(2.0),
        DurationSplicer(4.0),
        DurationSplicer(8.0),
    ):
        splice = splicer.splice(stream)
        stalls, stall_durations, startups = [], [], []
        for seed in cfg.seeds:
            swarm = Swarm(
                splice, make_swarm_config(base_kb, seed, cfg)
            )
            _schedule_square_wave(
                swarm, kB_per_s(base_kb), amplitude, period
            )
            result = swarm.run()
            stalls.append(result.mean_stall_count())
            stall_durations.append(result.mean_stall_duration())
            startups.append(result.mean_startup_time())
        series[splice.technique] = [
            CellResult(
                bandwidth_kb=base_kb,
                stall_count=statistics.fmean(stalls),
                stall_duration=statistics.fmean(stall_durations),
                startup_time=statistics.fmean(startups),
                seeder_bytes=0.0,
                peer_bytes=0.0,
                finished_fraction=1.0,
            )
        ]
    return FigureResult(
        figure="A4",
        title=(
            f"Stalls under square-wave bandwidth "
            f"({base_kb} kB/s +/- {int(amplitude * 100)}%)"
        ),
        metric="stall_count",
        series=series,
    )


def _schedule_square_wave(
    swarm: Swarm, base: float, amplitude: float, period: float
) -> None:
    """Toggle every leecher's bandwidth between the two wave levels."""
    low = base * (1.0 - amplitude)
    high = base * (1.0 + amplitude)

    def set_level(level: float, next_level: float) -> None:
        for leecher in swarm.leechers:
            swarm.topology.set_node_bandwidth(
                swarm.network, leecher.node, level
            )
        swarm.sim.schedule(
            period / 2.0, set_level, next_level, level
        )

    swarm.sim.schedule(period / 2.0, set_level, low, high)


def run_preroll(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    prerolls: tuple[int, ...] = (1, 2, 3),
) -> FigureResult:
    """A7 — pre-roll buffering: trading startup for stalls.

    The paper's client starts on the first segment; HLS players
    pre-roll several.  Measures both observables per pre-roll depth.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    splice = DurationSplicer(4.0).splice(stream)
    series: dict[str, list[CellResult]] = {}
    for preroll in prerolls:
        stalls, durations, startups = [], [], []
        for seed in cfg.seeds:
            swarm_config = replace(
                make_swarm_config(bandwidth_kb, seed, cfg),
                preroll_segments=preroll,
            )
            result = Swarm(splice, swarm_config).run()
            stalls.append(result.mean_stall_count())
            durations.append(result.mean_stall_duration())
            startups.append(result.mean_startup_time())
        series[f"preroll {preroll}"] = [
            CellResult(
                bandwidth_kb=bandwidth_kb,
                stall_count=statistics.fmean(stalls),
                stall_duration=statistics.fmean(durations),
                startup_time=statistics.fmean(startups),
                seeder_bytes=0.0,
                peer_bytes=0.0,
                finished_fraction=1.0,
            )
        ]
    return FigureResult(
        figure="A7",
        title=f"Pre-roll depth at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


def run_swarm_scaling(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    swarm_sizes: tuple[int, ...] = (5, 10, 19, 38),
) -> FigureResult:
    """A8 — scalability: does P2P shed load from the origin?

    The paper motivates P2P by scalability; this sweep grows the swarm
    and reports stalls while the harness records how the seeder's
    share of the served bytes shrinks (``seeder_bytes`` vs
    ``peer_bytes`` in the cells).
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    splice = DurationSplicer(4.0).splice(stream)
    series: dict[str, list[CellResult]] = {}
    for size in swarm_sizes:
        scaled = replace(cfg, n_leechers=size)
        series[f"{size} peers"] = [
            run_cell(splice, bandwidth_kb, scaled)
        ]
    return FigureResult(
        figure="A8",
        title=f"Swarm scaling at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


def run_adaptive_splicing(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
) -> FigureResult:
    """A5 — duration-adaptive splicing (paper future work).

    For each bandwidth the :class:`AdaptiveDurationPlanner` picks a
    segment duration before splicing; compared against fixed 4-second
    splicing.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    planner = AdaptiveDurationPlanner(bitrate=stream.bitrate)
    adaptive_cells = []
    for bw in bandwidths_kb:
        duration = planner.pick(kB_per_s(bw)).duration
        splice = DurationSplicer(duration).splice(stream)
        adaptive_cells.append(run_cell(splice, bw, cfg))
    fixed = DurationSplicer(4.0).splice(stream)
    return FigureResult(
        figure="A5",
        title="Adaptive segment duration vs fixed 4 s",
        metric="stall_count",
        series={
            "adaptive duration": adaptive_cells,
            "fixed 4s": [
                run_cell(fixed, bw, cfg) for bw in bandwidths_kb
            ],
        },
    )
