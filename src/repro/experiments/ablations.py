"""Ablations beyond the paper's figures (DESIGN.md A1–A5).

These answer the questions the paper leaves open: where the
segment-size sweet spot lies (A1, its Section IV discussion), whether
adaptive pooling helps under churn (A2), how much the duration
splicing overhead costs in bytes (A3), how splicing behaves under
variable bandwidth (A4, the paper's future work), and what the
duration-adaptive splicer from Section VII's future work buys (A5).

Every swarm-running ablation routes its independent runs through a
:class:`~repro.parallel.SweepExecutor` (serial by default), so the
consolidated reproduction can fan them out across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.segment_size import AdaptiveDurationPlanner
from ..core.segments import SpliceResult
from ..core.splicer import DurationSplicer, GopSplicer
from ..p2p.churn import ChurnConfig
from ..parallel import SplicerSpec, SquareWave, SweepExecutor, cell_for
from ..units import kB_per_s
from ..video.bitstream import Bitstream
from .config import (
    PAPER_BANDWIDTHS_KB,
    ExperimentConfig,
    make_paper_video,
)
from .runner import CellResult, FigureResult

#: Durations swept by the segment-size ablation, seconds.
A1_DURATIONS: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0, 8.0, 16.0)


def run_segment_size_sweep(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = (128, 512),
    durations: tuple[float, ...] = A1_DURATIONS,
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """A1 — stall count across a wide range of segment durations.

    The paper's Section IV argues the segment must be neither too
    small (TCP overhead) nor too large (coarse scheduling); this sweep
    locates the sweet spot per bandwidth.
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    specs = [SplicerSpec("duration", d) for d in durations]
    cells = [
        cell_for(
            spec,
            bw,
            cfg,
            video=video,
            label=f"A1/{spec.technique} @ {bw} kB/s",
        )
        for spec in specs
        for bw in bandwidths_kb
    ]
    results = iter(sweep.run_cells(cells))
    series = {
        spec.technique: [next(results) for _ in bandwidths_kb]
        for spec in specs
    }
    return FigureResult(
        figure="A1",
        title="Stalls across segment durations",
        metric="stall_count",
        series=series,
    )


def run_churn(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    churn_fractions: tuple[float, ...] = (0.0, 0.25, 0.5),
    mean_lifetime: float = 60.0,
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """A2 — stalls under increasing peer departure rates.

    Peers "can leave the swarm anytime"; prefetching is the paper's
    antidote.  Reported per churn fraction at one bandwidth; the
    bandwidth column of each series is reused for the fraction.
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    splicer = SplicerSpec("duration", 4.0)
    cells = []
    for fraction in churn_fractions:
        churn = (
            ChurnConfig(mean_lifetime=mean_lifetime, fraction=fraction)
            if fraction > 0
            else None
        )
        cells.append(
            cell_for(
                splicer,
                bandwidth_kb,
                replace(cfg, churn=churn),
                video=video,
                label=f"A2/churn {int(fraction * 100)}%",
            )
        )
    results = sweep.run_cells(cells)
    series = {
        f"churn {int(fraction * 100)}%": [cell]
        for fraction, cell in zip(churn_fractions, results)
    }
    return FigureResult(
        figure="A2",
        title=f"Stalls under churn at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


@dataclass(frozen=True, slots=True)
class OverheadRow:
    """A3 — byte overhead of one splicing technique.

    Attributes:
        technique: splicer name.
        segments: number of segments produced.
        total_bytes: spliced size in bytes.
        overhead_bytes: bytes added over the source stream.
        overhead_percent: overhead as percent of the source size.
    """

    technique: str
    segments: int
    total_bytes: int
    overhead_bytes: int
    overhead_percent: float


def run_overhead(
    video: Bitstream | None = None,
    durations: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
) -> list[OverheadRow]:
    """A3 — quantify "much more data to be transferred".

    Pure computation: splice the video each way and compare sizes.
    """
    stream = video if video is not None else make_paper_video()

    def row(splice: SpliceResult) -> OverheadRow:
        return OverheadRow(
            technique=splice.technique,
            segments=len(splice),
            total_bytes=splice.total_size,
            overhead_bytes=splice.overhead_bytes,
            overhead_percent=100.0 * splice.overhead_ratio,
        )

    rows = [row(GopSplicer().splice(stream))]
    rows.extend(
        row(DurationSplicer(duration).splice(stream))
        for duration in durations
    )
    return rows


def run_variable_bandwidth(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    base_kb: int = 256,
    amplitude: float = 0.5,
    period: float = 20.0,
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """A4 — splicing under oscillating bandwidth (paper future work).

    Every peer's access bandwidth follows a square wave between
    ``base * (1 - amplitude)`` and ``base * (1 + amplitude)`` with the
    given period, changing mid-run through the flow network so active
    transfers re-share immediately.
    """
    wave = SquareWave(amplitude=amplitude, period=period)
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    specs = [
        SplicerSpec("gop"),
        SplicerSpec("duration", 2.0),
        SplicerSpec("duration", 4.0),
        SplicerSpec("duration", 8.0),
    ]
    cells = [
        cell_for(
            spec,
            base_kb,
            cfg,
            video=video,
            square_wave=wave,
            label=f"A4/{spec.technique}",
        )
        for spec in specs
    ]
    results = sweep.run_cells(cells)
    series = {
        # The byte/completion columns are meaningless under an
        # oscillating-bandwidth run; zero them as the original
        # ablation reported.
        spec.technique: [
            replace(
                cell,
                seeder_bytes=0.0,
                peer_bytes=0.0,
                finished_fraction=1.0,
            )
        ]
        for spec, cell in zip(specs, results)
    }
    return FigureResult(
        figure="A4",
        title=(
            f"Stalls under square-wave bandwidth "
            f"({base_kb} kB/s +/- {int(amplitude * 100)}%)"
        ),
        metric="stall_count",
        series=series,
    )


def run_preroll(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    prerolls: tuple[int, ...] = (1, 2, 3),
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """A7 — pre-roll buffering: trading startup for stalls.

    The paper's client starts on the first segment; HLS players
    pre-roll several.  Measures both observables per pre-roll depth.
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    splicer = SplicerSpec("duration", 4.0)
    cells = [
        cell_for(
            splicer,
            bandwidth_kb,
            cfg,
            video=video,
            preroll_segments=preroll,
            label=f"A7/preroll {preroll}",
        )
        for preroll in prerolls
    ]
    results = sweep.run_cells(cells)
    series = {
        f"preroll {preroll}": [
            replace(
                cell,
                seeder_bytes=0.0,
                peer_bytes=0.0,
                finished_fraction=1.0,
            )
        ]
        for preroll, cell in zip(prerolls, results)
    }
    return FigureResult(
        figure="A7",
        title=f"Pre-roll depth at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


def run_swarm_scaling(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    swarm_sizes: tuple[int, ...] = (5, 10, 19, 38),
    executor: SweepExecutor | None = None,
    fidelity: str | None = None,
) -> FigureResult:
    """A8 — scalability: does P2P shed load from the origin?

    The paper motivates P2P by scalability; this sweep grows the swarm
    and reports stalls while the harness records how the seeder's
    share of the served bytes shrinks (``seeder_bytes`` vs
    ``peer_bytes`` in the cells).

    Args:
        fidelity: swarm-backend override for every cell.  The
            vectorized ``"cohort"`` tier extends the sweep well past
            the exact engine's practical ceiling (10^4+ peers; see
            ``docs/SCALING.md``).
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    splicer = SplicerSpec("duration", 4.0)
    cells = [
        cell_for(
            splicer,
            bandwidth_kb,
            replace(cfg, n_leechers=size),
            video=video,
            fidelity=fidelity,
            label=f"A8/{size} peers",
        )
        for size in swarm_sizes
    ]
    results = sweep.run_cells(cells)
    series = {
        f"{size} peers": [cell]
        for size, cell in zip(swarm_sizes, results)
    }
    return FigureResult(
        figure="A8",
        title=f"Swarm scaling at {bandwidth_kb} kB/s",
        metric="stall_count",
        series=series,
    )


def run_adaptive_splicing(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = PAPER_BANDWIDTHS_KB,
    executor: SweepExecutor | None = None,
) -> FigureResult:
    """A5 — duration-adaptive splicing (paper future work).

    For each bandwidth the :class:`AdaptiveDurationPlanner` picks a
    segment duration before splicing; compared against fixed 4-second
    splicing.
    """
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    stream = video if video is not None else make_paper_video(cfg)
    planner = AdaptiveDurationPlanner(bitrate=stream.bitrate)
    cells = [
        cell_for(
            SplicerSpec(
                "duration", planner.pick(kB_per_s(bw)).duration
            ),
            bw,
            cfg,
            video=video,
            label=f"A5/adaptive @ {bw} kB/s",
        )
        for bw in bandwidths_kb
    ] + [
        cell_for(
            SplicerSpec("duration", 4.0),
            bw,
            cfg,
            video=video,
            label=f"A5/fixed 4s @ {bw} kB/s",
        )
        for bw in bandwidths_kb
    ]
    results = sweep.run_cells(cells)
    split = len(bandwidths_kb)
    return FigureResult(
        figure="A5",
        title="Adaptive segment duration vs fixed 4 s",
        metric="stall_count",
        series={
            "adaptive duration": results[:split],
            "fixed 4s": results[split:],
        },
    )
