"""A10 — bitrate adaptation vs duration adaptation.

The paper's central premise: "As they keep the duration of the segment
constant and vary the bit-rates, it will degrade the video quality ...
Instead of varying the bit-rate, we can vary the segment duration.  In
this way, we can adapt the segment size to avoid stalls without
degrading the video quality."

This study pits three client strategies against each other in the
client-server setting where both are implementable:

* **ABR (buffer-based)** — constant 4 s segments, bitrate varies;
* **duration-adaptive** — constant (top) bitrate, the planner picks
  the segment duration for the bandwidth;
* **fixed top quality** — constant bitrate, constant 4 s segments
  (the non-adaptive control).

Reported per bandwidth: stalls, startup, and delivered quality.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..abr.ladder import BitrateLadder, encode_ladder
from ..abr.policy import BufferBasedAbr, FixedRung
from ..abr.session import AbrSession, AbrSessionConfig
from ..core.segment_size import AdaptiveDurationPlanner
from ..errors import ExperimentError
from ..units import kB_per_s


@dataclass(frozen=True, slots=True)
class AbrStudyRow:
    """One (strategy, bandwidth) cell of the study.

    Attributes:
        strategy: strategy label.
        bandwidth_kb: client bandwidth, kB/s.
        stalls: stall count.
        stall_duration: total stall seconds.
        startup: startup seconds.
        mean_bitrate: delivered quality, bits/second.
        switches: rendition switches.
    """

    strategy: str
    bandwidth_kb: float
    stalls: int
    stall_duration: float
    startup: float
    mean_bitrate: float
    switches: int


def run(
    bandwidths_kb: tuple[int, ...] = (96, 128, 192, 256),
    seed: int = 1,
    duration: float = 120.0,
    ladder: BitrateLadder | None = None,
) -> list[AbrStudyRow]:
    """Run the three strategies across bandwidths.

    Args:
        bandwidths_kb: client bandwidths in kB/s (the interesting range
            sits *below* the top rung's rate, where adaptation must
            act).
        seed: ladder encoding seed.
        duration: video duration, seconds.
        ladder: pre-encoded ladder (encoded fresh when omitted).

    Returns:
        One row per (strategy, bandwidth).
    """
    if not bandwidths_kb:
        raise ExperimentError("bandwidths_kb must be non-empty")
    rungs = ladder if ladder is not None else encode_ladder(
        seed=seed, duration=duration, segment_duration=4.0
    )
    top_bitrate = rungs.top.bitrate
    # The CDN client fetches serially (one segment in flight), so the
    # steady buffer is about one segment deep (buffer_durations=1) and
    # the pick needs headroom against size variance (safety margin).
    planner = AdaptiveDurationPlanner(
        bitrate=top_bitrate,
        buffer_durations=1.0,
        safety_margin=1.15,
        candidate_durations=(1.0, 2.0, 4.0, 8.0, 16.0),
    )
    rows: list[AbrStudyRow] = []
    for bandwidth_kb in bandwidths_kb:
        bandwidth = kB_per_s(bandwidth_kb)
        config = AbrSessionConfig(bandwidth=bandwidth)

        # 1) ABR: constant duration, varying bitrate.
        abr = AbrSession(rungs, BufferBasedAbr(), config).run()
        rows.append(_row("abr-buffer", bandwidth_kb, abr))

        # 2) Duration-adaptive: constant top bitrate, planner duration.
        chosen = planner.pick(bandwidth).duration
        adaptive_ladder = encode_ladder(
            seed=seed,
            duration=duration,
            bitrates=(top_bitrate,),
            segment_duration=chosen,
        )
        adaptive = AbrSession(
            adaptive_ladder, FixedRung(-1), config
        ).run()
        rows.append(
            _row(
                f"duration-adaptive ({chosen:g}s)",
                bandwidth_kb,
                adaptive,
            )
        )

        # 3) Fixed top quality, fixed 4 s segments.
        fixed = AbrSession(rungs, FixedRung(-1), config).run()
        rows.append(_row("fixed-top", bandwidth_kb, fixed))
    return rows


def _row(strategy: str, bandwidth_kb: float, metrics) -> AbrStudyRow:
    return AbrStudyRow(
        strategy=strategy,
        bandwidth_kb=bandwidth_kb,
        stalls=metrics.streaming.stall_count,
        stall_duration=metrics.streaming.total_stall_duration,
        startup=metrics.streaming.startup_time or 0.0,
        mean_bitrate=metrics.mean_bitrate,
        switches=metrics.switches,
    )


def format_rows(rows: list[AbrStudyRow]) -> str:
    """Render the study as a text table."""
    lines = [
        f"{'strategy':24s} {'bw kB/s':>8s} {'stalls':>6s} "
        f"{'stall s':>8s} {'startup':>8s} {'quality':>8s} {'switch':>6s}"
    ]
    for row in rows:
        lines.append(
            f"{row.strategy:24s} {row.bandwidth_kb:8.0f} "
            f"{row.stalls:6d} {row.stall_duration:8.1f} "
            f"{row.startup:8.2f} {row.mean_bitrate / 1e6:7.2f}M "
            f"{row.switches:6d}"
        )
    return "\n".join(lines)
