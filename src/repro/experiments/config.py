"""Shared experimental configuration (paper Section V).

The paper's setup: 20 GENI nodes (1 seeder + 19 peers) in a star, a
2-minute 1 Mbps MPEG-4 video, 50 ms latency among peers, 500 ms to the
seeder, 5 % packet loss, bandwidth varied per run, three runs averaged
("We ran the application three times for each bandwidth and took the
rounded average").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.policy import AdaptivePoolPolicy, DownloadPolicy
from ..errors import ExperimentError
from ..p2p.churn import ChurnConfig
from ..p2p.swarm import FIDELITY_TIERS, SwarmConfig
from ..units import kB_per_s, milliseconds
from ..video.bitstream import Bitstream
from ..video.encoder import encode_paper_video

#: Bandwidths of Figs. 2, 3 and 5, in kB/s.
PAPER_BANDWIDTHS_KB: tuple[int, ...] = (128, 256, 512, 768)

#: Bandwidths of Fig. 4 (startup time), in kB/s.
FIG4_BANDWIDTHS_KB: tuple[int, ...] = (128, 256, 512, 1024)

#: Segment durations evaluated by the paper, seconds.
PAPER_DURATIONS: tuple[float, ...] = (2.0, 4.0, 8.0)

#: Fixed pool sizes of Fig. 5.
PAPER_POOL_SIZES: tuple[int, ...] = (2, 4, 8)


@dataclass(frozen=True, slots=True)
class ExperimentConfig:
    """Knobs shared by every figure reproduction.

    Attributes:
        n_leechers: watching peers (paper: 19 + the seeder = 20 nodes).
        seeds: swarm seeds averaged per cell (paper averages 3 runs).
        video_seed: seed of the synthetic video (fixed across cells so
            every technique slices the same video).
        seeder_multiplier: seeder access bandwidth as a multiple of the
            peer bandwidth (the origin is provisioned above the peers;
            see DESIGN.md section 5).
        peer_rtt: round-trip time between peers, seconds.
        seeder_rtt: control-plane round trip to the seeder, seconds.
        path_loss: end-to-end loss probability.
        join_stagger: seconds between consecutive peer joins.
        churn: optional churn model parameters.
        max_time: per-run simulation cap, seconds.
        fidelity: swarm backend for every run — ``"exact"``,
            ``"cohort"`` or ``"fluid"`` (see ``docs/SCALING.md``).
        max_cohorts: population granularity of the vectorized tiers.
        fluid_dt: integration step of the fluid tier, seconds
            (``None`` derives one from the splice).
    """

    n_leechers: int = 19
    seeds: tuple[int, ...] = (7, 17, 27)
    video_seed: int = 1
    seeder_multiplier: float = 8.0
    peer_rtt: float = milliseconds(50)
    seeder_rtt: float = milliseconds(500)
    path_loss: float = 0.05
    join_stagger: float = 5.0
    churn: ChurnConfig | None = None
    max_time: float = 3600.0
    fidelity: str = "exact"
    max_cohorts: int = 64
    fluid_dt: float | None = None

    def __post_init__(self) -> None:
        if not self.seeds:
            raise ExperimentError("seeds must be non-empty")
        if self.seeder_multiplier <= 0:
            raise ExperimentError(
                f"seeder_multiplier must be positive: "
                f"{self.seeder_multiplier}"
            )
        if self.fidelity not in FIDELITY_TIERS:
            raise ExperimentError(
                f"fidelity must be one of {FIDELITY_TIERS}: "
                f"{self.fidelity!r}"
            )


def make_paper_video(config: ExperimentConfig | None = None) -> Bitstream:
    """Encode the experiment's video (2 min, nominal 1 Mbps)."""
    cfg = config or ExperimentConfig()
    return encode_paper_video(seed=cfg.video_seed)


def make_swarm_config(
    bandwidth_kb: float,
    seed: int,
    config: ExperimentConfig | None = None,
    policy: DownloadPolicy | None = None,
) -> SwarmConfig:
    """Build the SwarmConfig for one experimental cell.

    Args:
        bandwidth_kb: peer access bandwidth in kB/s (the x-axis).
        seed: the run's swarm seed.
        config: shared experiment parameters.
        policy: download policy (defaults to the paper's adaptive
            pooling).
    """
    if bandwidth_kb <= 0:
        raise ExperimentError(
            f"bandwidth_kb must be positive: {bandwidth_kb}"
        )
    cfg = config or ExperimentConfig()
    return SwarmConfig(
        bandwidth=kB_per_s(bandwidth_kb),
        seeder_bandwidth=kB_per_s(bandwidth_kb * cfg.seeder_multiplier),
        n_leechers=cfg.n_leechers,
        peer_rtt=cfg.peer_rtt,
        seeder_rtt=cfg.seeder_rtt,
        path_loss=cfg.path_loss,
        policy=policy if policy is not None else AdaptivePoolPolicy(),
        seed=seed,
        join_stagger=cfg.join_stagger,
        churn=cfg.churn,
        max_time=cfg.max_time,
        fidelity=cfg.fidelity,
        max_cohorts=cfg.max_cohorts,
        fluid_dt=cfg.fluid_dt,
    )
