"""Sweep runner: one cell = one (technique, bandwidth, policy) point,
averaged over the configured seeds as the paper averages three runs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from ..core.policy import DownloadPolicy
from ..core.segments import SpliceResult
from ..obs.context import Observability
from ..p2p.swarm import Swarm, SwarmResult
from .config import ExperimentConfig, make_swarm_config


@dataclass(frozen=True, slots=True)
class CellResult:
    """Seed-averaged metrics for one experimental cell.

    Attributes:
        bandwidth_kb: peer bandwidth of the cell, kB/s.
        stall_count: mean stalls per finishing peer, averaged over
            seeds.
        stall_duration: mean total stall seconds per finishing peer.
        startup_time: mean startup seconds per starting peer.
        seeder_bytes: mean bytes served by the seeder per run.
        peer_bytes: mean bytes served peer-to-peer per run.
        finished_fraction: fraction of peers that finished playback.
    """

    bandwidth_kb: float
    stall_count: float
    stall_duration: float
    startup_time: float
    seeder_bytes: float
    peer_bytes: float
    finished_fraction: float

    @property
    def rounded_stalls(self) -> int:
        """Stall count as the paper reports it ("rounded average")."""
        return round(self.stall_count)


@dataclass(frozen=True, slots=True)
class FigureResult:
    """One reproduced figure: labeled series over the bandwidth axis.

    Attributes:
        figure: figure identifier (e.g. ``"fig2"``).
        title: human-readable title.
        metric: which CellResult field the figure plots.
        series: label -> cells in bandwidth order.
    """

    figure: str
    title: str
    metric: str
    series: dict[str, list[CellResult]]

    def value(self, cell: CellResult) -> float:
        """Extract this figure's metric from a cell."""
        return float(getattr(cell, self.metric))


def run_cell(
    splice: SpliceResult,
    bandwidth_kb: float,
    config: ExperimentConfig | None = None,
    policy: DownloadPolicy | None = None,
    obs: Observability | None = None,
) -> CellResult:
    """Run one cell: every configured seed, then average.

    Args:
        splice: the spliced video to stream.
        bandwidth_kb: peer bandwidth in kB/s.
        config: shared experiment parameters.
        policy: download policy override.
        obs: optional observability context shared by every run of the
            cell.  Counters and histograms accumulate across seeds
            (each run's histogram intervals are closed at run end);
            gauges keep the last run's value.  Tracing a multi-seed
            cell mixes restarting sim clocks in one trace — prefer a
            metrics-only context here and trace single runs instead.

    Returns:
        Seed-averaged :class:`CellResult`.
    """
    cfg = config or ExperimentConfig()
    results: list[SwarmResult] = []
    for seed in cfg.seeds:
        swarm_config = make_swarm_config(
            bandwidth_kb, seed, cfg, policy
        )
        results.append(Swarm(splice, swarm_config, obs=obs).run())
    return CellResult(
        bandwidth_kb=bandwidth_kb,
        stall_count=statistics.fmean(
            r.mean_stall_count() for r in results
        ),
        stall_duration=statistics.fmean(
            r.mean_stall_duration() for r in results
        ),
        startup_time=statistics.fmean(
            r.mean_startup_time() for r in results
        ),
        seeder_bytes=statistics.fmean(
            r.seeder_bytes_uploaded for r in results
        ),
        peer_bytes=statistics.fmean(
            r.peer_bytes_uploaded for r in results
        ),
        finished_fraction=statistics.fmean(
            len(r.finished_metrics()) / max(1, len(r.metrics))
            for r in results
        ),
    )
