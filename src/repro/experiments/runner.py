"""Sweep runner: one cell = one (technique, bandwidth, policy) point,
averaged over the configured seeds as the paper averages three runs.

The per-seed reduction is split into two shared pieces —
:func:`seed_stats` (one swarm run -> its scalar stats) and
:func:`merge_cell` (stats in seed order -> a :class:`CellResult`) — so
the serial path here and the parallel sweep executor
(:mod:`repro.parallel`) compute bit-identical cells.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Sequence

from ..core.policy import DownloadPolicy
from ..core.segments import SpliceResult
from ..errors import ExperimentError
from ..obs.analyze import CellAnalysis, RunAnalysis, merge_analyses
from ..obs.context import Observability
from ..p2p.swarm import SwarmResult, build_swarm
from .config import ExperimentConfig, make_swarm_config


@dataclass(frozen=True, slots=True)
class CellResult:
    """Seed-averaged metrics for one experimental cell.

    Attributes:
        bandwidth_kb: peer bandwidth of the cell, kB/s.
        stall_count: mean stalls per finishing peer, averaged over
            seeds.
        stall_duration: mean total stall seconds per finishing peer.
        startup_time: mean startup seconds per starting peer.
        seeder_bytes: mean bytes served by the seeder per run.
        peer_bytes: mean bytes served peer-to-peer per run.
        finished_fraction: fraction of peers that finished playback.
        analysis: stall diagnosis aggregated over the cell's seeds
            (only populated by analyzing sweeps; ``None`` otherwise).
    """

    bandwidth_kb: float
    stall_count: float
    stall_duration: float
    startup_time: float
    seeder_bytes: float
    peer_bytes: float
    finished_fraction: float
    analysis: CellAnalysis | None = None

    @property
    def rounded_stalls(self) -> int:
        """Stall count as the paper reports it ("rounded average")."""
        return round(self.stall_count)


@dataclass(frozen=True, slots=True)
class FigureResult:
    """One reproduced figure: labeled series over the bandwidth axis.

    Attributes:
        figure: figure identifier (e.g. ``"fig2"``).
        title: human-readable title.
        metric: which CellResult field the figure plots.
        series: label -> cells in bandwidth order.
    """

    figure: str
    title: str
    metric: str
    series: dict[str, list[CellResult]]

    def value(self, cell: CellResult) -> float:
        """Extract this figure's metric from a cell."""
        return float(getattr(cell, self.metric))


@dataclass(frozen=True, slots=True)
class SeedStats:
    """Scalar outcome of one swarm run (one seed of one cell).

    Picklable on purpose: worker processes ship these back to the
    parent instead of whole :class:`~repro.p2p.swarm.SwarmResult`
    objects.

    Attributes:
        stall_count: mean stalls per finishing peer.
        stall_duration: mean total stall seconds per finishing peer.
        startup_time: mean startup seconds per starting peer.
        seeder_bytes: bytes served by the seeder.
        peer_bytes: bytes served peer-to-peer.
        finished_fraction: fraction of peers that finished playback.
        events_fired: simulator callbacks the run executed.
        end_time: simulated seconds the run covered.
    """

    stall_count: float
    stall_duration: float
    startup_time: float
    seeder_bytes: float
    peer_bytes: float
    finished_fraction: float
    events_fired: int = 0
    end_time: float = 0.0


def seed_stats(
    result: SwarmResult, events_fired: int = 0, end_time: float = 0.0
) -> SeedStats:
    """Reduce one :class:`SwarmResult` to its cell-level scalars."""
    return SeedStats(
        stall_count=result.mean_stall_count(),
        stall_duration=result.mean_stall_duration(),
        startup_time=result.mean_startup_time(),
        seeder_bytes=result.seeder_bytes_uploaded,
        peer_bytes=result.peer_bytes_uploaded,
        finished_fraction=(
            len(result.finished_metrics()) / max(1, len(result.metrics))
        ),
        events_fired=events_fired,
        end_time=end_time,
    )


def merge_cell(
    bandwidth_kb: float,
    stats: Sequence[SeedStats],
    analyses: Sequence[RunAnalysis] | None = None,
) -> CellResult:
    """Average per-seed stats (in seed order) into one cell.

    Both execution paths — the serial loop below and the parallel
    executor's deterministic merge — call exactly this function, so a
    cell's floats are identical regardless of worker count.

    Args:
        analyses: per-seed stall diagnoses (in seed order) from an
            analyzing sweep; merged onto the cell when given.
    """
    if not stats:
        raise ExperimentError("cannot merge a cell with no seed runs")
    return CellResult(
        bandwidth_kb=bandwidth_kb,
        stall_count=statistics.fmean(s.stall_count for s in stats),
        stall_duration=statistics.fmean(s.stall_duration for s in stats),
        startup_time=statistics.fmean(s.startup_time for s in stats),
        seeder_bytes=statistics.fmean(s.seeder_bytes for s in stats),
        peer_bytes=statistics.fmean(s.peer_bytes for s in stats),
        finished_fraction=statistics.fmean(
            s.finished_fraction for s in stats
        ),
        analysis=merge_analyses(analyses) if analyses else None,
    )


def run_cell(
    splice: SpliceResult,
    bandwidth_kb: float,
    config: ExperimentConfig | None = None,
    policy: DownloadPolicy | None = None,
    obs: Observability | None = None,
) -> CellResult:
    """Run one cell: every configured seed, then average.

    Args:
        splice: the spliced video to stream.
        bandwidth_kb: peer bandwidth in kB/s.
        config: shared experiment parameters.
        policy: download policy override.
        obs: optional observability context shared by every run of the
            cell.  Counters and histograms accumulate across seeds
            (each run's histogram intervals are closed at run end);
            gauges keep the last run's value.  Tracing a multi-seed
            cell mixes restarting sim clocks in one trace — prefer a
            metrics-only context here and trace single runs instead.

    Returns:
        Seed-averaged :class:`CellResult`.
    """
    cfg = config or ExperimentConfig()
    stats: list[SeedStats] = []
    for seed in cfg.seeds:
        swarm_config = make_swarm_config(
            bandwidth_kb, seed, cfg, policy
        )
        swarm = build_swarm(splice, swarm_config, obs=obs)
        result = swarm.run()
        stats.append(
            seed_stats(
                result,
                events_fired=swarm.sim.events_fired,
                end_time=swarm.sim.now,
            )
        )
    return merge_cell(bandwidth_kb, stats)
