"""Experiment harness: regenerate every figure of the paper.

One module per figure plus ablations:

* :mod:`repro.experiments.fig2` — total stalls vs bandwidth per
  splicing technique;
* :mod:`repro.experiments.fig3` — total stall duration vs bandwidth;
* :mod:`repro.experiments.fig4` — startup time vs bandwidth;
* :mod:`repro.experiments.fig5` — stalls vs download-pool policy;
* :mod:`repro.experiments.ablations` — segment-size sweep, churn,
  splicing overhead, variable bandwidth, adaptive splicing.

Each figure module exposes ``run(config) -> FigureResult`` and can be
printed with :func:`repro.experiments.report.format_figure`.
"""

from .config import (
    FIG4_BANDWIDTHS_KB,
    PAPER_BANDWIDTHS_KB,
    ExperimentConfig,
    make_paper_video,
    make_swarm_config,
)
from .runner import CellResult, FigureResult, run_cell
from .report import format_figure, format_figure_analysis

__all__ = [
    "CellResult",
    "ExperimentConfig",
    "FIG4_BANDWIDTHS_KB",
    "FigureResult",
    "PAPER_BANDWIDTHS_KB",
    "format_figure",
    "format_figure_analysis",
    "make_paper_video",
    "make_swarm_config",
    "run_cell",
]
