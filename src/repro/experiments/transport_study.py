"""A9 — transport study: TCP vs a PPSPP/Libswift-style UDP protocol.

The paper streams over TCP and cites the IETF's UDP-based streaming
protocols (Libswift, PPSPP) as the designed-for-streaming alternative.
This study re-runs the splicing comparison on both transports: the
delay-based transport pays no Mathis ceiling and no timeout collapse,
so the low-bandwidth pathologies of small segments should soften.
"""

from __future__ import annotations

from dataclasses import replace

from ..core.splicer import DurationSplicer, GopSplicer, Splicer
from ..net.tcp import TcpParams, ppspp_params
from ..video.bitstream import Bitstream
from .config import ExperimentConfig, make_paper_video, make_swarm_config
from .runner import CellResult, FigureResult
from ..p2p.swarm import Swarm

import statistics


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = (128, 256, 512),
    splicer: Splicer | None = None,
) -> FigureResult:
    """Compare transports across bandwidths for one splicing.

    Args:
        config: shared experiment parameters.
        video: pre-encoded video.
        bandwidths_kb: x-axis points.
        splicer: splicing technique (default: 2-second duration — the
            one TCP punishes hardest).

    Returns:
        One series per transport.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    splice = (splicer or DurationSplicer(2.0)).splice(stream)
    transports: dict[str, TcpParams] = {
        "tcp": TcpParams(),
        "ppspp-udp": ppspp_params(),
    }
    series: dict[str, list[CellResult]] = {}
    for label, params in transports.items():
        cells = []
        for bandwidth_kb in bandwidths_kb:
            stalls, durations, startups = [], [], []
            for seed in cfg.seeds:
                swarm_config = replace(
                    make_swarm_config(bandwidth_kb, seed, cfg),
                    tcp_params=params,
                )
                result = Swarm(splice, swarm_config).run()
                stalls.append(result.mean_stall_count())
                durations.append(result.mean_stall_duration())
                startups.append(result.mean_startup_time())
            cells.append(
                CellResult(
                    bandwidth_kb=bandwidth_kb,
                    stall_count=statistics.fmean(stalls),
                    stall_duration=statistics.fmean(durations),
                    startup_time=statistics.fmean(startups),
                    seeder_bytes=0.0,
                    peer_bytes=0.0,
                    finished_fraction=1.0,
                )
            )
        series[label] = cells
    return FigureResult(
        figure="A9",
        title=f"Transport comparison ({splice.technique})",
        metric="stall_count",
        series=series,
    )
