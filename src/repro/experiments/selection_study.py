"""A6 — piece-selection study (sequential vs windowed rarest-first).

The paper's client fetches strictly sequentially; BitTorrent lore says
rarest-first keeps a swarm healthy.  This study measures both — plus
the streaming hybrid — with and without churn, where piece diversity
should matter most.
"""

from __future__ import annotations

import statistics
from dataclasses import replace

from ..core.splicer import DurationSplicer
from ..p2p.churn import ChurnConfig
from ..p2p.selection import (
    PieceSelector,
    SequentialSelector,
    WindowedRarestSelector,
)
from ..p2p.swarm import Swarm
from ..video.bitstream import Bitstream
from .config import ExperimentConfig, make_paper_video, make_swarm_config
from .runner import CellResult, FigureResult


def selectors() -> list[PieceSelector]:
    """The strategies under study."""
    return [
        SequentialSelector(),
        WindowedRarestSelector(urgent_window=2, lookahead=8),
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidth_kb: int = 256,
    churn_fraction: float = 0.5,
) -> FigureResult:
    """Compare selectors with and without churn at one bandwidth.

    Args:
        config: shared experiment parameters.
        video: pre-encoded video.
        bandwidth_kb: peer bandwidth, kB/s.
        churn_fraction: fraction of peers that depart in the churny
            variant.

    Returns:
        One series per (selector, churn) combination; the single cell
        of each series carries the seed-averaged metrics.
    """
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    splice = DurationSplicer(4.0).splice(stream)
    series: dict[str, list[CellResult]] = {}
    for selector in selectors():
        for churny in (False, True):
            churn = (
                ChurnConfig(
                    mean_lifetime=45.0, fraction=churn_fraction
                )
                if churny
                else None
            )
            scenario_cfg = replace(cfg, churn=churn)
            stalls, durations, startups = [], [], []
            for seed in scenario_cfg.seeds:
                swarm_config = make_swarm_config(
                    bandwidth_kb, seed, scenario_cfg
                )
                swarm_config = replace(
                    swarm_config, selector=selector
                )
                result = Swarm(splice, swarm_config).run()
                stalls.append(result.mean_stall_count())
                durations.append(result.mean_stall_duration())
                startups.append(result.mean_startup_time())
            label = selector.name + (" +churn" if churny else "")
            series[label] = [
                CellResult(
                    bandwidth_kb=bandwidth_kb,
                    stall_count=statistics.fmean(stalls),
                    stall_duration=statistics.fmean(durations),
                    startup_time=statistics.fmean(startups),
                    seeder_bytes=0.0,
                    peer_bytes=0.0,
                    finished_fraction=1.0,
                )
            ]
    return FigureResult(
        figure="A6",
        title=(
            f"Piece selection at {bandwidth_kb} kB/s "
            f"(churn = {int(churn_fraction * 100)}%)"
        ),
        metric="stall_count",
        series=series,
    )
