"""ASCII rendering of reproduced figures."""

from __future__ import annotations

from .runner import FigureResult

_UNITS = {
    "stall_count": "stalls",
    "stall_duration": "seconds",
    "startup_time": "seconds",
}


def format_figure(result: FigureResult, precision: int = 1) -> str:
    """Render a figure as a bandwidth-by-series table.

    Mirrors the paper's presentation: one row per series (splicing
    technique or pool policy), one column per bandwidth.
    """
    bandwidths: list[float] = []
    for cells in result.series.values():
        for cell in cells:
            if cell.bandwidth_kb not in bandwidths:
                bandwidths.append(cell.bandwidth_kb)
    bandwidths.sort()

    unit = _UNITS.get(result.metric, result.metric)
    header = [f"{result.figure}  {result.title}  [{unit}]"]
    label_width = max(
        (len(label) for label in result.series), default=8
    )
    label_width = max(label_width, len("series"))
    columns = [f"{int(bw)} kB/s" for bw in bandwidths]
    widths = [max(len(c), 8) for c in columns]
    rule = "-" * (label_width + 3 + sum(w + 3 for w in widths))
    header.append(rule)
    header.append(
        "series".ljust(label_width)
        + " | "
        + " | ".join(c.rjust(w) for c, w in zip(columns, widths))
    )
    header.append(rule)
    for label, cells in result.series.items():
        by_bw = {cell.bandwidth_kb: cell for cell in cells}
        row = []
        for bw, width in zip(bandwidths, widths):
            cell = by_bw.get(bw)
            if cell is None:
                row.append("-".rjust(width))
            else:
                row.append(
                    f"{result.value(cell):.{precision}f}".rjust(width)
                )
        header.append(
            label.ljust(label_width) + " | " + " | ".join(row)
        )
    header.append(rule)
    return "\n".join(header)


def format_cells_csv(result: FigureResult) -> str:
    """Render a figure's data as CSV (series,bandwidth_kb,value)."""
    lines = ["series,bandwidth_kb,value"]
    for label, cells in result.series.items():
        for cell in cells:
            lines.append(
                f"{label},{cell.bandwidth_kb:g},{result.value(cell):g}"
            )
    return "\n".join(lines)
