"""ASCII rendering of reproduced figures."""

from __future__ import annotations

from ..obs.causes import STALL_CAUSES
from .runner import FigureResult

_UNITS = {
    "stall_count": "stalls",
    "stall_duration": "seconds",
    "startup_time": "seconds",
}


def format_figure(result: FigureResult, precision: int = 1) -> str:
    """Render a figure as a bandwidth-by-series table.

    Mirrors the paper's presentation: one row per series (splicing
    technique or pool policy), one column per bandwidth.
    """
    bandwidths: list[float] = []
    for cells in result.series.values():
        for cell in cells:
            if cell.bandwidth_kb not in bandwidths:
                bandwidths.append(cell.bandwidth_kb)
    bandwidths.sort()

    unit = _UNITS.get(result.metric, result.metric)
    header = [f"{result.figure}  {result.title}  [{unit}]"]
    label_width = max(
        (len(label) for label in result.series), default=8
    )
    label_width = max(label_width, len("series"))
    columns = [f"{int(bw)} kB/s" for bw in bandwidths]
    widths = [max(len(c), 8) for c in columns]
    rule = "-" * (label_width + 3 + sum(w + 3 for w in widths))
    header.append(rule)
    header.append(
        "series".ljust(label_width)
        + " | "
        + " | ".join(c.rjust(w) for c, w in zip(columns, widths))
    )
    header.append(rule)
    for label, cells in result.series.items():
        by_bw = {cell.bandwidth_kb: cell for cell in cells}
        row = []
        for bw, width in zip(bandwidths, widths):
            cell = by_bw.get(bw)
            if cell is None:
                row.append("-".rjust(width))
            else:
                row.append(
                    f"{result.value(cell):.{precision}f}".rjust(width)
                )
        header.append(
            label.ljust(label_width) + " | " + " | ".join(row)
        )
    header.append(rule)
    return "\n".join(header)


def format_figure_analysis(result: FigureResult) -> str:
    """The stall-cause breakdown table for an analyzed figure.

    One row per (series, bandwidth) cell that carries an analysis,
    one column per cause in taxonomy order, plus the cell's health
    aggregates.  Returns a short notice when the figure was run
    without ``analyze=True``.
    """
    rows: list[tuple[str, object]] = []
    for label, cells in result.series.items():
        for cell in cells:
            if cell.analysis is not None:
                rows.append(
                    (f"{label} @ {int(cell.bandwidth_kb)} kB/s", cell)
                )
    if not rows:
        return (
            f"{result.figure}: no stall diagnosis attached "
            "(run with analyze=True / --analyze)"
        )

    label_width = max(len("cell"), max(len(r[0]) for r in rows))
    short = {
        "churn-loss": "churn",
        "oversized-segment": "oversized",
        "pool-undersubscription": "pool",
        "seeder-bottleneck": "seeder",
        "connection-overhead": "conn",
        "startup": "startup",
    }
    columns = [short[c] for c in STALL_CAUSES] + ["total", "eff", "warn"]
    widths = [max(len(c), 6) for c in columns]
    rule = "-" * (label_width + 3 + sum(w + 3 for w in widths))
    lines = [
        f"{result.figure}  stall causes per cell "
        "(totals across the cell's seeds)",
        rule,
        "cell".ljust(label_width)
        + " | "
        + " | ".join(c.rjust(w) for c, w in zip(columns, widths)),
        rule,
    ]
    for label, cell in rows:
        analysis = cell.analysis
        values = [
            str(analysis.causes.get(cause, 0)) for cause in STALL_CAUSES
        ]
        values.append(str(analysis.stall_count))
        values.append(
            f"{analysis.mean_transfer_efficiency:.2f}"
            if analysis.mean_transfer_efficiency is not None
            else "-"
        )
        warn = analysis.violation_count + analysis.truncated_runs
        values.append(str(warn) if warn else "-")
        lines.append(
            label.ljust(label_width)
            + " | "
            + " | ".join(v.rjust(w) for v, w in zip(values, widths))
        )
    lines.append(rule)
    lines.append(
        "causes: churn=churn-loss  oversized=oversized-segment  "
        "pool=pool-undersubscription  seeder=seeder-bottleneck  "
        "conn=connection-overhead  | eff=transfer efficiency  "
        "warn=violations+truncated runs"
    )
    return "\n".join(lines)


def format_cells_csv(result: FigureResult) -> str:
    """Render a figure's data as CSV (series,bandwidth_kb,value)."""
    lines = ["series,bandwidth_kb,value"]
    for label, cells in result.series.items():
        for cell in cells:
            lines.append(
                f"{label},{cell.bandwidth_kb:g},{result.value(cell):g}"
            )
    return "\n".join(lines)
