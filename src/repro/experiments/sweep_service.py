"""The sharded, resumable sweep service behind ``repro sweep``.

A figure sweep is a deterministic function of (figure, scale,
fidelity): every machine that rebuilds it gets the same cells, the
same :class:`~repro.parallel.spec.RunSpec` expansion, and — thanks to
the canonical-JSON content digest — the same identity per run.  That
makes multi-machine sweeps a three-verb protocol over plain files:

* ``plan`` — expand the sweep, digest every run, and deterministically
  partition the digests into K shards (``int(digest, 16) % K``).  The
  plan document (schema :data:`SWEEP_SCHEMA`) records the digests it
  expects, so a shard runner on another machine can prove it rebuilt
  the *same* sweep before running a single cell.
* ``run`` — execute one shard into a
  :class:`~repro.parallel.store.ResultStore` directory.  Any shard can
  run on any machine, at any ``--jobs``, in any order; interrupted
  shards resume from their store.
* ``merge`` — union the shard stores (content-addressed entries make
  the union conflict-free) and replay the figure against the merged
  store: every run is a cache hit, and the resulting
  :class:`~repro.experiments.runner.FigureResult` is byte-identical to
  a single-machine run because the cached outcomes *are* the original
  per-run results, merged in the same (cell, seed) order.

Missing entries (a shard that never ran, a killed machine) are not an
error at merge time: the merge executor simply computes them — merge
degrades gracefully into resume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from ..errors import StoreError
from ..obs.ops import (
    NULL_HEARTBEAT,
    NULL_OPS,
    OpsLog,
    ShardHeartbeat,
    heartbeat_path,
    merge_ops_path,
    shard_ops_path,
)
from ..parallel import (
    ResultStore,
    SweepExecutor,
    SweepProgress,
)
from ..parallel.spec import CellSpec, RunSpec
from ..parallel.store import STORE_SCHEMA, run_identity
from . import fig2, fig3, fig4, fig5
from .config import ExperimentConfig
from .runner import FigureResult

#: Version tag of the sweep-plan document.  Bump on any change to the
#: plan layout; runners reject plans they do not understand (the
#: policy mirrors ``repro.bench/1``, see ``docs/OBSERVABILITY.md``).
SWEEP_SCHEMA = "repro.sweep/1"

#: Figure modules the service can plan, keyed by CLI name.
FIGURE_MODULES = {
    "2": fig2,
    "3": fig3,
    "4": fig4,
    "5": fig5,
}

#: Table precision per figure (mirrors the ``repro figN`` commands).
FIGURE_PRECISION = {"2": 1, "3": 1, "4": 2, "5": 1}

#: The reduced bandwidth axis ``--quick`` sweeps use (mirrors
#: ``reproduce --quick --figure N``).
QUICK_BANDWIDTHS_KB: tuple[int, ...] = (128, 512)


def sweep_config(quick: bool, fidelity: str) -> ExperimentConfig:
    """The experiment config a plan's parameters describe.

    Exactly the config ``reproduce [--quick] [--fidelity F]`` builds,
    so a sharded sweep and a direct run compute identical cells.
    """
    if quick:
        return ExperimentConfig(
            n_leechers=9, seeds=(7,), fidelity=fidelity
        )
    return ExperimentConfig(fidelity=fidelity)


def figure_cells(
    figure: str, config: ExperimentConfig, quick: bool
) -> list[CellSpec]:
    """Rebuild the figure's sweep cells from plan parameters."""
    module = FIGURE_MODULES.get(figure)
    if module is None:
        raise StoreError(
            f"unknown figure {figure!r} "
            f"(expected one of {', '.join(sorted(FIGURE_MODULES))})"
        )
    if quick:
        return module.cells(
            config, bandwidths_kb=QUICK_BANDWIDTHS_KB
        )
    return module.cells(config)


def expand_runs(cells: Sequence[CellSpec]) -> list[RunSpec]:
    """Expand cells into per-seed runs, exactly as ``run_cells`` does."""
    return [
        RunSpec(
            cell=cell,
            seed=seed,
            cell_index=cell_index,
            seed_index=seed_index,
        )
        for cell_index, cell in enumerate(cells)
        for seed_index, seed in enumerate(cell.config.seeds)
    ]


def shard_of(digest: str, shards: int) -> int:
    """Deterministic shard assignment of one run digest."""
    return int(digest, 16) % shards


def build_plan(
    figure: str,
    quick: bool = False,
    fidelity: str = "exact",
    shards: int = 1,
) -> dict:
    """Expand, digest, and partition one figure sweep into a plan."""
    if shards < 1:
        raise StoreError(f"shards must be >= 1: {shards}")
    config = sweep_config(quick, fidelity)
    cells = figure_cells(figure, config, quick)
    specs = expand_runs(cells)
    runs = []
    for spec in specs:
        digest = run_identity(spec)
        runs.append(
            {
                "digest": digest,
                "shard": shard_of(digest, shards),
                "cell_index": spec.cell_index,
                "seed_index": spec.seed_index,
                "seed": spec.seed,
                "label": spec.cell.describe(),
            }
        )
    return {
        "schema": SWEEP_SCHEMA,
        "store_schema": STORE_SCHEMA,
        "figure": figure,
        "quick": quick,
        "fidelity": fidelity,
        "shards": shards,
        "total_runs": len(runs),
        "runs": runs,
    }


def validate_plan(payload: object) -> dict:
    """Check a plan document's shape; returns it on success.

    Raises:
        StoreError: on schema drift or a structurally invalid plan.
    """
    if not isinstance(payload, dict):
        raise StoreError("sweep plan must be a JSON object")
    schema = payload.get("schema")
    if schema != SWEEP_SCHEMA:
        raise StoreError(
            f"sweep plan schema {schema!r} is not {SWEEP_SCHEMA!r}"
        )
    figure = payload.get("figure")
    if figure not in FIGURE_MODULES:
        raise StoreError(f"sweep plan names unknown figure {figure!r}")
    shards = payload.get("shards")
    if not isinstance(shards, int) or shards < 1:
        raise StoreError(f"sweep plan shards must be >= 1: {shards!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        raise StoreError("sweep plan has no runs")
    for index, run in enumerate(runs):
        if not isinstance(run, dict):
            raise StoreError(f"sweep plan run #{index} is not an object")
        digest = run.get("digest")
        if not isinstance(digest, str) or not digest:
            raise StoreError(
                f"sweep plan run #{index} has no digest"
            )
        shard = run.get("shard")
        if not isinstance(shard, int) or not 0 <= shard < shards:
            raise StoreError(
                f"sweep plan run #{index} shard {shard!r} outside "
                f"[0, {shards})"
            )
    return payload


def load_plan(path: str | Path) -> dict:
    """Read and validate a plan written by ``repro sweep plan``."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise StoreError(f"cannot read sweep plan {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise StoreError(
            f"sweep plan {path} is not valid JSON: {exc}"
        ) from exc
    return validate_plan(payload)


def dump_plan(plan: dict, path: str | Path) -> None:
    """Write a plan document as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(plan, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _rebuild_specs(plan: dict) -> dict[str, RunSpec]:
    """Re-expand the plan's sweep and index the specs by digest.

    Raises:
        StoreError: when the rebuilt sweep does not produce the
            digests the plan expects — the plan was built by a
            different code version (or different defaults) and running
            it here would silently compute a *different* sweep.
    """
    config = sweep_config(plan["quick"], plan["fidelity"])
    cells = figure_cells(plan["figure"], config, plan["quick"])
    specs = {
        run_identity(spec): spec for spec in expand_runs(cells)
    }
    planned = {run["digest"] for run in plan["runs"]}
    missing = planned - set(specs)
    if missing:
        sample = ", ".join(list(sorted(missing))[:3])
        raise StoreError(
            f"sweep plan is stale: {len(missing)} of "
            f"{len(planned)} planned runs do not exist in this "
            f"code version (e.g. {sample}); regenerate the plan with "
            f"'repro sweep plan'"
        )
    if len(specs) != len(planned):
        raise StoreError(
            f"sweep plan is stale: this code version expands the "
            f"sweep to {len(specs)} runs, the plan recorded "
            f"{len(planned)}; regenerate the plan"
        )
    return specs


@dataclass(frozen=True, slots=True)
class ShardReport:
    """What running one shard accomplished.

    Attributes:
        shard: the shard index that ran.
        shards: total shards in the plan.
        runs: runs belonging to this shard.
        computed: runs executed here and committed to the store.
        cached: runs already present in the store (a resumed shard).
    """

    shard: int
    shards: int
    runs: int
    computed: int
    cached: int


def run_shard(
    plan: dict,
    shard: int,
    store: ResultStore,
    jobs: int | None = 1,
    progress: SweepProgress | None = None,
    ops: bool = True,
) -> ShardReport:
    """Execute one shard of a plan into a result store.

    With ``ops`` (the default) the shard writes wall-clock telemetry
    next to the store: a ``repro.ops/1`` span log (one ``shard`` root
    span over per-run ``cell-run`` and ``store-commit`` spans) and an
    atomically-rewritten heartbeat that ``repro sweep status`` reads.
    Telemetry never influences results — the merged figure is
    byte-identical either way.

    Raises:
        StoreError: invalid shard index or a stale plan.
        SweepError: when any of the shard's runs failed.
    """
    shards = plan["shards"]
    if not 0 <= shard < shards:
        raise StoreError(
            f"shard must be in [0, {shards}): {shard}"
        )
    specs_by_digest = _rebuild_specs(plan)
    selected = [
        specs_by_digest[run["digest"]]
        for run in plan["runs"]
        if run["shard"] == shard
    ]
    selected.sort(key=lambda spec: (spec.cell_index, spec.seed_index))
    ops_log = (
        OpsLog(shard_ops_path(store.root, shard)) if ops else NULL_OPS
    )
    heartbeat = (
        ShardHeartbeat(
            heartbeat_path(store.root, shard),
            shard=shard,
            shards=shards,
        )
        if ops
        else NULL_HEARTBEAT
    )
    store.ops = ops_log
    executor = SweepExecutor(
        jobs=jobs,
        progress=progress,
        store=store,
        ops=ops_log,
        heartbeat=heartbeat,
    )
    try:
        with ops_log.span(
            "shard",
            figure=plan["figure"],
            shard=shard,
            shards=shards,
            runs=len(selected),
        ) as span:
            outcomes = executor.map_runs(selected)
            span.attrs["cached"] = sum(
                1 for o in outcomes if o.cached
            )
            span.attrs["failed"] = sum(
                1 for o in outcomes if not o.ok
            )
    finally:
        ops_log.close()
    failures = [o for o in outcomes if not o.ok]
    if failures:
        from ..errors import SweepError

        detail = "; ".join(
            f"{o.label} (seed {o.seed}): {o.error}" for o in failures
        )
        raise SweepError(
            f"{len(failures)} of {len(outcomes)} shard runs "
            f"failed: {detail}"
        )
    cached = sum(1 for o in outcomes if o.cached)
    return ShardReport(
        shard=shard,
        shards=shards,
        runs=len(outcomes),
        computed=len(outcomes) - cached,
        cached=cached,
    )


@dataclass(frozen=True, slots=True)
class MergeReport:
    """What merging a plan produced.

    Attributes:
        result: the final figure, byte-identical to a single-machine
            run of the same sweep.
        precision: table precision for rendering.
        absorbed: entries copied in from shard stores.
        runs: total runs of the sweep.
        cached: runs served from the merged store.
        computed: runs the merge had to compute (missing shards —
            merge doubles as resume).
    """

    result: FigureResult
    precision: int
    absorbed: int
    runs: int
    cached: int
    computed: int


def merge_plan(
    plan: dict,
    store: ResultStore,
    sources: Sequence[str | Path] = (),
    jobs: int | None = 1,
    progress: SweepProgress | None = None,
    ops: bool = True,
) -> MergeReport:
    """Merge shard stores and produce the plan's final figure.

    With ``ops`` (the default) the merge writes its own span log next
    to the target store: one ``merge`` root span over per-source
    ``store-absorb`` spans and the replay's ``cell-run`` spans (all
    cache hits when every shard ran; computed otherwise).
    """
    _rebuild_specs(plan)  # fail fast on a stale plan
    ops_log = OpsLog(merge_ops_path(store.root)) if ops else NULL_OPS
    store.ops = ops_log
    executor = SweepExecutor(
        jobs=jobs, progress=progress, store=store, ops=ops_log
    )
    config = sweep_config(plan["quick"], plan["fidelity"])
    module = FIGURE_MODULES[plan["figure"]]
    try:
        with ops_log.span(
            "merge",
            figure=plan["figure"],
            shards=plan["shards"],
            sources=len(list(sources)),
        ) as span:
            absorbed = 0
            for source in sources:
                absorbed += store.absorb(source)
            span.attrs["absorbed"] = absorbed
            if plan["quick"]:
                result = module.run(
                    config,
                    bandwidths_kb=QUICK_BANDWIDTHS_KB,
                    executor=executor,
                )
            else:
                result = module.run(config, executor=executor)
    finally:
        ops_log.close()
    stats = executor.stats
    return MergeReport(
        result=result,
        precision=FIGURE_PRECISION[plan["figure"]],
        absorbed=absorbed,
        runs=stats.runs,
        cached=stats.runs_cached,
        computed=stats.runs - stats.runs_cached,
    )
