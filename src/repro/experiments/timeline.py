"""Per-peer session timelines.

Renders what each peer experienced during a swarm run — joining,
startup, playing, stalling, finishing — as an ASCII timeline, which is
how most of this reproduction's swarm-dynamics bugs were found.
"""

from __future__ import annotations

from ..errors import ExperimentError
from ..p2p.swarm import SwarmResult


def render_timeline(
    result: SwarmResult,
    width: int = 80,
    end_time: float | None = None,
) -> str:
    """Render a swarm result as one timeline row per peer.

    Legend: ``.`` waiting for startup, ``=`` playing, ``#`` stalled,
    ``$`` finished, `` `` not yet joined / departed.

    Args:
        result: the finished swarm run.
        width: characters per row.
        end_time: timeline horizon; defaults to the last playback end
            (or stall) observed.

    Returns:
        A multi-line string, peers in name order.
    """
    if width < 10:
        raise ExperimentError(f"width must be >= 10, got {width}")
    horizon = end_time if end_time is not None else _horizon(result)
    if horizon <= 0:
        raise ExperimentError("nothing to render: horizon is 0")
    scale = horizon / width

    lines = [
        f"timeline  0s .. {horizon:.0f}s   "
        "(. startup, = playing, # stalled, $ finished)"
    ]
    for name in sorted(result.metrics):
        metrics = result.metrics[name]
        row = []
        for column in range(width):
            t = column * scale
            row.append(_symbol_at(metrics, t))
        lines.append(f"{name:>8s} |{''.join(row)}|")
    return "\n".join(lines)


def _horizon(result: SwarmResult) -> float:
    latest = 0.0
    for metrics in result.metrics.values():
        if metrics.playback_end is not None:
            latest = max(latest, metrics.playback_end)
        for stall in metrics.stalls:
            latest = max(latest, stall.end)
    return latest


def _symbol_at(metrics, t: float) -> str:
    if t < metrics.session_start:
        return " "
    if metrics.playback_start is None or t < metrics.playback_start:
        return "."
    if metrics.playback_end is not None and t >= metrics.playback_end:
        return "$"
    for stall in metrics.stalls:
        if stall.start <= t < stall.end:
            return "#"
    return "="
