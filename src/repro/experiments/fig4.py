"""Figure 4 — startup time for different bandwidths.

Series: 2/4/8-second duration splicing (the paper excludes GOP-based
splicing here because its startup depends on the particular video);
x-axis bandwidth 128–1024 kB/s.

Expected shape (paper Section VI-A): larger segments start slower —
"the large segments can result in a very high startup time in a low
bandwidth network" — and every series falls as bandwidth grows.
"""

from __future__ import annotations

from ..obs.context import Observability
from ..parallel import SplicerSpec, SweepExecutor, cell_for
from ..video.bitstream import Bitstream
from .config import FIG4_BANDWIDTHS_KB, PAPER_DURATIONS, ExperimentConfig
from .runner import FigureResult


def _labels() -> dict[float, str]:
    return {
        duration: f"{int(duration)} sec segment"
        for duration in PAPER_DURATIONS
    }


def cells(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = FIG4_BANDWIDTHS_KB,
) -> list:
    """The figure's sweep cells (duration-major, bandwidth-minor)."""
    cfg = config or ExperimentConfig()
    labels = _labels()
    return [
        cell_for(
            SplicerSpec("duration", duration),
            bw,
            cfg,
            video=video,
            label=f"fig4/{labels[duration]} @ {bw} kB/s",
        )
        for duration in PAPER_DURATIONS
        for bw in bandwidths_kb
    ]


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = FIG4_BANDWIDTHS_KB,
    obs: Observability | None = None,
    executor: SweepExecutor | None = None,
    analyze: bool = False,
) -> FigureResult:
    """Reproduce Figure 4 (see module docstring)."""
    cfg = config or ExperimentConfig()
    sweep = executor or SweepExecutor(jobs=1)
    labels = _labels()
    sweep_cells = cells(cfg, video=video, bandwidths_kb=bandwidths_kb)
    results = iter(
        sweep.run_cells(sweep_cells, obs=obs, analyze=analyze)
    )
    series = {
        labels[duration]: [next(results) for _ in bandwidths_kb]
        for duration in PAPER_DURATIONS
    }
    return FigureResult(
        figure="fig4",
        title="Startup time for different bandwidths",
        metric="startup_time",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run(), precision=2))


if __name__ == "__main__":
    main()
