"""Figure 4 — startup time for different bandwidths.

Series: 2/4/8-second duration splicing (the paper excludes GOP-based
splicing here because its startup depends on the particular video);
x-axis bandwidth 128–1024 kB/s.

Expected shape (paper Section VI-A): larger segments start slower —
"the large segments can result in a very high startup time in a low
bandwidth network" — and every series falls as bandwidth grows.
"""

from __future__ import annotations

from ..core.splicer import DurationSplicer
from ..obs.context import Observability
from ..video.bitstream import Bitstream
from .config import FIG4_BANDWIDTHS_KB, PAPER_DURATIONS, ExperimentConfig
from .config import make_paper_video
from .runner import FigureResult, run_cell


def run(
    config: ExperimentConfig | None = None,
    video: Bitstream | None = None,
    bandwidths_kb: tuple[int, ...] = FIG4_BANDWIDTHS_KB,
    obs: Observability | None = None,
) -> FigureResult:
    """Reproduce Figure 4 (see module docstring)."""
    cfg = config or ExperimentConfig()
    stream = video if video is not None else make_paper_video(cfg)
    series = {}
    for duration in PAPER_DURATIONS:
        splice = DurationSplicer(duration).splice(stream)
        series[f"{int(duration)} sec segment"] = [
            run_cell(splice, bw, cfg, obs=obs) for bw in bandwidths_kb
        ]
    return FigureResult(
        figure="fig4",
        title="Startup time for different bandwidths",
        metric="startup_time",
        series=series,
    )


def main() -> None:
    """Print the reproduced figure."""
    from .report import format_figure

    print(format_figure(run(), precision=2))


if __name__ == "__main__":
    main()
