"""Streaming quality metrics — the paper's three observables."""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlaybackError


@dataclass(frozen=True, slots=True)
class StallEvent:
    """One playback interruption.

    Attributes:
        start: simulated time the player ran out of video.
        end: simulated time playback resumed.
        next_segment: the segment index whose absence caused the stall.
    """

    start: float
    end: float
    next_segment: int

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise PlaybackError(
                f"stall end {self.end} precedes start {self.start}"
            )

    @property
    def duration(self) -> float:
        """Stall length in seconds."""
        return self.end - self.start


@dataclass(slots=True)
class StreamingMetrics:
    """Everything measured during one peer's streaming session.

    Attributes:
        session_start: when the peer joined (simulated seconds).
        playback_start: when the first frame played (None if never).
        playback_end: when the last frame finished (None if never).
        stalls: completed stall events in order.
        bytes_downloaded: total payload bytes received.
        bytes_uploaded: total payload bytes served to other peers.
        segments_downloaded: count of segments received.
        downloads_cancelled: transfers aborted (source churned, etc.).
        requests_retried: requests re-issued to a different source
            after a timeout.
    """

    session_start: float = 0.0
    playback_start: float | None = None
    playback_end: float | None = None
    stalls: list[StallEvent] = field(default_factory=list)
    bytes_downloaded: float = 0.0
    bytes_uploaded: float = 0.0
    segments_downloaded: int = 0
    downloads_cancelled: int = 0
    requests_retried: int = 0

    @property
    def startup_time(self) -> float | None:
        """Join-to-first-frame delay, seconds (the paper's Fig. 4)."""
        if self.playback_start is None:
            return None
        return self.playback_start - self.session_start

    @property
    def stall_count(self) -> int:
        """Number of stalls after playback started (paper's Fig. 2/5)."""
        return len(self.stalls)

    @property
    def total_stall_duration(self) -> float:
        """Summed stall seconds (the paper's Fig. 3)."""
        return sum(stall.duration for stall in self.stalls)

    @property
    def finished(self) -> bool:
        """Whether the video played to the end."""
        return self.playback_end is not None
