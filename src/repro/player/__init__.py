"""Playback: buffer, player state machine, and streaming metrics.

The paper measures three things — stall count, total stall duration,
and startup time.  :class:`~repro.player.player.Player` produces all
three from the arrival times of segments, consuming them sequentially
in simulated real time (the paper cites that 95 % of P2P TV users watch
sequentially).
"""

from .buffer import PlaybackBuffer
from .metrics import StallEvent, StreamingMetrics
from .player import Player, PlayerState

__all__ = [
    "PlaybackBuffer",
    "Player",
    "PlayerState",
    "StallEvent",
    "StreamingMetrics",
]
