"""The player state machine.

Consumes buffered segments sequentially in simulated real time and
records the paper's observables: startup time, stall count, and total
stall duration.  Playback starts as soon as the first segment arrives
(the paper's application has no additional pre-roll buffer), stalls
when the playhead reaches a gap, and resumes the moment the missing
segment lands.
"""

from __future__ import annotations

import enum
from typing import Callable, Mapping

from ..errors import PlaybackError
from ..net.engine import EventHandle, Simulator
from ..obs.events import (
    PlaybackFinished,
    PlaybackStarted,
    StallEnded,
    StallStarted,
)
from ..obs.tracer import NULL_TRACER, Tracer
from .buffer import PlaybackBuffer
from .metrics import StallEvent, StreamingMetrics


class PlayerState(enum.Enum):
    """Lifecycle states of a streaming player."""

    WAITING = "waiting"  # joined, first segment not yet available
    PLAYING = "playing"
    STALLED = "stalled"
    FINISHED = "finished"


class Player:
    """Sequential playback over a :class:`PlaybackBuffer`.

    Args:
        sim: the simulator supplying the clock.
        segment_durations: per-segment playback durations (manifest).
        on_state_change: optional hook called with (old, new) state on
            every transition — the leecher uses it to re-evaluate its
            download pool when a stall begins or ends.
        metrics: optional pre-existing metrics object to record into;
            lets the session owner date ``session_start`` at join time
            (before the manifest exchange) rather than at player
            construction.
        preroll_segments: contiguous segments required before playback
            begins.  The paper's client starts on the first segment
            (the default, 1); HLS players typically pre-roll 3.
        tracer: where playback lifecycle events (PlaybackStarted,
            StallStarted/Ended, PlaybackFinished) go; disabled default.
        peer: the peer name stamped on every emitted event.
        segment_sizes: optional ``index -> bytes`` lookup (typically the
            leecher's live manifest table) so stall events can carry
            the blocking segment's expected size for attribution;
            sizes missing from the mapping are recorded as -1.0.
    """

    def __init__(
        self,
        sim: Simulator,
        segment_durations: list[float],
        on_state_change: (
            Callable[[PlayerState, PlayerState], None] | None
        ) = None,
        metrics: StreamingMetrics | None = None,
        preroll_segments: int = 1,
        tracer: Tracer = NULL_TRACER,
        peer: str = "",
        segment_sizes: Mapping[int, float] | None = None,
    ) -> None:
        if preroll_segments < 1:
            raise PlaybackError(
                f"preroll_segments must be >= 1, got {preroll_segments}"
            )
        self._sim = sim
        self._buffer = PlaybackBuffer(segment_durations)
        self._preroll = min(preroll_segments, len(segment_durations))
        self._on_state_change = on_state_change
        self._state = PlayerState.WAITING
        self._metrics = (
            metrics
            if metrics is not None
            else StreamingMetrics(session_start=sim.now)
        )
        self._tracer = tracer
        self._peer = peer
        self._segment_sizes = segment_sizes
        self._current: int | None = None  # segment at the playhead
        self._segment_started_at = 0.0
        self._boundary_event: EventHandle | None = None
        self._stall_started_at: float | None = None
        self._waiting_for = 0

    @property
    def state(self) -> PlayerState:
        """Current player state."""
        return self._state

    @property
    def buffer(self) -> PlaybackBuffer:
        """The underlying playback buffer."""
        return self._buffer

    @property
    def metrics(self) -> StreamingMetrics:
        """Metrics collected so far (live object)."""
        return self._metrics

    @property
    def next_needed(self) -> int | None:
        """The next segment index playback needs, or None when done."""
        if self._state is PlayerState.FINISHED:
            return None
        if self._state is PlayerState.PLAYING:
            assert self._current is not None
            return self._buffer.contiguous_through(self._current)
        return self._waiting_for

    def segment_available(self, index: int) -> None:
        """Notify the player that segment ``index`` has arrived."""
        self._buffer.add(index)
        if (
            self._state is PlayerState.WAITING
            and self._buffer.contiguous_through(0) >= self._preroll
        ):
            self._metrics.playback_start = self._sim.now
            if self._tracer.enabled:
                self._tracer.emit(
                    PlaybackStarted(
                        time=self._sim.now,
                        peer=self._peer,
                        startup_time=self._sim.now
                        - self._metrics.session_start,
                    )
                )
            self._start_segment(0)
        elif self._state is PlayerState.STALLED and index == self._waiting_for:
            assert self._stall_started_at is not None
            stall = StallEvent(
                start=self._stall_started_at,
                end=self._sim.now,
                next_segment=index,
            )
            self._metrics.stalls.append(stall)
            self._stall_started_at = None
            if self._tracer.enabled:
                self._tracer.emit(
                    StallEnded(
                        time=self._sim.now,
                        peer=self._peer,
                        segment=index,
                        duration=stall.duration,
                        expected_size=self._expected_size(index),
                    )
                )
            self._start_segment(index)

    def buffered_playtime(self) -> float:
        """Seconds of contiguous video ahead of the playhead — Eq. 1's ``T``.

        Zero while waiting for the first segment, stalled, or finished.
        """
        if self._state is not PlayerState.PLAYING:
            return 0.0
        assert self._current is not None
        offset = self._sim.now - self._segment_started_at
        return self._buffer.buffered_playtime(self._current, offset)

    def position(self) -> float:
        """Current playback position in seconds of video content."""
        played = 0.0
        upto = self._current if self._current is not None else 0
        for index in range(upto):
            played += self._buffer.duration_of(index)
        if self._state is PlayerState.PLAYING:
            played += self._sim.now - self._segment_started_at
        elif self._state is PlayerState.FINISHED and self._current is not None:
            played += self._buffer.duration_of(self._current)
        return played

    # ------------------------------------------------------------------

    def _expected_size(self, index: int) -> float:
        if self._segment_sizes is None:
            return -1.0
        return float(self._segment_sizes.get(index, -1.0))

    def _start_segment(self, index: int) -> None:
        self._current = index
        self._segment_started_at = self._sim.now
        self._boundary_event = self._sim.schedule(
            self._buffer.duration_of(index), self._on_segment_end, index
        )
        self._transition(PlayerState.PLAYING)

    def _on_segment_end(self, index: int) -> None:
        self._boundary_event = None
        nxt = index + 1
        if nxt >= self._buffer.segment_count:
            self._metrics.playback_end = self._sim.now
            if self._tracer.enabled:
                self._tracer.emit(
                    PlaybackFinished(
                        time=self._sim.now,
                        peer=self._peer,
                        stalls=len(self._metrics.stalls),
                        total_stall_duration=(
                            self._metrics.total_stall_duration
                        ),
                    )
                )
            self._transition(PlayerState.FINISHED)
        elif self._buffer.has(nxt):
            self._start_segment(nxt)
        else:
            self._waiting_for = nxt
            self._stall_started_at = self._sim.now
            if self._tracer.enabled:
                self._tracer.emit(
                    StallStarted(
                        time=self._sim.now,
                        peer=self._peer,
                        segment=nxt,
                        expected_size=self._expected_size(nxt),
                    )
                )
            self._transition(PlayerState.STALLED)

    def _transition(self, new_state: PlayerState) -> None:
        if self._state is PlayerState.FINISHED and new_state is not (
            PlayerState.FINISHED
        ):
            raise PlaybackError("player cannot leave FINISHED")
        old, self._state = self._state, new_state
        if old is not new_state and self._on_state_change is not None:
            self._on_state_change(old, new_state)
