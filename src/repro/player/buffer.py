"""Playback buffer: which segments have arrived, and how much playtime
is contiguously available ahead of the playhead."""

from __future__ import annotations

from ..errors import PlaybackError


class PlaybackBuffer:
    """Tracks downloaded segments for a fixed segment layout.

    Args:
        segment_durations: playback duration of every segment, in
            order.  (Known from the manifest before any data arrives.)
    """

    def __init__(self, segment_durations: list[float]) -> None:
        if not segment_durations:
            raise PlaybackError("segment_durations must be non-empty")
        if any(d <= 0 for d in segment_durations):
            raise PlaybackError("segment durations must be positive")
        self._durations = list(segment_durations)
        self._present: set[int] = set()

    def __len__(self) -> int:
        return len(self._present)

    @property
    def segment_count(self) -> int:
        """Total number of segments in the video."""
        return len(self._durations)

    @property
    def complete(self) -> bool:
        """Whether every segment has arrived."""
        return len(self._present) == len(self._durations)

    def duration_of(self, index: int) -> float:
        """Playback duration of segment ``index``."""
        self._check_index(index)
        return self._durations[index]

    def has(self, index: int) -> bool:
        """Whether segment ``index`` has arrived."""
        self._check_index(index)
        return index in self._present

    def add(self, index: int) -> None:
        """Record the arrival of segment ``index``.

        Raises:
            PlaybackError: if the segment was already added (duplicate
                downloads indicate a scheduling bug).
        """
        self._check_index(index)
        if index in self._present:
            raise PlaybackError(f"segment {index} buffered twice")
        self._present.add(index)

    def contiguous_through(self, start: int) -> int:
        """Index one past the last contiguous segment from ``start``.

        ``contiguous_through(3) == 7`` means segments 3..6 are all
        buffered and segment 7 is missing (or past the end).
        """
        self._check_index(start)
        index = start
        while index < len(self._durations) and index in self._present:
            index += 1
        return index

    def buffered_playtime(self, from_index: int, offset: float = 0.0) -> float:
        """Seconds of contiguous video buffered ahead of the playhead.

        This is ``T`` in the paper's Equation 1.

        Args:
            from_index: the segment currently at the playhead (or, when
                it has not arrived yet, the next segment needed).
            offset: seconds of ``from_index`` already played.

        Returns:
            Total remaining playtime of the contiguous buffered run
            starting at ``from_index``, minus ``offset``.  Zero when
            ``from_index`` itself is missing.
        """
        self._check_index(from_index)
        if offset < 0:
            raise PlaybackError(f"offset must be >= 0, got {offset}")
        end = self.contiguous_through(from_index)
        total = sum(self._durations[from_index:end])
        return max(0.0, total - offset)

    def missing(self) -> list[int]:
        """Indices of segments not yet buffered, ascending."""
        return [
            index
            for index in range(len(self._durations))
            if index not in self._present
        ]

    def _check_index(self, index: int) -> None:
        if not 0 <= index < len(self._durations):
            raise PlaybackError(
                f"segment index {index} out of range "
                f"[0, {len(self._durations)})"
            )
