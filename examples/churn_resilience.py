#!/usr/bin/env python3
"""Streaming under churn: peers leave mid-session.

"In P2P video streaming, peers can leave the swarm anytime.  To
maximize the availability of a segment, peers often download multiple
segments simultaneously."  This example measures how the adaptive
download pool copes as an increasing fraction of the swarm departs,
and shows the retry machinery (timeout re-requests) at work.

Usage::

    python examples/churn_resilience.py
"""

from __future__ import annotations

from repro.core import DurationSplicer
from repro.p2p import Swarm, SwarmConfig
from repro.p2p.churn import ChurnConfig
from repro.units import kB_per_s
from repro.video import encode_paper_video


def main() -> None:
    video = encode_paper_video(seed=1)
    splice = DurationSplicer(4.0).splice(video)
    bandwidth_kb = 256

    print(f"4-second splicing at {bandwidth_kb} kB/s, 19 peers:")
    for fraction in (0.0, 0.25, 0.5):
        churn = (
            ChurnConfig(mean_lifetime=45.0, fraction=fraction)
            if fraction > 0
            else None
        )
        config = SwarmConfig(
            bandwidth=kB_per_s(bandwidth_kb),
            seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
            n_leechers=19,
            seed=7,
            churn=churn,
        )
        result = Swarm(splice, config).run()
        survivors = [
            m
            for name, m in result.metrics.items()
            if name not in result.departed
        ]
        finished = sum(1 for m in survivors if m.finished)
        retried = sum(m.requests_retried for m in result.metrics.values())
        cancelled = sum(
            m.downloads_cancelled for m in result.metrics.values()
        )
        print(
            f"  churn {int(fraction * 100):3d}%: "
            f"{len(result.departed):2d} departed, "
            f"{finished}/{len(survivors)} survivors finished, "
            f"{result.mean_stall_count():5.1f} stalls/peer, "
            f"{retried} re-requests, {cancelled} downloads cancelled"
        )


if __name__ == "__main__":
    main()
