#!/usr/bin/env python3
"""Quickstart: encode a video, splice it two ways, stream it, compare.

Runs the paper's core comparison at one bandwidth in a few seconds:
GOP-based vs 4-second duration-based splicing on a 20-node swarm.

Usage::

    python examples/quickstart.py [bandwidth_kB]
"""

from __future__ import annotations

import sys

from repro import (
    DurationSplicer,
    GopSplicer,
    Swarm,
    SwarmConfig,
    encode_paper_video,
    kB_per_s,
)


def main() -> None:
    bandwidth_kb = float(sys.argv[1]) if len(sys.argv) > 1 else 256.0

    print("Encoding the paper's video (2 minutes, nominal 1 Mbps)...")
    video = encode_paper_video(seed=1)
    stats = video.stats()
    print(
        f"  {stats.frame_count} frames, {stats.gop_count} GOPs, "
        f"{stats.size / 1e6:.1f} MB at {stats.bitrate / 1e6:.2f} Mbps"
    )
    print(
        f"  GOP durations {stats.gop_duration_min:.2f}s - "
        f"{stats.gop_duration_max:.2f}s (content-driven variance)"
    )
    print()

    for splicer in (GopSplicer(), DurationSplicer(4.0)):
        splice = splicer.splice(video)
        print(
            f"{splice.technique}: {len(splice)} segments, "
            f"overhead {100 * splice.overhead_ratio:.1f}%"
        )
        config = SwarmConfig(
            bandwidth=kB_per_s(bandwidth_kb),
            seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
            n_leechers=19,
            seed=7,
        )
        result = Swarm(splice, config).run()
        print(
            f"  at {bandwidth_kb:.0f} kB/s: "
            f"{result.mean_stall_count():.1f} stalls/peer, "
            f"{result.mean_stall_duration():.1f}s stalled, "
            f"startup {result.mean_startup_time():.2f}s"
        )
        print(
            f"  seeder served {result.seeder_bytes_uploaded / 1e6:.1f} MB, "
            f"peers served {result.peer_bytes_uploaded / 1e6:.1f} MB"
        )
        print()


if __name__ == "__main__":
    main()
