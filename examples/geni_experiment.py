#!/usr/bin/env python3
"""The paper's GENI experiment, end to end.

Builds the 20-node star slice as a request RSpec (the paper's Fig. 1),
"deploys" it onto the simulated InstaGENI rack, then runs the splicing
comparison across the paper's bandwidths, printing Fig. 2-style rows.

Usage::

    python examples/geni_experiment.py [--quick]
"""

from __future__ import annotations

import sys

from repro.core import DurationSplicer, GopSplicer
from repro.p2p import Swarm
from repro.testbed import star_rspec, swarm_config_from_rspec
from repro.video import encode_paper_video


def main() -> None:
    quick = "--quick" in sys.argv
    bandwidths_kb = (128, 512) if quick else (128, 256, 512, 768)

    print("=== Request RSpec (paper Fig. 1 shows one such link) ===")
    document = star_rspec(n_peers=19, capacity_kbps=1024)
    xml = document.to_xml()
    link_snippet = xml[xml.index("<link") : xml.index("</link>") + 7]
    print(link_snippet)
    print()

    manual = {
        url
        for node in document.nodes
        for install in node.installs
        if install.manual
        for url in [install.url]
    }
    print(
        f"Slice: {len(document.nodes)} nodes, {len(document.links)} links; "
        f"{len(manual)} package(s) need manual install (no X on GENI "
        "nodes - the paper hand-installed Unity+VNC)."
    )
    print()

    video = encode_paper_video(seed=1)
    print("=== Stalls per peer (3-seed averages use the bench harness; "
          "this demo runs seed 7) ===")
    for splicer in (
        GopSplicer(),
        DurationSplicer(2.0),
        DurationSplicer(4.0),
        DurationSplicer(8.0),
    ):
        splice = splicer.splice(video)
        row = [f"{splice.technique:12s}"]
        for bandwidth_kb in bandwidths_kb:
            slice_doc = star_rspec(
                n_peers=19, capacity_kbps=bandwidth_kb * 8
            )
            config = swarm_config_from_rspec(
                slice_doc,
                seed=7,
                seeder_bandwidth=bandwidth_kb * 8000,
            )
            result = Swarm(splice, config).run()
            row.append(
                f"{bandwidth_kb}kB/s: {result.mean_stall_count():5.1f}"
            )
        print("  ".join(row))


if __name__ == "__main__":
    main()
