#!/usr/bin/env python3
"""Live bandwidth estimation feeding Eq. 1.

The paper assumes ``B`` is known ("we simulated the bandwidth on
GENI") and cites Libswift-style estimation for the real world.  This
example runs the same session twice — once with the oracle hint, once
with a live windowed-throughput estimator — and compares both the
estimates and the resulting streaming quality.

Usage::

    python examples/bandwidth_estimation.py
"""

from __future__ import annotations

from repro.bwest import MathisEstimator, WindowedThroughputEstimator
from repro.core import DurationSplicer
from repro.p2p import Swarm, SwarmConfig
from repro.units import as_kB_per_s, kB_per_s
from repro.video import encode_paper_video


def main() -> None:
    video = encode_paper_video(seed=1)
    splice = DurationSplicer(4.0).splice(video)
    bandwidth_kb = 256

    mathis = MathisEstimator(rtt=0.05, loss_rate=0.05)
    print(
        f"Model-based Mathis bound at 50 ms RTT / 5% loss: "
        f"{as_kB_per_s(mathis.ceiling):.0f} kB/s per connection"
    )
    print()

    for label, factory in (
        ("oracle hint", None),
        ("live estimator", WindowedThroughputEstimator),
    ):
        config = SwarmConfig(
            bandwidth=kB_per_s(bandwidth_kb),
            seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
            n_leechers=19,
            seed=7,
            estimator_factory=factory,
        )
        swarm = Swarm(splice, config)
        samples: list[float] = []

        def sample() -> None:
            for leecher in swarm.leechers:
                estimate = leecher.bandwidth_estimate()
                samples.append(estimate)

        swarm.sim.schedule(60.0, sample)
        result = swarm.run()
        mean_estimate = sum(samples) / max(1, len(samples))
        print(
            f"{label:14s} B~{as_kB_per_s(mean_estimate):6.0f} kB/s "
            f"(true {bandwidth_kb}) -> "
            f"stalls={result.mean_stall_count():.1f} "
            f"startup={result.mean_startup_time():.2f}s"
        )


if __name__ == "__main__":
    main()
