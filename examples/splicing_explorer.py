#!/usr/bin/env python3
"""Explore a video's structure and what each splicer makes of it.

Shows the bitrate profile the scene model produces, the offline
sustainable-bandwidth analysis, the segment statistics of every
splicing technique, and a generated HLS playlist — the artifact a real
CDN would serve for the duration-spliced variants.

Usage::

    python examples/splicing_explorer.py
"""

from __future__ import annotations

from repro.core import DurationSplicer, GopSplicer
from repro.core.playlist import parse_m3u8, write_m3u8
from repro.units import as_kB_per_s
from repro.video import (
    bitrate_profile,
    encode_paper_video,
    sustainable_bandwidth,
)


def spark(rates, levels=" .:-=+*#%@") -> str:
    top = max(rates)
    return "".join(
        levels[min(len(levels) - 1, int(r / top * (len(levels) - 1)))]
        for r in rates
    )


def main() -> None:
    video = encode_paper_video(seed=1)
    stats = video.stats()
    print(
        f"Video: {stats.duration:.0f}s, {stats.size / 1e6:.1f} MB, "
        f"{stats.bitrate / 1e6:.2f} Mbps, {stats.gop_count} GOPs "
        f"({stats.gop_duration_min:.2f}s..{stats.gop_duration_max:.1f}s)"
    )

    profile = bitrate_profile(video, window=2.0)
    print(f"\nBitrate over time (2 s windows, peak/mean = "
          f"{profile.peak_to_mean:.2f}):")
    print(f"  {spark(profile.rates)}")
    print(
        f"  peak {profile.peak / 1e6:.2f} Mbps, "
        f"trough {profile.trough / 1e6:.2f} Mbps"
    )

    for buffer in (0.0, 4.0, 8.0):
        need = sustainable_bandwidth(video, startup_buffer=buffer)
        print(
            f"  constant bandwidth to avoid stalls with {buffer:.0f}s "
            f"pre-roll: {as_kB_per_s(need):.0f} kB/s"
        )

    print("\nSplicing comparison:")
    print(
        f"  {'technique':12s} {'segments':>8s} {'mean kB':>8s} "
        f"{'max kB':>7s} {'overhead':>9s}"
    )
    for splicer in (
        GopSplicer(),
        DurationSplicer(2.0),
        DurationSplicer(4.0),
        DurationSplicer(8.0),
    ):
        splice = splicer.splice(video)
        sizes = splice.segment_sizes()
        print(
            f"  {splice.technique:12s} {len(splice):8d} "
            f"{splice.mean_segment_size() / 1000:8.0f} "
            f"{max(sizes) / 1000:7.0f} "
            f"{100 * splice.overhead_ratio:8.1f}%"
        )

    splice = DurationSplicer(4.0).splice(video)
    playlist_text = write_m3u8(splice)
    playlist = parse_m3u8(playlist_text)
    print(
        f"\nHLS playlist for duration-4s: {len(playlist.entries)} "
        f"entries, target duration {playlist.target_duration}s, "
        f"total {playlist.total_duration:.0f}s"
    )
    print("  " + "\n  ".join(playlist_text.splitlines()[:7]) + "\n  ...")


if __name__ == "__main__":
    main()
