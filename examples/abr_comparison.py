#!/usr/bin/env python3
"""Bitrate adaptation vs duration adaptation — the paper's premise.

"As they keep the duration of the segment constant and vary the
bit-rates, it will degrade the video quality ...  Instead of varying
the bit-rate, we can vary the segment duration."

Runs a buffer-based ABR client, the duration-adaptive client, and a
non-adaptive top-quality client against the same CDN at several
bandwidths, and prints stalls, startup, and delivered quality.

Usage::

    python examples/abr_comparison.py
"""

from __future__ import annotations

from repro.experiments.abr_study import format_rows, run


def main() -> None:
    rows = run(bandwidths_kb=(96, 128, 192, 256))
    print(format_rows(rows))
    print()
    print(
        "Reading: the ABR client never stalls but ships fewer bits "
        "(quality column);\nthe duration-adaptive client keeps full "
        "quality and beats the non-adaptive\nclient on stalls where "
        "bandwidth is scarce, paying in startup time."
    )


if __name__ == "__main__":
    main()
