#!/usr/bin/env python3
"""Trace a stall: starve a swarm on purpose, then diagnose it.

Runs one small swarm at deliberately scarce bandwidth so stalls are
guaranteed, records a full event trace, and then walks the events the
way docs/OBSERVABILITY.md describes: find a stall, find the request
that should have prevented it, and watch Eq. 1's pool react.  The
same stall is then handed to ``repro.obs.analyze``, which reproduces
the manual verdict automatically for every stall in the run.

Usage::

    python examples/trace_a_stall.py [trace.jsonl]

Pass a path to also keep the JSONL trace for
``python -m repro trace <path>`` and
``python -m repro analyze <path> --gantt``.
"""

from __future__ import annotations

import sys

from repro import (
    DurationSplicer,
    Observability,
    Swarm,
    SwarmConfig,
    encode_paper_video,
    kB_per_s,
)
from repro.obs import (
    analyze_observability,
    attribute_stalls,
    build_timelines,
    dump_jsonl,
    render_cause_table,
    render_gantt,
    render_run_report,
)


def main() -> None:
    print("Encoding and splicing the paper's video...")
    video = encode_paper_video(seed=1)
    splice = DurationSplicer(4.0).splice(video)

    # 96 kB/s is below the video's ~1 Mbps bitrate: every peer stalls.
    config = SwarmConfig(
        bandwidth=kB_per_s(96),
        seeder_bandwidth=kB_per_s(384),
        n_leechers=4,
        seed=7,
        max_time=900.0,
    )
    obs = Observability.tracing(profile=True)
    print("Streaming at a starvation-level 96 kB/s (stalls expected)...")
    result = Swarm(splice, config, obs=obs).run()
    events = obs.events()
    print(f"  {len(events)} events recorded")
    print()

    # Pick the first completed stall and reconstruct its story.
    stall_start = next(e for e in events if e.name == "StallStarted")
    peer, segment = stall_start.peer, stall_start.segment
    stall_end = next(
        e
        for e in events
        if e.name == "StallEnded"
        and e.peer == peer
        and e.time >= stall_start.time
    )
    print(
        f"{peer} stalled at t={stall_start.time:.2f}s waiting for "
        f"segment {segment}; resumed at t={stall_end.time:.2f}s "
        f"({stall_end.duration:.2f}s stalled)"
    )

    request = next(
        (
            e
            for e in reversed(events)
            if e.name == "SegmentRequested"
            and e.peer == peer
            and e.segment == segment
            and e.time <= stall_start.time
        ),
        None,
    )
    if request is not None:
        print(
            f"  the blocking segment was requested from "
            f"{request.source} at t={request.time:.2f}s "
            f"(urgent={request.urgent})"
        )

    arrival = next(
        (
            e
            for e in events
            if e.name == "PieceReceived"
            and e.peer == peer
            and e.segment == segment
        ),
        None,
    )
    if arrival is not None:
        print(
            f"  it arrived after {arrival.wait:.2f}s in flight — "
            f"longer than the playout buffer could cover"
        )

    resizes = [
        e
        for e in events
        if e.name == "PoolResized"
        and e.peer == peer
        and e.time <= stall_end.time
    ]
    if resizes:
        trail = ", ".join(
            f"k={e.size} @t={e.time:.0f}s" for e in resizes[-4:]
        )
        print(f"  Eq. 1 pool sizes leading up to it: {trail}")
    print()

    # Now let the analyzer do the same forensics for *every* stall.
    print("The analyzer's verdicts (repro.obs.analyze):")
    analysis = analyze_observability(obs)
    verdict = next(
        a
        for a in analysis.attributions
        if a.peer == peer and a.segment == segment
    )
    print(
        f"  our stall above is attributed to '{verdict.cause}': "
        + "; ".join(verdict.evidence)
    )
    print()
    print(render_cause_table(analysis.causes))
    print()

    timelines = build_timelines(events)
    print(render_gantt(timelines, attribute_stalls(timelines)))
    print()

    print(render_run_report(obs))

    mean = sum(
        m.stall_count for m in result.metrics.values()
    ) / len(result.metrics)
    print(f"(mean stalls per peer: {mean:.1f})")

    if len(sys.argv) > 1:
        dump_jsonl(events, sys.argv[1])
        print(f"trace written to {sys.argv[1]}")
        print(f"  inspect with: python -m repro trace {sys.argv[1]}")
        print(
            f"  diagnose with: python -m repro analyze "
            f"{sys.argv[1]} --gantt"
        )


if __name__ == "__main__":
    main()
