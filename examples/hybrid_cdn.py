#!/usr/bin/env python3
"""Hybrid CDN + P2P streaming with Section-IV segment sizing.

The paper's Section IV: when a CDN backstops the swarm and peers fetch
one segment at a time from it, the safe segment size is bounded by
``B * T``.  This example streams the same video through the hybrid
architecture at several bandwidths, letting the sizing rule pick the
segment duration each time.

Usage::

    python examples/hybrid_cdn.py
"""

from __future__ import annotations

from repro.cdn import HybridConfig, HybridSession, cdn_segment_duration
from repro.p2p import SwarmConfig
from repro.units import kB_per_s
from repro.video import encode_paper_video


def main() -> None:
    video = encode_paper_video(seed=1)
    print(
        f"Video: {video.duration:.0f}s at {video.bitrate / 1e6:.2f} Mbps"
    )
    print()
    print("Section-IV segment sizing (target buffer T = 8 s):")
    for bandwidth_kb in (128, 256, 512, 1024):
        duration = cdn_segment_duration(
            video.bitrate, kB_per_s(bandwidth_kb), target_buffer=8.0
        )
        print(f"  {bandwidth_kb:5d} kB/s -> {duration:.0f} s segments")
    print()

    for bandwidth_kb in (128, 512):
        session = HybridSession(
            video,
            HybridConfig(
                swarm=SwarmConfig(
                    bandwidth=kB_per_s(bandwidth_kb),
                    seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
                    n_leechers=9,
                    seed=7,
                ),
                auto_segment_duration=True,
                target_buffer=8.0,
            ),
        )
        print(
            f"Hybrid session at {bandwidth_kb} kB/s "
            f"(CDN serves one segment at a time per peer, "
            f"{session.segment_duration:.1f}s segments):"
        )
        result = session.run()
        print(
            f"  {result.mean_stall_count():.1f} stalls/peer, "
            f"startup {result.mean_startup_time():.2f}s, "
            f"CDN served {result.seeder_bytes_uploaded / 1e6:.1f} MB, "
            f"peers {result.peer_bytes_uploaded / 1e6:.1f} MB"
        )
        print()


if __name__ == "__main__":
    main()
