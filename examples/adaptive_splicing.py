#!/usr/bin/env python3
"""Duration-adaptive splicing — the paper's future-work item, built.

"We did not propose an algorithm to determine the optimal segment
size.  An adaptive splicing technique will be able to increase the
performance of P2P video streaming."  The
:class:`~repro.core.segment_size.AdaptiveDurationPlanner` is that
algorithm: it scores candidate durations with the analytic TCP model
and picks the shortest sustainable one.

Usage::

    python examples/adaptive_splicing.py
"""

from __future__ import annotations

from repro.core import AdaptiveDurationPlanner, DurationSplicer
from repro.p2p import Swarm, SwarmConfig
from repro.units import kB_per_s
from repro.video import encode_paper_video


def main() -> None:
    video = encode_paper_video(seed=1)
    planner = AdaptiveDurationPlanner(bitrate=video.bitrate)

    print("Planner decisions (per-bandwidth duration choice):")
    for bandwidth_kb in (96, 128, 256, 512, 1024):
        choice = planner.pick(kB_per_s(bandwidth_kb))
        marker = "sustainable" if choice.sustainable else "best effort"
        print(
            f"  {bandwidth_kb:5d} kB/s -> {choice.duration:.0f}s segments "
            f"({marker}, predicted startup {choice.startup_time:.1f}s)"
        )
    print()

    print("Adaptive duration vs fixed 4 s (stalls per peer, seed 7):")
    for bandwidth_kb in (128, 512):
        adaptive_duration = planner.pick(kB_per_s(bandwidth_kb)).duration
        for label, duration in (
            (f"adaptive ({adaptive_duration:.0f}s)", adaptive_duration),
            ("fixed 4s", 4.0),
        ):
            splice = DurationSplicer(duration).splice(video)
            config = SwarmConfig(
                bandwidth=kB_per_s(bandwidth_kb),
                seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
                n_leechers=19,
                seed=7,
            )
            result = Swarm(splice, config).run()
            print(
                f"  {bandwidth_kb:4d} kB/s {label:15s} "
                f"stalls={result.mean_stall_count():5.1f} "
                f"startup={result.mean_startup_time():5.2f}s"
            )
        print()


if __name__ == "__main__":
    main()
