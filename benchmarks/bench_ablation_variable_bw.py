"""Ablation A4 — variable bandwidth (the paper's future work).

"An experiment should be conducted to measure the effect of splicing
on variable bandwidth environment."  Every peer's access bandwidth
follows a square wave; the splicing comparison is re-run on top.
"""

from __future__ import annotations

from repro.experiments.ablations import run_variable_bandwidth
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "square_wave@256",
        run_variable_bandwidth,
        kwargs={
            "config": config,
            "video": video,
            "base_kb": 256,
            "amplitude": 0.5,
            "period": 20.0,
            "executor": executor,
        },
        params={
            "quick": quick,
            "base_kb": 256,
            "amplitude": 0.5,
            "period": 20.0,
        },
        digest_of=("variable_bw", config, 256, 0.5, 20.0),
    )
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result), name="ablation_variable_bandwidth"
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    stalls = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # The paper's ordering survives oscillation: GOP-based splicing
    # still stalls more than 4-second duration splicing.
    assert stalls["gop"] > stalls["duration-4s"]


def test_ablation_variable_bandwidth(harness):
    run_suite(harness)
