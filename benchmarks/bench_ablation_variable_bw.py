"""Ablation A4 — variable bandwidth (the paper's future work).

"An experiment should be conducted to measure the effect of splicing
on variable bandwidth environment."  Every peer's access bandwidth
follows a square wave; the splicing comparison is re-run on top.
"""

from __future__ import annotations

from repro.experiments.ablations import run_variable_bandwidth
from repro.experiments.report import format_figure


def test_ablation_variable_bandwidth(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_variable_bandwidth,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "base_kb": 256,
            "amplitude": 0.5,
            "period": 20.0,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    stalls = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # The paper's ordering survives oscillation: GOP-based splicing
    # still stalls more than 4-second duration splicing.
    assert stalls["gop"] > stalls["duration-4s"]
