"""Ablation A10 — bitrate adaptation vs duration adaptation.

The paper's premise, quantified: ABR avoids stalls by degrading
quality; duration-adaptive splicing keeps full quality and still beats
the non-adaptive client on stalls where bandwidth is scarce, paying in
startup time instead.
"""

from __future__ import annotations

import statistics

from repro.experiments.abr_study import format_rows, run as run_abr

_BANDWIDTHS_KB = (96, 128, 192, 256)


def run_suite(harness, quick=False):
    rows = harness.case(
        "abr_vs_duration",
        run_abr,
        kwargs={"bandwidths_kb": _BANDWIDTHS_KB},
        params={"bandwidths_kb": list(_BANDWIDTHS_KB)},
        digest_of=("abr_study", _BANDWIDTHS_KB),
    )
    by_strategy: dict[str, list] = {}
    for row in rows:
        by_strategy.setdefault(row.strategy, []).append(row)
    harness.annotate(
        **{
            f"{strategy}.mean_stalls": statistics.fmean(
                row.stalls for row in group
            )
            for strategy, group in by_strategy.items()
        }
    )
    harness.emit(format_rows(rows), name="ablation_abr_vs_duration")
    _check(rows)
    return rows


def _check(rows):
    def cell(strategy_prefix, bw):
        return next(
            row
            for row in rows
            if row.strategy.startswith(strategy_prefix)
            and row.bandwidth_kb == bw
        )

    top_bitrate = max(row.mean_bitrate for row in rows)
    for bw in (96, 128):
        abr = cell("abr", bw)
        adaptive = cell("duration-adaptive", bw)
        fixed = cell("fixed-top", bw)
        # ABR trades quality for smoothness...
        assert abr.stalls == 0
        assert abr.mean_bitrate < top_bitrate * 0.9
        # ...duration adaptation keeps full quality ("without
        # degrading the video quality")...
        assert adaptive.mean_bitrate == top_bitrate
        # ...and stalls less than the non-adaptive client.
        assert adaptive.stalls <= fixed.stalls
    # ABR's instability: it switches renditions, the others never do.
    assert cell("abr", 96).switches > 0
    assert cell("duration-adaptive", 96).switches == 0


def test_ablation_abr_vs_duration(harness):
    run_suite(harness)
