"""Ablation A10 — bitrate adaptation vs duration adaptation.

The paper's premise, quantified: ABR avoids stalls by degrading
quality; duration-adaptive splicing keeps full quality and still beats
the non-adaptive client on stalls where bandwidth is scarce, paying in
startup time instead.
"""

from __future__ import annotations

from repro.experiments.abr_study import format_rows, run as run_abr


def test_ablation_abr_vs_duration(benchmark, emit):
    rows = benchmark.pedantic(
        run_abr,
        kwargs={"bandwidths_kb": (96, 128, 192, 256)},
        rounds=1,
        iterations=1,
    )
    emit(format_rows(rows))

    def cell(strategy_prefix, bw):
        return next(
            row
            for row in rows
            if row.strategy.startswith(strategy_prefix)
            and row.bandwidth_kb == bw
        )

    top_bitrate = max(row.mean_bitrate for row in rows)
    for bw in (96, 128):
        abr = cell("abr", bw)
        adaptive = cell("duration-adaptive", bw)
        fixed = cell("fixed-top", bw)
        # ABR trades quality for smoothness...
        assert abr.stalls == 0
        assert abr.mean_bitrate < top_bitrate * 0.9
        # ...duration adaptation keeps full quality ("without
        # degrading the video quality")...
        assert adaptive.mean_bitrate == top_bitrate
        # ...and stalls less than the non-adaptive client.
        assert adaptive.stalls <= fixed.stalls
    # ABR's instability: it switches renditions, the others never do.
    assert cell("abr", 96).switches > 0
    assert cell("duration-adaptive", 96).switches == 0
