"""Figure 2 — total number of stalls for different bandwidths.

Regenerates the paper's stall-count series (GOP vs 2/4/8-second
duration splicing, 128-768 kB/s, 19 peers, 3 seeded runs averaged) and
asserts the paper's qualitative orderings.
"""

from __future__ import annotations

from repro.experiments import fig2
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def test_fig2_stall_counts(benchmark, experiment_config, paper_video, emit):
    obs = Observability.metrics_only()
    result = benchmark.pedantic(
        fig2.run,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "obs": obs,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result) + "\n\n" + render_run_report(obs))

    gop = _by_bw(result.series["gop"])
    two = _by_bw(result.series["duration-2s"])
    four = _by_bw(result.series["duration-4s"])
    eight = _by_bw(result.series["duration-8s"])

    # GOP-based splicing causes more stalls than duration-based
    # splicing (the headline claim) at every bandwidth above the
    # saturated low end.
    for bw in (256, 512, 768):
        assert gop[bw].stall_count > four[bw].stall_count

    # 2-second segments stall more than 4-second segments when
    # bandwidth is small...
    assert two[128].stall_count > four[128].stall_count
    assert two[256].stall_count > four[256].stall_count

    # ...and 8-second segments stall more than 4-second at the low end.
    assert eight[128].stall_count > four[128].stall_count

    # Every series decreases as bandwidth grows.
    for series in (gop, two, four, eight):
        assert series[768].stall_count <= series[128].stall_count
