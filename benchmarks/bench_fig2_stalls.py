"""Figure 2 — total number of stalls for different bandwidths.

Regenerates the paper's stall-count series (GOP vs 2/4/8-second
duration splicing, 128-768 kB/s, 19 peers, 3 seeded runs averaged) and
asserts the paper's qualitative orderings.  A second, single-bandwidth
case re-runs the scarce end with the PR-5 analyzer attached so the
artifact carries a stall-cause histogram.
"""

from __future__ import annotations

from repro.experiments import fig2
from repro.experiments.report import format_figure
from repro.obs import EngineProfile, Observability, render_run_report
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    # No profile on this obs: profiling publishes engine.* metrics
    # into the registry, and this report must stay byte-identical to
    # the committed table.
    obs = Observability.metrics_only()
    kwargs = {
        "config": config,
        "video": video,
        "obs": obs,
        "executor": executor,
    }
    if quick:
        kwargs["bandwidths_kb"] = (128, 512)
    result = harness.case(
        "fig2/sweep",
        fig2.run,
        kwargs=kwargs,
        params={
            "quick": quick,
            "n_leechers": config.n_leechers,
            "seeds": len(config.seeds),
        },
        digest_of=("fig2", config, kwargs.get("bandwidths_kb")),
    )
    stats = executor.stats
    harness.annotate(
        events_fired=stats.events_fired,
        sim_seconds=stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result) + "\n\n" + render_run_report(obs),
        name="fig2_stall_counts",
    )

    # Stall-cause histogram + engine profile: one analyzed cell at the
    # scarce end, on a throwaway obs whose report is never rendered.
    analyzer_executor = SweepExecutor(jobs=1)
    analyzer_obs = Observability.metrics_only()
    analyzer_obs.profile = EngineProfile()
    analyzed = harness.case(
        "fig2/analyzed@128",
        fig2.run,
        kwargs={
            "config": config,
            "video": video,
            "obs": analyzer_obs,
            "bandwidths_kb": (128,),
            "executor": analyzer_executor,
            "analyze": True,
        },
        params={"quick": quick, "bandwidth_kb": 128, "analyze": True},
        digest_of=("fig2-analyzed", config, 128),
        profile=analyzer_obs.profile,
    )
    harness.annotate(
        events_fired=analyzer_executor.stats.events_fired,
        sim_seconds=analyzer_executor.stats.sim_seconds,
        analysis=analyzed.series["duration-4s"][0].analysis,
    )

    if not quick:
        _check(result)
    return result


def _check(result):
    gop = _by_bw(result.series["gop"])
    two = _by_bw(result.series["duration-2s"])
    four = _by_bw(result.series["duration-4s"])
    eight = _by_bw(result.series["duration-8s"])

    # GOP-based splicing causes more stalls than duration-based
    # splicing (the headline claim) at every bandwidth above the
    # saturated low end.
    for bw in (256, 512, 768):
        assert gop[bw].stall_count > four[bw].stall_count

    # 2-second segments stall more than 4-second segments when
    # bandwidth is small...
    assert two[128].stall_count > four[128].stall_count
    assert two[256].stall_count > four[256].stall_count

    # ...and 8-second segments stall more than 4-second at the low end.
    assert eight[128].stall_count > four[128].stall_count

    # Every series decreases as bandwidth grows.
    for series in (gop, two, four, eight):
        assert series[768].stall_count <= series[128].stall_count


def test_fig2_stall_counts(harness):
    run_suite(harness)
