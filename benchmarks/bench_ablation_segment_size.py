"""Ablation A1 — segment-duration sweep (the Section IV sweet spot).

The paper argues segments must be neither too small (TCP connection
overhead) nor too large (coarse scheduling) but leaves the optimum
open.  This sweep runs a wider duration range than the paper's 2/4/8.
"""

from __future__ import annotations

from repro.experiments.ablations import run_segment_size_sweep
from repro.experiments.report import format_figure

DURATIONS = (1.0, 2.0, 4.0, 8.0, 16.0)


def test_ablation_segment_size_sweep(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_segment_size_sweep,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidths_kb": (128, 512),
            "durations": DURATIONS,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    def stalls(duration, bw):
        cells = result.series[f"duration-{int(duration)}s"]
        return next(
            cell.stall_count
            for cell in cells
            if cell.bandwidth_kb == bw
        )

    # At 128 kB/s the extremes lose to the middle: 1 s pays overhead +
    # connection churn, 16 s is coarser than the whole buffer.
    assert stalls(1.0, 128) > stalls(4.0, 128)
    assert stalls(16.0, 128) > stalls(4.0, 128)
