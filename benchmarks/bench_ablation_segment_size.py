"""Ablation A1 — segment-duration sweep (the Section IV sweet spot).

The paper argues segments must be neither too small (TCP connection
overhead) nor too large (coarse scheduling) but leaves the optimum
open.  This sweep runs a wider duration range than the paper's 2/4/8.
"""

from __future__ import annotations

from repro.experiments.ablations import run_segment_size_sweep
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor

DURATIONS = (1.0, 2.0, 4.0, 8.0, 16.0)
_QUICK_DURATIONS = (1.0, 4.0, 16.0)


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    durations = _QUICK_DURATIONS if quick else DURATIONS
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "duration_sweep",
        run_segment_size_sweep,
        kwargs={
            "config": config,
            "video": video,
            "bandwidths_kb": (128, 512),
            "durations": durations,
            "executor": executor,
        },
        params={
            "quick": quick,
            "bandwidths_kb": [128, 512],
            "durations": list(durations),
        },
        digest_of=("segment_size", config, (128, 512), durations),
    )
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result), name="ablation_segment_size_sweep"
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    def stalls(duration, bw):
        cells = result.series[f"duration-{int(duration)}s"]
        return next(
            cell.stall_count
            for cell in cells
            if cell.bandwidth_kb == bw
        )

    # At 128 kB/s the extremes lose to the middle: 1 s pays overhead +
    # connection churn, 16 s is coarser than the whole buffer.
    assert stalls(1.0, 128) > stalls(4.0, 128)
    assert stalls(16.0, 128) > stalls(4.0, 128)


def test_ablation_segment_size_sweep(harness):
    run_suite(harness)
