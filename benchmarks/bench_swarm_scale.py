"""Swarm backend scaling: simulated peer-seconds per wall second.

Acceptance gate for the vectorized swarm tiers (``docs/SCALING.md``):
on the same workload the cohort backend must deliver at least 10x the
exact engine's simulated peer-seconds per wall-clock second at 10^3
peers, and the fluid tier must carry a 10^5-peer session comfortably
inside CI's one-minute budget.

The workload is a short (24 s) video so the exact baseline stays
measurable: the exact engine needs about a minute of wall time for the
10^3-peer session that the cohort backend finishes in well under a
second.  Join stagger shrinks with population so every tier sees the
same ~1000-second join window inside the 1800-second session cap.
"""

from __future__ import annotations

import random
from time import perf_counter

from repro.core.splicer import DurationSplicer
from repro.p2p import build_swarm
from repro.p2p.swarm import SwarmConfig
from repro.units import kB_per_s
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.scene import generate_scene_plan

MAX_TIME = 1800.0
EXACT_PEERS = 1_000
_QUICK_EXACT_PEERS = 200
SPEEDUP_FLOOR = 10.0
FLUID_WALL_BUDGET_S = 60.0

_SPLICE = None


def _splice():
    """The benchmark's spliced short video (module-memoized)."""
    global _SPLICE
    if _SPLICE is None:
        rng = random.Random(42)
        plan = generate_scene_plan(24.0, rng)
        video = SyntheticEncoder(
            EncoderConfig(bitrate=950_000.0)
        ).encode(plan, rng)
        _SPLICE = DurationSplicer(4.0).splice(video)
    return _SPLICE


def _session(fidelity, n_leechers, join_stagger):
    """Run one session; self-timed over the simulation loop only."""
    config = SwarmConfig(
        bandwidth=kB_per_s(300),
        seeder_bandwidth=kB_per_s(2400),
        n_leechers=n_leechers,
        seed=7,
        join_stagger=join_stagger,
        max_time=MAX_TIME,
        fidelity=fidelity,
    )
    swarm = build_swarm(_splice(), config)
    started = perf_counter()
    result = swarm.run()
    return result, perf_counter() - started


def _measure(harness, case_id, fidelity, n_leechers, join_stagger):
    result = harness.case(
        case_id,
        _session,
        fidelity,
        n_leechers,
        join_stagger,
        params={
            "fidelity": fidelity,
            "n_leechers": n_leechers,
            "join_stagger": join_stagger,
        },
        digest_of=("swarm_scale", fidelity, n_leechers, join_stagger),
        self_timed=True,
    )
    wall = harness.cases[-1].timing.best_s
    rate = n_leechers * result.end_time / max(wall, 1e-9)
    finished = len(result.finished_metrics()) / len(result.metrics)
    harness.annotate(
        sim_seconds=result.end_time,
        peer_sim_seconds_per_sec=rate,
        finished_fraction=finished,
        mean_stall_count=result.mean_stall_count(),
        mean_startup_time=result.mean_startup_time(),
    )
    return rate, wall, finished, result


def run_suite(harness, quick=False):
    exact_peers = _QUICK_EXACT_PEERS if quick else EXACT_PEERS
    rows = []

    def row(case_id, fidelity, n, stagger):
        rate, wall, finished, _ = _measure(
            harness, case_id, fidelity, n, stagger
        )
        rows.append(
            f"  {case_id:>14s}: {wall:8.2f}s wall  "
            f"{rate:14,.0f} peer-sim-s/s  fin={100 * finished:5.1f}%"
        )
        return rate, wall, finished

    exact_rate, _, exact_fin = row(
        f"exact@{exact_peers}", "exact", exact_peers, 1.0
    )
    cohort_rate, _, cohort_fin = row(
        f"cohort@{exact_peers}", "cohort", exact_peers, 1.0
    )
    row("cohort@10000", "cohort", 10_000, 0.1)
    fluid_peers = 10_000 if quick else 100_000
    _, fluid_wall, fluid_fin = row(
        f"fluid@{fluid_peers}", "fluid", fluid_peers, 0.01
    )

    speedup = cohort_rate / max(exact_rate, 1e-9)
    harness.annotate(
        f"cohort@{exact_peers}", speedup_vs_exact=speedup
    )
    lines = [
        "swarm backend scaling (same workload, per tier):",
        *rows,
        "",
        f"cohort speedup over exact @ {exact_peers} peers: "
        f"{speedup:,.0f}x (floor: {SPEEDUP_FLOOR:.0f}x)",
    ]
    harness.emit("\n".join(lines), name="swarm_scale")

    assert exact_fin == 1.0 and cohort_fin == 1.0 and fluid_fin == 1.0
    assert speedup >= SPEEDUP_FLOOR
    if not quick:
        assert fluid_wall < FLUID_WALL_BUDGET_S
    return speedup


def test_swarm_scale(harness):
    run_suite(harness)
