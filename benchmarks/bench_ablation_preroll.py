"""Ablation A7 — pre-roll depth: trading startup for stalls.

The paper's client plays as soon as the first segment lands; HLS
players pre-roll several segments.  Deeper pre-roll must cut stalls
and cost startup.
"""

from __future__ import annotations

from repro.experiments.ablations import run_preroll
from repro.experiments.report import format_figure


def test_ablation_preroll(benchmark, experiment_config, paper_video, emit):
    result = benchmark.pedantic(
        run_preroll,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidth_kb": 256,
            "prerolls": (1, 2, 3),
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    cells = {
        label: cells[0] for label, cells in result.series.items()
    }
    # Deeper pre-roll never stalls more...
    assert (
        cells["preroll 3"].stall_count
        <= cells["preroll 1"].stall_count
    )
    # ...and never starts faster.
    assert (
        cells["preroll 3"].startup_time
        >= cells["preroll 1"].startup_time
    )
