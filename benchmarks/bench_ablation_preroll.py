"""Ablation A7 — pre-roll depth: trading startup for stalls.

The paper's client plays as soon as the first segment lands; HLS
players pre-roll several segments.  Deeper pre-roll must cut stalls
and cost startup.
"""

from __future__ import annotations

from repro.experiments.ablations import run_preroll
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor

_PREROLLS = (1, 2, 3)


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "preroll@256",
        run_preroll,
        kwargs={
            "config": config,
            "video": video,
            "bandwidth_kb": 256,
            "prerolls": _PREROLLS,
            "executor": executor,
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "prerolls": list(_PREROLLS),
        },
        digest_of=("preroll", config, 256, _PREROLLS),
    )
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(format_figure(result), name="ablation_preroll")
    if not quick:
        _check(result)
    return result


def _check(result):
    cells = {
        label: cells[0] for label, cells in result.series.items()
    }
    # Deeper pre-roll never stalls more...
    assert (
        cells["preroll 3"].stall_count
        <= cells["preroll 1"].stall_count
    )
    # ...and never starts faster.
    assert (
        cells["preroll 3"].startup_time
        >= cells["preroll 1"].startup_time
    )


def test_ablation_preroll(harness):
    run_suite(harness)
