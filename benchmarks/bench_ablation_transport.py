"""Ablation A9 — TCP vs a PPSPP/Libswift-style UDP transport.

The paper streams over TCP; the IETF's UDP streaming protocols it
cites avoid the Mathis loss ceiling and the small-window timeout
collapse.  The delay-based transport should soften the 2-second
splicing's low-bandwidth pathology.
"""

from __future__ import annotations

from repro.experiments.report import format_figure
from repro.experiments.transport_study import run as run_transport
from repro.obs.bench import figure_metrics

_BANDWIDTHS_KB = (128, 256, 512)


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    bandwidths = (128, 256) if quick else _BANDWIDTHS_KB
    result = harness.case(
        "tcp_vs_ppspp",
        run_transport,
        kwargs={
            "config": config,
            "video": video,
            "bandwidths_kb": bandwidths,
        },
        params={"quick": quick, "bandwidths_kb": list(bandwidths)},
        digest_of=("transport", config, bandwidths),
    )
    harness.annotate(**figure_metrics(result))
    harness.emit(format_figure(result), name="ablation_transport")
    if not quick:
        _check(result)
    return result


def _check(result):
    tcp = _by_bw(result.series["tcp"])
    udp = _by_bw(result.series["ppspp-udp"])
    # The delay-based transport never does worse, and wins where TCP's
    # loss ceiling binds (the scarce end).
    for bw in (128, 256):
        assert udp[bw].stall_count <= tcp[bw].stall_count * 1.1
    assert udp[128].stall_count < tcp[128].stall_count


def test_ablation_transport(harness):
    run_suite(harness)
