"""Ablation A9 — TCP vs a PPSPP/Libswift-style UDP transport.

The paper streams over TCP; the IETF's UDP streaming protocols it
cites avoid the Mathis loss ceiling and the small-window timeout
collapse.  The delay-based transport should soften the 2-second
splicing's low-bandwidth pathology.
"""

from __future__ import annotations

from repro.experiments.report import format_figure
from repro.experiments.transport_study import run as run_transport


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def test_ablation_transport(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_transport,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidths_kb": (128, 256, 512),
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    tcp = _by_bw(result.series["tcp"])
    udp = _by_bw(result.series["ppspp-udp"])
    # The delay-based transport never does worse, and wins where TCP's
    # loss ceiling binds (the scarce end).
    for bw in (128, 256):
        assert udp[bw].stall_count <= tcp[bw].stall_count * 1.1
    assert udp[128].stall_count < tcp[128].stall_count
