"""Ablation A6 — piece selection under churn.

Sequential (the paper's client) versus a windowed rarest-first hybrid,
with and without half the swarm departing mid-session.
"""

from __future__ import annotations

from repro.experiments.report import format_figure
from repro.experiments.selection_study import run as run_selection


def test_ablation_piece_selection(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_selection,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidth_kb": 256,
            "churn_fraction": 0.5,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    stalls = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # Both strategies keep the swarm streaming under churn; neither
    # collapses (sequential relies on the seeder backstop, the hybrid
    # on piece diversity).
    for label, value in stalls.items():
        assert value < 30.0, f"{label} collapsed: {value} stalls"
