"""Ablation A6 — piece selection under churn.

Sequential (the paper's client) versus a windowed rarest-first hybrid,
with and without half the swarm departing mid-session.
"""

from __future__ import annotations

from repro.experiments.report import format_figure
from repro.experiments.selection_study import run as run_selection
from repro.obs.bench import figure_metrics


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    result = harness.case(
        "selection@256",
        run_selection,
        kwargs={
            "config": config,
            "video": video,
            "bandwidth_kb": 256,
            "churn_fraction": 0.5,
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "churn_fraction": 0.5,
        },
        digest_of=("selection", config, 256, 0.5),
    )
    harness.annotate(**figure_metrics(result))
    harness.emit(
        format_figure(result), name="ablation_piece_selection"
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    stalls = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # Both strategies keep the swarm streaming under churn; neither
    # collapses (sequential relies on the seeder backstop, the hybrid
    # on piece diversity).
    for label, value in stalls.items():
        assert value < 30.0, f"{label} collapsed: {value} stalls"


def test_ablation_piece_selection(harness):
    run_suite(harness)
