"""Figure 5 — total number of stalls for different pool sizes.

Regenerates the downloading-policy comparison: the paper's adaptive
pooling (Eq. 1) against fixed pools of 2, 4, and 8 segments on
4-second splicing.
"""

from __future__ import annotations

from repro.experiments import fig5
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def test_fig5_pool_policies(benchmark, experiment_config, paper_video, emit):
    obs = Observability.metrics_only()
    result = benchmark.pedantic(
        fig5.run,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "obs": obs,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result) + "\n\n" + render_run_report(obs))

    adaptive = _by_bw(result.series["Adaptive pooling"])
    fixed = {
        size: _by_bw(result.series[f"Pool size: {size}"])
        for size in (2, 4, 8)
    }

    # Adaptive pooling results in the fewest stalls where bandwidth is
    # scarce (the paper's Section VI-B claim).
    for size in (2, 4, 8):
        assert (
            adaptive[128].stall_count <= fixed[size][128].stall_count
        )

    # Deep fixed pools also delay segment 0 massively at low
    # bandwidth (the prefetches share the downlink with it).
    assert (
        fixed[8][128].startup_time > 3 * adaptive[128].startup_time
    )

    # With sufficient bandwidth a large pool is harmless — all
    # policies converge to (near) zero stalls.
    for size in (2, 4, 8):
        assert fixed[size][768].stall_count <= 1.0
    assert adaptive[768].stall_count <= 2.0
