"""Figure 5 — total number of stalls for different pool sizes.

Regenerates the downloading-policy comparison: the paper's adaptive
pooling (Eq. 1) against fixed pools of 2, 4, and 8 segments on
4-second splicing.
"""

from __future__ import annotations

from repro.experiments import fig5
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    # No profile on this obs: profiling publishes engine.* metrics
    # into the registry, and this report must stay byte-identical to
    # the committed table.
    obs = Observability.metrics_only()
    kwargs = {
        "config": config,
        "video": video,
        "obs": obs,
        "executor": executor,
    }
    if quick:
        kwargs["bandwidths_kb"] = (128, 512)
    result = harness.case(
        "fig5/sweep",
        fig5.run,
        kwargs=kwargs,
        params={
            "quick": quick,
            "n_leechers": config.n_leechers,
            "seeds": len(config.seeds),
        },
        digest_of=("fig5", config, kwargs.get("bandwidths_kb")),
    )
    stats = executor.stats
    harness.annotate(
        events_fired=stats.events_fired,
        sim_seconds=stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result) + "\n\n" + render_run_report(obs),
        name="fig5_pool_policies",
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    adaptive = _by_bw(result.series["Adaptive pooling"])
    fixed = {
        size: _by_bw(result.series[f"Pool size: {size}"])
        for size in (2, 4, 8)
    }

    # Adaptive pooling results in the fewest stalls where bandwidth is
    # scarce (the paper's Section VI-B claim).
    for size in (2, 4, 8):
        assert (
            adaptive[128].stall_count <= fixed[size][128].stall_count
        )

    # Deep fixed pools also delay segment 0 massively at low
    # bandwidth (the prefetches share the downlink with it).
    assert (
        fixed[8][128].startup_time > 3 * adaptive[128].startup_time
    )

    # With sufficient bandwidth a large pool is harmless — all
    # policies converge to (near) zero stalls.
    for size in (2, 4, 8):
        assert fixed[size][768].stall_count <= 1.0
    assert adaptive[768].stall_count <= 2.0


def test_fig5_pool_policies(harness):
    run_suite(harness)
