"""Ablation A5 — duration-adaptive splicing (the paper's future work).

"An adaptive splicing technique will be able to increase the
performance of P2P video streaming."  The planner picks a segment
duration per bandwidth before splicing; compared to fixed 4-second
segments.
"""

from __future__ import annotations

from repro.experiments.ablations import run_adaptive_splicing
from repro.experiments.report import format_figure


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def test_ablation_adaptive_splicing(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_adaptive_splicing,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    adaptive = _by_bw(result.series["adaptive duration"])
    fixed = _by_bw(result.series["fixed 4s"])

    # Where it matters (the scarce end) the planner must not lose to
    # the fixed default it would replace.
    assert adaptive[128].stall_count <= fixed[128].stall_count + 1.0
    # At high bandwidth the planner picks short segments, which buy a
    # faster startup.
    assert adaptive[768].startup_time <= fixed[768].startup_time
