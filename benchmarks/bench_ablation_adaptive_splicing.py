"""Ablation A5 — duration-adaptive splicing (the paper's future work).

"An adaptive splicing technique will be able to increase the
performance of P2P video streaming."  The planner picks a segment
duration per bandwidth before splicing; compared to fixed 4-second
segments.
"""

from __future__ import annotations

from repro.experiments.ablations import run_adaptive_splicing
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    kwargs = {"config": config, "video": video, "executor": executor}
    if quick:
        kwargs["bandwidths_kb"] = (128, 512)
    result = harness.case(
        "adaptive_vs_fixed4s",
        run_adaptive_splicing,
        kwargs=kwargs,
        params={"quick": quick, "n_leechers": config.n_leechers},
        digest_of=(
            "adaptive_splicing", config, kwargs.get("bandwidths_kb")
        ),
    )
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result), name="ablation_adaptive_splicing"
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    adaptive = _by_bw(result.series["adaptive duration"])
    fixed = _by_bw(result.series["fixed 4s"])
    # Where it matters (the scarce end) the planner must not lose to
    # the fixed default it would replace.
    assert adaptive[128].stall_count <= fixed[128].stall_count + 1.0
    # At high bandwidth the planner picks short segments, which buy a
    # faster startup.
    assert adaptive[768].startup_time <= fixed[768].startup_time


def test_ablation_adaptive_splicing(harness):
    run_suite(harness)
