"""Cold vs warm sweep wall time through the content-addressed store.

Runs the combined fig2-fig5 cell grid twice against one
``ResultStore``: the ``cold`` case computes and commits every run, the
``warm`` case re-runs the byte-identical sweep and must serve *every*
run from disk — zero cells recomputed, a warm/cold speedup well past
an order of magnitude, and results exactly equal to the cold pass.

Case digests deliberately exclude the scale (quick vs full): the hit
rates are scale-independent facts, so a quick CI candidate gates its
``metrics.hit_rate`` against the committed full-scale artifact.  Do
NOT cross-compare timing metrics between quick and full runs of this
suite — CI passes ``--metric metrics.hit_rate`` explicitly.

Run standalone with ``--quick --check`` to gate the overhead of the
wall-clock ops telemetry (``repro.obs.ops``): the cold path is timed
back-to-back with ops disabled and enabled on the same machine, and
the suite fails if span/heartbeat emission slows the sweep by more
than :data:`MAX_OPS_OVERHEAD`.  This is a same-run A/B, not an
artifact comparison, so it is immune to cross-machine noise.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments import fig2, fig3, fig4, fig5
from repro.experiments.config import ExperimentConfig
from repro.obs.ops import (
    NULL_HEARTBEAT,
    NULL_OPS,
    OpsLog,
    ShardHeartbeat,
    heartbeat_path,
    shard_ops_path,
)
from repro.parallel import ResultStore, SweepExecutor, default_jobs

#: Reduced bandwidth axes for --quick (mirrors reproduce --quick).
_QUICK_BANDWIDTHS_KB = (128, 512)

#: Minimum warm-over-cold speedup the full-scale suite must show.
MIN_WARM_SPEEDUP = 10.0

#: Maximum fractional cold-path slowdown ops telemetry may introduce.
MAX_OPS_OVERHEAD = 0.02

#: Best-of-N repeats per variant in the ops-overhead A/B.  High on
#: purpose: the telemetry cost is well under the limit, but shared
#: machines jitter individual sweeps by several percent, and only the
#: per-variant minimum converges on the true floor.
_OPS_CHECK_REPEATS = 8


def _all_cells(config, quick):
    cells = []
    for module in (fig2, fig3, fig4, fig5):
        if quick:
            cells.extend(
                module.cells(config, bandwidths_kb=_QUICK_BANDWIDTHS_KB)
            )
        else:
            cells.extend(module.cells(config))
    return cells


def run_suite(harness, quick=False):
    config = ExperimentConfig(
        n_leechers=9, seeds=(7,) if quick else (7, 11)
    )
    cells = _all_cells(config, quick)
    jobs = max(2, default_jobs())

    with tempfile.TemporaryDirectory() as root:
        def _sweep():
            executor = SweepExecutor(
                jobs=jobs, store=ResultStore(root)
            )
            start = time.perf_counter()
            results = executor.run_cells(cells)
            elapsed = time.perf_counter() - start
            return (results, executor.stats), elapsed

        cold_results, cold_stats = harness.case(
            "cold",
            _sweep,
            self_timed=True,
            params={
                "jobs": jobs,
                "cells": len(cells),
                "runs": cold_runs(config, cells),
                "quick": quick,
            },
            digest_of=("sweep_cache", "cold", "v1"),
        )
        cold_s = harness.cases[-1].timing.best_s
        harness.annotate(
            events_fired=cold_stats.events_fired,
            sim_seconds=cold_stats.sim_seconds,
            hit_rate=0.0,
            cells_recomputed=float(cold_stats.cells_computed),
        )

        warm_results, warm_stats = harness.case(
            "warm",
            _sweep,
            self_timed=True,
            params={
                "jobs": jobs,
                "cells": len(cells),
                "runs": cold_runs(config, cells),
                "quick": quick,
            },
            digest_of=("sweep_cache", "warm", "v1"),
        )
        warm_s = harness.cases[-1].timing.best_s
        hit_rate = warm_stats.runs_cached / max(1, warm_stats.runs)
        harness.annotate(
            hit_rate=hit_rate,
            cells_recomputed=float(warm_stats.cells_computed),
        )

    # The store's contract, asserted where the numbers are made:
    # a byte-identical re-run recomputes nothing and changes nothing.
    assert warm_results == cold_results
    assert warm_stats.runs_cached == warm_stats.runs
    assert warm_stats.cells_computed == 0
    assert warm_stats.events_fired == 0

    speedup = cold_s / warm_s
    harness.annotate("warm", warm_speedup=speedup)
    if not quick:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm sweep only {speedup:.1f}x faster than cold "
            f"(need >= {MIN_WARM_SPEEDUP:.0f}x)"
        )

    lines = [
        "warm-sweep cache (fig2-fig5 grid, "
        f"{len(cells)} cells x {len(config.seeds)} seeds)",
        f"worker processes:   {jobs}",
        f"runs per sweep:     {cold_stats.runs}",
        f"simulated events:   {cold_stats.events_fired}",
        f"cold (compute+put): {cold_s:8.2f} s",
        f"warm (pure hits):   {warm_s:8.4f} s",
        f"warm hit rate:      {hit_rate:8.1%}",
        f"cells recomputed:   {warm_stats.cells_computed:8d}",
        f"warm speedup:       {speedup:8.1f}x",
        "results identical:  yes",
    ]
    harness.emit("\n".join(lines), name="sweep_cache")
    return speedup


def cold_runs(config, cells):
    """Total runs the sweep expands to (cells x seeds)."""
    return len(cells) * len(config.seeds)


def _one_cold_sweep_s(cells, jobs, ops_enabled):
    """One cold sweep's wall time, with or without ops telemetry.

    A fresh store every call (cold = every run computed and
    committed); the telemetry variant wires the full production path:
    span log, cell-run spans, store-commit spans, heartbeat rewrites.
    """
    with tempfile.TemporaryDirectory() as root:
        store = ResultStore(root)
        if ops_enabled:
            ops = OpsLog(shard_ops_path(root, 0))
            heartbeat = ShardHeartbeat(
                heartbeat_path(root, 0), shard=0, shards=1
            )
            store.ops = ops
        else:
            ops, heartbeat = NULL_OPS, NULL_HEARTBEAT
        executor = SweepExecutor(
            jobs=jobs, store=store, ops=ops, heartbeat=heartbeat
        )
        start = time.perf_counter()
        with ops.span("shard", shard=0):
            executor.run_cells(cells)
        elapsed = time.perf_counter() - start
        ops.close()
    return elapsed


def check_ops_overhead(quick=True):
    """Gate the ops-telemetry cost on the cold sweep path.

    A/B on this machine: the plain cold sweep versus the same sweep
    emitting spans, store-commit spans, and heartbeats.  The variants
    are interleaved round by round (so machine drift hits both
    equally) and each keeps its best-of-N, which rejects the
    scheduler/pool-startup noise a small sweep is prone to.  Fails
    when telemetry costs more than :data:`MAX_OPS_OVERHEAD` of cold
    wall time.
    """
    config = ExperimentConfig(n_leechers=9, seeds=(7, 11))
    if quick:
        cells = fig2.cells(
            config, bandwidths_kb=_QUICK_BANDWIDTHS_KB
        )
    else:
        cells = _all_cells(config, quick=False)
    jobs = max(2, default_jobs())

    # Unmeasured warmup: imports, page cache, pool spin-up.
    _one_cold_sweep_s(cells, jobs, ops_enabled=False)

    best = {False: None, True: None}
    for rep in range(_OPS_CHECK_REPEATS):
        # ABBA ordering: alternate which variant runs first so slow
        # machine drift (thermal, background load) cancels instead
        # of always taxing the same variant.
        order = (False, True) if rep % 2 == 0 else (True, False)
        for enabled in order:
            sample = _one_cold_sweep_s(cells, jobs, enabled)
            prior = best[enabled]
            best[enabled] = (
                sample if prior is None else min(prior, sample)
            )
    plain_s, ops_s = best[False], best[True]
    overhead = ops_s / plain_s - 1.0
    status = "ok" if overhead <= MAX_OPS_OVERHEAD else "REGRESSION"
    print(
        f"check ops overhead ({len(cells)} cells, best of "
        f"{_OPS_CHECK_REPEATS}): plain {plain_s:.2f} s, "
        f"with telemetry {ops_s:.2f} s ({overhead:+.1%}, "
        f"limit {MAX_OPS_OVERHEAD:.0%}) -> {status}"
    )
    if overhead > MAX_OPS_OVERHEAD:
        raise SystemExit(
            f"ops telemetry slows the cold sweep by {overhead:.1%} "
            f"(limit {MAX_OPS_OVERHEAD:.0%})"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced grid (fig2 cells, one seed); do not overwrite "
        "the committed artifact",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="A/B the cold path with ops telemetry off vs on and "
        f"fail on a >{MAX_OPS_OVERHEAD:.0%} slowdown",
    )
    args = parser.parse_args(argv)

    if args.check:
        check_ops_overhead(quick=args.quick)
        return

    from repro.obs.bench import BenchHarness

    results = Path(__file__).resolve().parent / "results"
    harness = BenchHarness(
        "sweep_cache", results_dir=results, quick=args.quick
    )
    run_suite(harness, quick=args.quick)
    target = harness.write()
    print(f"\nwrote {target}")


def test_sweep_cache(harness):
    run_suite(harness)


if __name__ == "__main__":
    main()
