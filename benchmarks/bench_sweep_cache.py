"""Cold vs warm sweep wall time through the content-addressed store.

Runs the combined fig2-fig5 cell grid twice against one
``ResultStore``: the ``cold`` case computes and commits every run, the
``warm`` case re-runs the byte-identical sweep and must serve *every*
run from disk — zero cells recomputed, a warm/cold speedup well past
an order of magnitude, and results exactly equal to the cold pass.

Case digests deliberately exclude the scale (quick vs full): the hit
rates are scale-independent facts, so a quick CI candidate gates its
``metrics.hit_rate`` against the committed full-scale artifact.  Do
NOT cross-compare timing metrics between quick and full runs of this
suite — CI passes ``--metric metrics.hit_rate`` explicitly.
"""

from __future__ import annotations

import tempfile
import time

from repro.experiments import fig2, fig3, fig4, fig5
from repro.experiments.config import ExperimentConfig
from repro.parallel import ResultStore, SweepExecutor, default_jobs

#: Reduced bandwidth axes for --quick (mirrors reproduce --quick).
_QUICK_BANDWIDTHS_KB = (128, 512)

#: Minimum warm-over-cold speedup the full-scale suite must show.
MIN_WARM_SPEEDUP = 10.0


def _all_cells(config, quick):
    cells = []
    for module in (fig2, fig3, fig4, fig5):
        if quick:
            cells.extend(
                module.cells(config, bandwidths_kb=_QUICK_BANDWIDTHS_KB)
            )
        else:
            cells.extend(module.cells(config))
    return cells


def run_suite(harness, quick=False):
    config = ExperimentConfig(
        n_leechers=9, seeds=(7,) if quick else (7, 11)
    )
    cells = _all_cells(config, quick)
    jobs = max(2, default_jobs())

    with tempfile.TemporaryDirectory() as root:
        def _sweep():
            executor = SweepExecutor(
                jobs=jobs, store=ResultStore(root)
            )
            start = time.perf_counter()
            results = executor.run_cells(cells)
            elapsed = time.perf_counter() - start
            return (results, executor.stats), elapsed

        cold_results, cold_stats = harness.case(
            "cold",
            _sweep,
            self_timed=True,
            params={
                "jobs": jobs,
                "cells": len(cells),
                "runs": cold_runs(config, cells),
                "quick": quick,
            },
            digest_of=("sweep_cache", "cold", "v1"),
        )
        cold_s = harness.cases[-1].timing.best_s
        harness.annotate(
            events_fired=cold_stats.events_fired,
            sim_seconds=cold_stats.sim_seconds,
            hit_rate=0.0,
            cells_recomputed=float(cold_stats.cells_computed),
        )

        warm_results, warm_stats = harness.case(
            "warm",
            _sweep,
            self_timed=True,
            params={
                "jobs": jobs,
                "cells": len(cells),
                "runs": cold_runs(config, cells),
                "quick": quick,
            },
            digest_of=("sweep_cache", "warm", "v1"),
        )
        warm_s = harness.cases[-1].timing.best_s
        hit_rate = warm_stats.runs_cached / max(1, warm_stats.runs)
        harness.annotate(
            hit_rate=hit_rate,
            cells_recomputed=float(warm_stats.cells_computed),
        )

    # The store's contract, asserted where the numbers are made:
    # a byte-identical re-run recomputes nothing and changes nothing.
    assert warm_results == cold_results
    assert warm_stats.runs_cached == warm_stats.runs
    assert warm_stats.cells_computed == 0
    assert warm_stats.events_fired == 0

    speedup = cold_s / warm_s
    harness.annotate("warm", warm_speedup=speedup)
    if not quick:
        assert speedup >= MIN_WARM_SPEEDUP, (
            f"warm sweep only {speedup:.1f}x faster than cold "
            f"(need >= {MIN_WARM_SPEEDUP:.0f}x)"
        )

    lines = [
        "warm-sweep cache (fig2-fig5 grid, "
        f"{len(cells)} cells x {len(config.seeds)} seeds)",
        f"worker processes:   {jobs}",
        f"runs per sweep:     {cold_stats.runs}",
        f"simulated events:   {cold_stats.events_fired}",
        f"cold (compute+put): {cold_s:8.2f} s",
        f"warm (pure hits):   {warm_s:8.4f} s",
        f"warm hit rate:      {hit_rate:8.1%}",
        f"cells recomputed:   {warm_stats.cells_computed:8d}",
        f"warm speedup:       {speedup:8.1f}x",
        "results identical:  yes",
    ]
    harness.emit("\n".join(lines), name="sweep_cache")
    return speedup


def cold_runs(config, cells):
    """Total runs the sweep expands to (cells x seeds)."""
    return len(cells) * len(config.seeds)


def test_sweep_cache(harness):
    run_suite(harness)
