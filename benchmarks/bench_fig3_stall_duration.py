"""Figure 3 — total stall duration for different bandwidths.

Regenerates the stall-duration series for the same sweep as Figure 2.
"""

from __future__ import annotations

from repro.experiments import fig3
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    # No profile on this obs: profiling publishes engine.* metrics
    # into the registry, and this report must stay byte-identical to
    # the committed table.
    obs = Observability.metrics_only()
    kwargs = {
        "config": config,
        "video": video,
        "obs": obs,
        "executor": executor,
    }
    if quick:
        kwargs["bandwidths_kb"] = (128, 512)
    result = harness.case(
        "fig3/sweep",
        fig3.run,
        kwargs=kwargs,
        params={
            "quick": quick,
            "n_leechers": config.n_leechers,
            "seeds": len(config.seeds),
        },
        digest_of=("fig3", config, kwargs.get("bandwidths_kb")),
    )
    stats = executor.stats
    harness.annotate(
        events_fired=stats.events_fired,
        sim_seconds=stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result) + "\n\n" + render_run_report(obs),
        name="fig3_stall_durations",
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    # Stall time collapses as bandwidth grows, for every technique.
    for label, cells in result.series.items():
        series = _by_bw(cells)
        assert series[768].stall_duration < series[128].stall_duration

    # At the top bandwidth every technique is near-smooth (the paper's
    # series all approach zero on the right edge of the figure).
    for cells in result.series.values():
        assert _by_bw(cells)[768].stall_duration < 60.0


def test_fig3_stall_durations(harness):
    run_suite(harness)
