"""Figure 3 — total stall duration for different bandwidths.

Regenerates the stall-duration series for the same sweep as Figure 2.
"""

from __future__ import annotations

from repro.experiments import fig3
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def test_fig3_stall_durations(benchmark, experiment_config, paper_video, emit):
    obs = Observability.metrics_only()
    result = benchmark.pedantic(
        fig3.run,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "obs": obs,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result) + "\n\n" + render_run_report(obs))

    # Stall time collapses as bandwidth grows, for every technique.
    for label, cells in result.series.items():
        series = _by_bw(cells)
        assert series[768].stall_duration < series[128].stall_duration

    # At the top bandwidth every technique is near-smooth (the paper's
    # series all approach zero on the right edge of the figure).
    for cells in result.series.values():
        assert _by_bw(cells)[768].stall_duration < 60.0
