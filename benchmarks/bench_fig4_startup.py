"""Figure 4 — startup time for different bandwidths.

Regenerates the startup-time series (2/4/8-second segments,
128-1024 kB/s) and asserts the paper's shape: larger segments start
slower, with the gap largest at low bandwidth.
"""

from __future__ import annotations

from repro.experiments import fig4
from repro.experiments.report import format_figure
from repro.obs import Observability, render_run_report
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor


def _by_bw(cells):
    return {cell.bandwidth_kb: cell for cell in cells}


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    # No profile on this obs: profiling publishes engine.* metrics
    # into the registry, and this report must stay byte-identical to
    # the committed table.
    obs = Observability.metrics_only()
    kwargs = {
        "config": config,
        "video": video,
        "obs": obs,
        "executor": executor,
    }
    if quick:
        kwargs["bandwidths_kb"] = (128, 512)
    result = harness.case(
        "fig4/sweep",
        fig4.run,
        kwargs=kwargs,
        params={
            "quick": quick,
            "n_leechers": config.n_leechers,
            "seeds": len(config.seeds),
        },
        digest_of=("fig4", config, kwargs.get("bandwidths_kb")),
    )
    stats = executor.stats
    harness.annotate(
        events_fired=stats.events_fired,
        sim_seconds=stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(
        format_figure(result, precision=2)
        + "\n\n"
        + render_run_report(obs),
        name="fig4_startup_times",
    )
    if not quick:
        _check(result)
    return result


def _check(result):
    two = _by_bw(result.series["2 sec segment"])
    four = _by_bw(result.series["4 sec segment"])
    eight = _by_bw(result.series["8 sec segment"])

    # Larger segments start slower at every bandwidth.
    for bw in (128, 256, 512, 1024):
        assert (
            two[bw].startup_time
            < four[bw].startup_time
            < eight[bw].startup_time
        )

    # "The large segments can result in a very high startup time in a
    # low bandwidth network": the 8 s gap is largest at 128 kB/s.
    gap_low = eight[128].startup_time - two[128].startup_time
    gap_high = eight[1024].startup_time - two[1024].startup_time
    assert gap_low > gap_high

    # Startup falls with bandwidth for every series.
    for series in (two, four, eight):
        assert series[1024].startup_time <= series[128].startup_time


def test_fig4_startup_times(harness):
    run_suite(harness)
