"""Benchmark fixtures: one shared :class:`BenchHarness` per module.

Every ``bench_*.py`` exposes ``run_suite(harness, quick=False)``; the
``harness`` fixture names the suite after the module (the same name
``repro bench <suite>`` uses), lets the suite time cases and emit its
human-readable tables, and writes the versioned
``results/BENCH_<suite>.json`` artifact on teardown.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.obs.bench import BenchHarness

_RESULTS = Path(__file__).resolve().parent / "results"


@pytest.fixture()
def harness(request):
    """A full-scale harness for the current benchmark module.

    pytest captures stdout, so the durable copies under ``results/``
    — the ``.txt`` tables and the ``BENCH_<suite>.json`` artifact —
    are what survives a plain ``pytest benchmarks/`` run.
    """
    suite = Path(request.module.__file__).stem.removeprefix("bench_")
    bench = BenchHarness(suite, results_dir=_RESULTS)
    yield bench
    if bench.cases:
        bench.write()
