"""Benchmark fixtures: the paper's video, encoded once per session."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.experiments.config import ExperimentConfig, make_paper_video


@pytest.fixture(scope="session")
def experiment_config():
    """The paper's full-scale setup: 19 peers, 3 seeds per cell."""
    return ExperimentConfig()


@pytest.fixture(scope="session")
def paper_video(experiment_config):
    """The 2-minute nominal-1-Mbps experimental video."""
    return make_paper_video(experiment_config)


@pytest.fixture()
def emit(request):
    """Print a reproduced table and persist it to benchmarks/results/.

    pytest captures stdout, so the durable copy under ``results/`` is
    what survives a plain ``pytest benchmarks/ --benchmark-only`` run.
    """
    results_dir = Path(__file__).resolve().parent / "results"
    results_dir.mkdir(exist_ok=True)

    def _emit(text: str) -> None:
        print()
        print(text)
        name = request.node.name.removeprefix("test_")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
