"""Ablation A2 — streaming under churn.

"Peers can leave the swarm anytime": measures stalls as a growing
fraction of the swarm departs mid-session, exercising goodbye
handling, upload cancellation, and timeout re-requests.
"""

from __future__ import annotations

from repro.experiments.ablations import run_churn
from repro.experiments.report import format_figure

FRACTIONS = (0.0, 0.25, 0.5)


def test_ablation_churn(benchmark, experiment_config, paper_video, emit):
    result = benchmark.pedantic(
        run_churn,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidth_kb": 256,
            "churn_fractions": FRACTIONS,
        },
        rounds=1,
        iterations=1,
    )
    emit(format_figure(result))

    cells = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # Survivors keep finishing even when half the swarm churns; stalls
    # stay within a small factor of the churn-free baseline because
    # the seeder backstops departed sources.
    baseline = max(cells["churn 0%"], 0.5)
    assert cells["churn 50%"] <= 10 * baseline
