"""Ablation A2 — streaming under churn.

"Peers can leave the swarm anytime": measures stalls as a growing
fraction of the swarm departs mid-session, exercising goodbye
handling, upload cancellation, and timeout re-requests.
"""

from __future__ import annotations

from repro.experiments.ablations import run_churn
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor

FRACTIONS = (0.0, 0.25, 0.5)


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "churn@256",
        run_churn,
        kwargs={
            "config": config,
            "video": video,
            "bandwidth_kb": 256,
            "churn_fractions": FRACTIONS,
            "executor": executor,
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "churn_fractions": list(FRACTIONS),
        },
        digest_of=("churn", config, 256, FRACTIONS),
    )
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **figure_metrics(result),
    )
    harness.emit(format_figure(result), name="ablation_churn")
    if not quick:
        _check(result)
    return result


def _check(result):
    cells = {
        label: cells[0].stall_count
        for label, cells in result.series.items()
    }
    # Survivors keep finishing even when half the swarm churns; stalls
    # stay within a small factor of the churn-free baseline because
    # the seeder backstops departed sources.
    baseline = max(cells["churn 0%"], 0.5)
    assert cells["churn 50%"] <= 10 * baseline


def test_ablation_churn(harness):
    run_suite(harness)
