"""Incremental vs global flow-solver throughput.

Drives identical TCP workloads through the incremental
:class:`~repro.net.flownet.FlowNetwork` and the pre-incremental
:class:`~repro.net.reference.ReferenceFlowNetwork`, and reports
simulated events per wall-clock second for each.

Two topologies, shaped like the paper's streaming experiments:

* **star** — one seed serves every leecher over a shared uplink.
  Segment fetches start at synchronized segment boundaries and all
  transfers share one RTT, so bursts of same-timestamp updates are the
  norm: this stresses update coalescing and the O(links) advance.
* **multibottleneck** — leechers are partitioned into groups, each
  with its own backbone link, and fetch only from group neighbours.
  The flow graph stays split into one component per group: this
  stresses component-scoped recomputation.

Usage::

    python benchmarks/bench_flownet.py             # full run, writes artifacts
    python benchmarks/bench_flownet.py --quick     # small sizes, quick artifact
    python benchmarks/bench_flownet.py --quick --check
        # CI gate: re-measure the quick rows and fail if the
        # incremental solver's events/sec fell more than 30% below the
        # committed artifact's baseline for the same topology and size.

Both solvers must agree on the simulation itself — same transfer
completions, same final simulated time — or the run aborts: a speedup
over a solver computing something else would be meaningless.
"""

from __future__ import annotations

import argparse
import random
import re
import sys
import time
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link
from repro.net.reference import ReferenceFlowNetwork
from repro.net.tcp import TcpParams, start_tcp_transfer
from repro.obs.tracer import NULL_TRACER, EventTracer

ARTIFACT = Path(__file__).resolve().parent / "results" / "flownet_solver.txt"

#: CI gate: fail when incremental events/sec drops below this fraction
#: of the committed baseline.
REGRESSION_FLOOR = 0.70

_FULL_SIZES = (20, 100, 500)
_QUICK_SIZES = (20,)
_ROUNDS = 5
_SEGMENT_INTERVAL = 2.0
_SEGMENT_BYTES = 40_000.0
_SEED = 20150629  # ICDCS'15 submission-year flavoured, but arbitrary

_SOLVERS = {
    "incremental": FlowNetwork,
    "reference": ReferenceFlowNetwork,
}


def _build_star(network, n_peers, rng):
    """Seed-to-all star; returns per-round fetch thunks."""
    seed_up = Link("seed_up", 25_000.0 * n_peers, latency=0.02)
    downs = [
        Link(f"down{i}", 100_000.0, latency=0.02) for i in range(n_peers)
    ]
    # Every leecher fetches the *same* segment of the video each round,
    # so the size varies per round, not per peer.
    sizes = [
        _SEGMENT_BYTES * rng.uniform(0.8, 1.2) for _ in range(_ROUNDS)
    ]

    def fetches(round_index):
        return [
            ((seed_up, downs[i]), sizes[round_index])
            for i in range(n_peers)
        ]

    return fetches


def _build_multibottleneck(network, n_peers, rng, group_size=10):
    """Disjoint neighbour groups, each behind its own backbone link."""
    n_groups = max(1, n_peers // group_size)
    backbones = [
        Link(f"bb{g}", 150_000.0, latency=0.01) for g in range(n_groups)
    ]
    ups = [Link(f"up{i}", 50_000.0, latency=0.01) for i in range(n_peers)]
    downs = [
        Link(f"down{i}", 100_000.0, latency=0.01) for i in range(n_peers)
    ]
    plan = []
    for _ in range(_ROUNDS):
        size = _SEGMENT_BYTES * rng.uniform(0.8, 1.2)
        row = []
        for i in range(n_peers):
            group = min(i // group_size, n_groups - 1)
            low = group * group_size
            high = min(low + group_size, n_peers)
            source = rng.randrange(low, high)
            if source == i:
                source = low if i != low else high - 1
            row.append(
                ((ups[source], backbones[group], downs[i]), size)
            )
        plan.append(row)

    def fetches(round_index):
        return plan[round_index]

    return fetches


_TOPOLOGIES = {
    "star": _build_star,
    "multibottleneck": _build_multibottleneck,
}


def run_workload(solver, topology, n_peers, tracer=NULL_TRACER):
    """Run one workload; return (events, wall_s, completions, end_time)."""
    sim = Simulator()
    network = _SOLVERS[solver](sim)
    rng = random.Random(_SEED + n_peers)
    fetches = _TOPOLOGIES[topology](network, n_peers, rng)
    params = TcpParams()
    completed = []

    def start_round(round_index):
        for route, size in fetches(round_index):
            start_tcp_transfer(
                sim,
                network,
                route,
                size,
                params=params,
                on_complete=completed.append,
                tracer=tracer,
            )

    for round_index in range(_ROUNDS):
        sim.schedule_at(
            round_index * _SEGMENT_INTERVAL, start_round, round_index
        )
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return sim.events_fired, wall, len(completed), sim.now


def _workload(solver, topology, n_peers):
    """Self-timed wrapper: only the simulator loop counts."""
    events, wall, done, end = run_workload(solver, topology, n_peers)
    return (events, done, end), wall


def _timed(solver, topology, n_peers, tracer=NULL_TRACER):
    """Best-of-many wall time under a ~1.5 s budget per cell.

    Millisecond-scale cells are re-run until the budget is spent and
    the minimum is kept — the minimum is the run least disturbed by
    scheduler noise, which keeps the CI regression gate from tripping
    on a busy machine.
    """
    events, wall, done, end = run_workload(
        solver, topology, n_peers, tracer
    )
    spent = wall
    repeats = 1
    while spent < 1.5 and repeats < 400:
        _, again, _, _ = run_workload(solver, topology, n_peers, tracer)
        wall = min(wall, again)
        spent += again
        repeats += 1
    return events, wall, done, end


def run_suite(harness, quick=False):
    """Measure every topology x size x solver cell through ``harness``.

    Returns rows of ``(topology, n, solver, events, wall_s, evps)``,
    verifying the two solvers simulated the same thing.
    """
    sizes = _QUICK_SIZES if quick else _FULL_SIZES
    rows = []
    for topology in _TOPOLOGIES:
        for n_peers in sizes:
            outcomes = {}
            for solver in _SOLVERS:
                events, done, end = harness.case(
                    f"{topology}/{n_peers}/{solver}",
                    _workload,
                    solver,
                    topology,
                    n_peers,
                    self_timed=True,
                    budget_s=1.5,
                    params={
                        "topology": topology,
                        "n_peers": n_peers,
                        "solver": solver,
                        "rounds": _ROUNDS,
                    },
                    digest_of=(
                        "flownet",
                        topology,
                        n_peers,
                        solver,
                        _SEED,
                        _ROUNDS,
                        _SEGMENT_BYTES,
                    ),
                )
                wall = harness.cases[-1].timing.best_s
                harness.annotate(events_fired=events, sim_seconds=end)
                outcomes[solver] = (done, end)
                rows.append(
                    (topology, n_peers, solver, events, wall, events / wall)
                )
            inc_done, inc_end = outcomes["incremental"]
            ref_done, ref_end = outcomes["reference"]
            if inc_done != ref_done or abs(inc_end - ref_end) > 1e-6 * (
                1.0 + ref_end
            ):
                raise SystemExit(
                    f"solver mismatch on {topology}/{n_peers}: "
                    f"incremental finished {inc_done} transfers at "
                    f"t={inc_end}, reference {ref_done} at t={ref_end}"
                )
            inc_evps = rows[-2][5]
            ref_evps = rows[-1][5]
            harness.annotate(
                f"{topology}/{n_peers}/incremental",
                speedup_vs_reference=inc_evps / ref_evps,
            )
    harness.emit(render(rows), name="flownet_solver")
    return rows


def render(rows):
    """Human-readable report with machine-parsable data lines."""
    lines = [
        "flow solver throughput: incremental vs global re-solve",
        f"({_ROUNDS} synchronized segment rounds, "
        f"{_SEGMENT_BYTES:.0f} B nominal segments, seed {_SEED})",
        "",
        f"{'topology':<16} {'peers':>5} {'solver':<12} "
        f"{'events':>8} {'wall_s':>8} {'events/s':>10}",
    ]
    by_cell = {}
    for topology, n_peers, solver, events, wall, evps in rows:
        by_cell[(topology, n_peers, solver)] = evps
        lines.append(
            f"{topology:<16} {n_peers:>5} {solver:<12} "
            f"{events:>8} {wall:>8.3f} {evps:>10.0f}"
        )
    lines.append("")
    for (topology, n_peers), _ in {
        (t, n): None for t, n, *_ in rows
    }.items():
        ratio = by_cell[(topology, n_peers, "incremental")] / by_cell[
            (topology, n_peers, "reference")
        ]
        lines.append(f"speedup {topology:<16} n={n_peers:<4} {ratio:6.2f}x")
    return "\n".join(lines)


_ROW_RE = re.compile(
    r"^(?P<topology>\w+)\s+(?P<n>\d+)\s+(?P<solver>\w+)\s+"
    r"(?P<events>\d+)\s+(?P<wall>[\d.]+)\s+(?P<evps>\d+)\s*$"
)


def parse_artifact(text):
    """Extract ``(topology, n, solver) -> events/s`` from a report."""
    baseline = {}
    for line in text.splitlines():
        match = _ROW_RE.match(line)
        if match:
            baseline[
                (
                    match["topology"],
                    int(match["n"]),
                    match["solver"],
                )
            ] = float(match["evps"])
    return baseline


def check_regression(rows, baseline):
    """Compare measured incremental events/s against the artifact."""
    failures = []
    compared = 0
    for topology, n_peers, solver, _, _, evps in rows:
        if solver != "incremental":
            continue
        key = (topology, n_peers, solver)
        if key not in baseline:
            continue
        compared += 1
        floor = baseline[key] * REGRESSION_FLOOR
        status = "ok" if evps >= floor else "REGRESSION"
        print(
            f"check {topology}/{n_peers}: measured {evps:.0f} ev/s, "
            f"baseline {baseline[key]:.0f}, floor {floor:.0f} -> {status}"
        )
        if evps < floor:
            failures.append(key)
    if compared == 0:
        raise SystemExit(
            "no measured cell matches the artifact baseline "
            f"({ARTIFACT}); re-record it with a full run"
        )
    if failures:
        raise SystemExit(
            f"events/sec regressed >{(1 - REGRESSION_FLOOR):.0%} on: "
            + ", ".join(f"{t}/{n}" for t, n, _ in failures)
        )


def check_null_tracer_overhead(baseline, n_peers):
    """Guard the untraced (NullTracer) hot path against regression.

    Every ``tracer.emit`` site in the TCP layer is gated on one
    attribute check, so a run with :data:`NULL_TRACER` must stay as
    fast as the committed baseline — if instrumentation starts paying
    even with tracing disabled, this trips before users notice slower
    sweeps.  The traced variant is measured alongside purely for the
    printed overhead figure; only the untraced path is gated.
    """
    key = ("star", n_peers, "incremental")
    if key not in baseline:
        raise SystemExit(
            f"no baseline for {key} in {ARTIFACT}; "
            "re-record it with a full run"
        )
    _, null_wall, _, _ = _timed("incremental", "star", n_peers)
    null_evps = run_workload("incremental", "star", n_peers)[0] / null_wall

    tracer = EventTracer(capacity=100_000)
    _, traced_wall, _, _ = _timed(
        "incremental", "star", n_peers, tracer
    )
    traced_evps = (
        run_workload("incremental", "star", n_peers, tracer)[0]
        / traced_wall
    )

    floor = baseline[key] * REGRESSION_FLOOR
    overhead = 1.0 - traced_evps / null_evps
    status = "ok" if null_evps >= floor else "REGRESSION"
    print(
        f"nulltracer star/{n_peers}: untraced {null_evps:.0f} ev/s, "
        f"traced {traced_evps:.0f} ev/s "
        f"({overhead:+.1%} tracing overhead), floor {floor:.0f} "
        f"-> {status}"
    )
    if null_evps < floor:
        raise SystemExit(
            "untraced (NullTracer) path regressed "
            f">{(1 - REGRESSION_FLOOR):.0%} below baseline on star/"
            f"{n_peers}"
        )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help=f"only swarm sizes {_QUICK_SIZES}; do not overwrite the "
        "committed table",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="compare measured incremental events/sec against the "
        "committed artifact and fail on a >30%% regression",
    )
    args = parser.parse_args(argv)

    from repro.obs.bench import BenchHarness

    harness = BenchHarness(
        "flownet", results_dir=ARTIFACT.parent, quick=args.quick
    )
    rows = run_suite(harness, quick=args.quick)

    if args.check:
        if not ARTIFACT.exists():
            raise SystemExit(f"missing baseline artifact: {ARTIFACT}")
        baseline = parse_artifact(ARTIFACT.read_text())
        check_regression(rows, baseline)
        check_null_tracer_overhead(baseline, _QUICK_SIZES[0])
    else:
        target = harness.write()
        print(f"\nwrote {target}")


def test_flownet_solver_quick(harness):
    """Pytest entry point: quick sizes, no table overwrite."""
    harness.quick = True
    rows = run_suite(harness, quick=True)
    by_cell = {
        (topology, n, solver): evps
        for topology, n, solver, _, _, evps in rows
    }
    for topology in _TOPOLOGIES:
        for n_peers in _QUICK_SIZES:
            assert (
                by_cell[(topology, n_peers, "incremental")]
                > by_cell[(topology, n_peers, "reference")]
            )


if __name__ == "__main__":
    main()
