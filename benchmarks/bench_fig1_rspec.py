"""Figure 1 — the request RSpec of the experimental slice.

The paper's Fig. 1 is an RSpec snippet showing a shaped link.  This
bench regenerates the full 20-node slice document, round-trips it
through XML, and micro-benchmarks the build/serialize/parse pipeline
(the only genuinely CPU-bound step of the testbed layer).
"""

from __future__ import annotations

from repro.testbed import parse_rspec, star_rspec


def build_and_roundtrip():
    document = star_rspec(
        n_peers=19,
        capacity_kbps=8192,
        latency_ms=12.5,
        packet_loss=0.0253,
    )
    xml = document.to_xml()
    return document, parse_rspec(xml), xml


def run_suite(harness, quick=False):
    document, parsed, xml = harness.case(
        "build_serialize_parse",
        build_and_roundtrip,
        warmup=1,
        budget_s=0.5,
        params={
            "n_peers": 19,
            "capacity_kbps": 8192,
            "latency_ms": 12.5,
            "packet_loss": 0.0253,
        },
        digest_of=("rspec", 19, 8192, 12.5, 0.0253),
    )
    harness.annotate(
        nodes=len(parsed.nodes),
        links=len(parsed.links),
        xml_bytes=len(xml.encode("utf-8")),
    )

    start = xml.index("<link")
    end = xml.index("</link>") + len("</link>")
    harness.emit(xml[start:end], name="fig1_rspec_roundtrip")

    assert len(parsed.nodes) == 21  # 19 peers + seeder + switch
    assert len(parsed.links) == 20
    for link in parsed.links:
        assert link.capacity_kbps == 8192
        assert link.latency_ms == 12.5
        assert link.packet_loss == 0.0253
    return parsed


def test_fig1_rspec_roundtrip(harness):
    run_suite(harness)
