"""Figure 1 — the request RSpec of the experimental slice.

The paper's Fig. 1 is an RSpec snippet showing a shaped link.  This
bench regenerates the full 20-node slice document, round-trips it
through XML, and micro-benchmarks the build/serialize/parse pipeline
(the only genuinely CPU-bound step of the testbed layer).
"""

from __future__ import annotations

from repro.testbed import parse_rspec, star_rspec


def build_and_roundtrip():
    document = star_rspec(
        n_peers=19,
        capacity_kbps=8192,
        latency_ms=12.5,
        packet_loss=0.0253,
    )
    xml = document.to_xml()
    return document, parse_rspec(xml), xml


def test_fig1_rspec_roundtrip(benchmark, emit):
    document, parsed, xml = benchmark(build_and_roundtrip)

    start = xml.index("<link")
    end = xml.index("</link>") + len("</link>")
    emit(xml[start:end])

    assert len(parsed.nodes) == 21  # 19 peers + seeder + switch
    assert len(parsed.links) == 20
    for link in parsed.links:
        assert link.capacity_kbps == 8192
        assert link.latency_ms == 12.5
        assert link.packet_loss == 0.0253
