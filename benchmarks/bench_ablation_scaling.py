"""Ablation A8 — swarm scaling: P2P sheds load from the origin.

The paper motivates P2P with scalability; growing the swarm should
shift traffic from the seeder to the peers without degrading playback.
"""

from __future__ import annotations

from repro.experiments.ablations import run_swarm_scaling
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor

SIZES = (5, 10, 19, 38)
_QUICK_SIZES = (5, 10)


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    sizes = _QUICK_SIZES if quick else SIZES
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "scaling@256",
        run_swarm_scaling,
        kwargs={
            "config": config,
            "video": video,
            "bandwidth_kb": 256,
            "swarm_sizes": sizes,
            "executor": executor,
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "swarm_sizes": list(sizes),
        },
        digest_of=("swarm_scaling", config, 256, sizes),
    )
    lines = [format_figure(result), "", "origin share of served bytes:"]
    shares = {}
    for label, cells in result.series.items():
        cell = cells[0]
        share = cell.seeder_bytes / max(
            1.0, cell.seeder_bytes + cell.peer_bytes
        )
        shares[label] = share
        lines.append(f"  {label:>9s}: {100 * share:5.1f}%")
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **{
            f"{label}.origin_share": share
            for label, share in shares.items()
        },
        **figure_metrics(result),
    )
    harness.emit("\n".join(lines), name="ablation_swarm_scaling")
    # The origin's share of the bytes shrinks as the swarm grows (this
    # holds at quick scale too — it is the point of P2P).
    assert shares[f"{sizes[-1]} peers"] < shares[f"{sizes[0]} peers"]
    if not quick:
        for label, cells in result.series.items():
            assert cells[0].finished_fraction == 1.0
            assert cells[0].stall_count < 15.0
    return result


def test_ablation_swarm_scaling(harness):
    run_suite(harness)
