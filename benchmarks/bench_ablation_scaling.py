"""Ablation A8 — swarm scaling: P2P sheds load from the origin.

The paper motivates P2P with scalability; growing the swarm should
shift traffic from the seeder to the peers without degrading playback.
The exact engine carries the sweep to 38 peers; the vectorized cohort
backend (``docs/SCALING.md``) continues it to 10^4 peers, where the
origin's share of the served bytes becomes negligible.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.ablations import run_swarm_scaling
from repro.experiments.report import format_figure
from repro.obs.bench import figure_metrics
from repro.parallel import SweepExecutor

SIZES = (5, 10, 19, 38)
_QUICK_SIZES = (5, 10)
COHORT_SIZES = (100, 1_000, 10_000)
_QUICK_COHORT_SIZES = (100, 1_000)


def _origin_shares(result):
    shares = {}
    for label, cells in result.series.items():
        cell = cells[0]
        shares[label] = cell.seeder_bytes / max(
            1.0, cell.seeder_bytes + cell.peer_bytes
        )
    return shares


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    sizes = _QUICK_SIZES if quick else SIZES
    executor = SweepExecutor(jobs=1)
    result = harness.case(
        "scaling@256",
        run_swarm_scaling,
        kwargs={
            "config": config,
            "video": video,
            "bandwidth_kb": 256,
            "swarm_sizes": sizes,
            "executor": executor,
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "swarm_sizes": list(sizes),
        },
        digest_of=("swarm_scaling", config, 256, sizes),
    )
    lines = [format_figure(result), "", "origin share of served bytes:"]
    shares = _origin_shares(result)
    for label, share in shares.items():
        lines.append(f"  {label:>9s}: {100 * share:5.1f}%")
    harness.annotate(
        events_fired=executor.stats.events_fired,
        sim_seconds=executor.stats.sim_seconds,
        **{
            f"{label}.origin_share": share
            for label, share in shares.items()
        },
        **figure_metrics(result),
    )
    # The cohort backend continues the same sweep past the exact
    # engine's ceiling: 10^4 peers is minutes of exact event time but
    # well under a second vectorized.
    cohort_sizes = _QUICK_COHORT_SIZES if quick else COHORT_SIZES
    cohort_config = replace(config, join_stagger=0.1)
    cohort_result = harness.case(
        "scaling-cohort@256",
        run_swarm_scaling,
        kwargs={
            "config": cohort_config,
            "video": video,
            "bandwidth_kb": 256,
            "swarm_sizes": cohort_sizes,
            "executor": executor,
            "fidelity": "cohort",
        },
        params={
            "quick": quick,
            "bandwidth_kb": 256,
            "swarm_sizes": list(cohort_sizes),
            "fidelity": "cohort",
        },
        digest_of=(
            "swarm_scaling",
            cohort_config,
            256,
            cohort_sizes,
            "cohort",
        ),
    )
    cohort_shares = _origin_shares(cohort_result)
    lines += ["", "cohort backend, origin share of served bytes:"]
    for label, share in cohort_shares.items():
        lines.append(f"  {label:>11s}: {100 * share:5.1f}%")
    harness.annotate(
        **{
            f"cohort.{label}.origin_share": share
            for label, share in cohort_shares.items()
        },
        **{
            f"cohort.{key}": value
            for key, value in figure_metrics(cohort_result).items()
        },
    )
    harness.emit("\n".join(lines), name="ablation_swarm_scaling")
    # The origin's share of the bytes shrinks as the swarm grows (this
    # holds at quick scale too — it is the point of P2P).
    assert shares[f"{sizes[-1]} peers"] < shares[f"{sizes[0]} peers"]
    assert (
        cohort_shares[f"{cohort_sizes[-1]} peers"]
        < cohort_shares[f"{cohort_sizes[0]} peers"]
    )
    if not quick:
        for label, cells in result.series.items():
            assert cells[0].finished_fraction == 1.0
            assert cells[0].stall_count < 15.0
        for label, cells in cohort_result.series.items():
            assert cells[0].finished_fraction == 1.0
    return result


def test_ablation_swarm_scaling(harness):
    run_suite(harness)
