"""Ablation A8 — swarm scaling: P2P sheds load from the origin.

The paper motivates P2P with scalability; growing the swarm should
shift traffic from the seeder to the peers without degrading playback.
"""

from __future__ import annotations

from repro.experiments.ablations import run_swarm_scaling
from repro.experiments.report import format_figure

SIZES = (5, 10, 19, 38)


def test_ablation_swarm_scaling(
    benchmark, experiment_config, paper_video, emit
):
    result = benchmark.pedantic(
        run_swarm_scaling,
        kwargs={
            "config": experiment_config,
            "video": paper_video,
            "bandwidth_kb": 256,
            "swarm_sizes": SIZES,
        },
        rounds=1,
        iterations=1,
    )

    lines = [format_figure(result), "", "origin share of served bytes:"]
    shares = {}
    for label, cells in result.series.items():
        cell = cells[0]
        share = cell.seeder_bytes / max(
            1.0, cell.seeder_bytes + cell.peer_bytes
        )
        shares[label] = share
        lines.append(f"  {label:>9s}: {100 * share:5.1f}%")
    emit("\n".join(lines))

    # The origin's share of the bytes shrinks as the swarm grows.
    assert shares[f"{SIZES[-1]} peers"] < shares[f"{SIZES[0]} peers"]
    # Playback stays healthy at every size.
    for label, cells in result.series.items():
        assert cells[0].finished_fraction == 1.0
        assert cells[0].stall_count < 15.0
