"""Serial vs parallel sweep throughput for the figure-2 cell grid.

Runs the same sweep twice — ``jobs=1`` (pure in-process) and
``jobs=default_jobs()`` (process pool) — records wall-clock seconds and
simulated events/sec for both, asserts the two executions produced
identical ``CellResult``s, and persists the comparison under
``benchmarks/results/``.

The speedup column is only meaningful on multi-core hardware: with a
single available core the pool adds fork/pickle overhead and no
parallelism, so the artifact records ``cpu_count`` alongside the
numbers rather than asserting a ratio the machine cannot produce.
"""

from __future__ import annotations

import os
import time

from repro.experiments.config import ExperimentConfig, make_paper_video
from repro.parallel import (
    SplicerSpec,
    SweepExecutor,
    cell_for,
    default_jobs,
)

#: Reduced fig2-shaped grid: 2 techniques x 3 bandwidths x 2 seeds.
_BANDWIDTHS_KB = (128, 256, 512)
_SPLICERS = (SplicerSpec("gop"), SplicerSpec("duration", 4.0))


def _cells(config, video):
    return [
        cell_for(
            spec,
            bandwidth,
            config,
            video=video,
            label=f"bench/{spec.technique} @ {bandwidth} kB/s",
        )
        for spec in _SPLICERS
        for bandwidth in _BANDWIDTHS_KB
    ]


def _timed_sweep(jobs, cells):
    executor = SweepExecutor(jobs=jobs)
    start = time.perf_counter()
    results = executor.run_cells(cells)
    elapsed = time.perf_counter() - start
    return results, elapsed, executor.stats


def test_parallel_speedup(benchmark, emit):
    config = ExperimentConfig(n_leechers=9, seeds=(7, 11))
    video = make_paper_video(config)
    cells = _cells(config, video)
    jobs = max(2, default_jobs())

    serial_results, serial_s, serial_stats = _timed_sweep(1, cells)

    def _parallel():
        return _timed_sweep(jobs, cells)

    parallel_results, parallel_s, parallel_stats = benchmark.pedantic(
        _parallel, rounds=1, iterations=1
    )

    # The whole point of the executor: worker count never changes the
    # numbers.
    assert parallel_results == serial_results
    assert parallel_stats.events_fired == serial_stats.events_fired

    speedup = serial_s / parallel_s
    lines = [
        "parallel sweep speedup (fig2-shaped grid, "
        f"{len(cells)} cells x {len(config.seeds)} seeds)",
        f"cpu_count:          {os.cpu_count()}",
        f"usable cores:       {len(os.sched_getaffinity(0))}",
        f"worker processes:   {jobs}",
        f"simulated events:   {serial_stats.events_fired}",
        f"serial   (jobs=1):  {serial_s:8.2f} s  "
        f"{serial_stats.events_fired / serial_s:10.0f} events/s",
        f"parallel (jobs={jobs}):  {parallel_s:8.2f} s  "
        f"{parallel_stats.events_fired / parallel_s:10.0f} events/s",
        f"speedup:            {speedup:8.2f}x",
        "results identical:  yes",
    ]
    emit("\n".join(lines))

    # Sanity floor, not a speedup assertion: the pooled run must stay
    # within a small constant factor of serial even on one core.
    assert parallel_s < serial_s * 3
