"""Serial vs parallel sweep throughput for the figure-2 cell grid.

Runs the same sweep twice — ``jobs=1`` (pure in-process) and
``jobs=default_jobs()`` (process pool) — records wall-clock seconds and
simulated events/sec for both, asserts the two executions produced
identical ``CellResult``s, and persists the comparison under
``benchmarks/results/``.

The speedup column is only meaningful on multi-core hardware: with a
single available core the pool adds fork/pickle overhead and no
parallelism, so the artifact records ``cpu_count`` alongside the
numbers rather than asserting a ratio the machine cannot produce.
"""

from __future__ import annotations

import os
import time

from repro.experiments.config import ExperimentConfig, make_paper_video
from repro.parallel import (
    SplicerSpec,
    SweepExecutor,
    cell_for,
    default_jobs,
)

#: Reduced fig2-shaped grid: 2 techniques x 3 bandwidths x 2 seeds.
_BANDWIDTHS_KB = (128, 256, 512)
_SPLICERS = (SplicerSpec("gop"), SplicerSpec("duration", 4.0))


def _cells(config, video, bandwidths=_BANDWIDTHS_KB):
    return [
        cell_for(
            spec,
            bandwidth,
            config,
            video=video,
            label=f"bench/{spec.technique} @ {bandwidth} kB/s",
        )
        for spec in _SPLICERS
        for bandwidth in bandwidths
    ]


def run_suite(harness, quick=False):
    config = ExperimentConfig(
        n_leechers=9, seeds=(7,) if quick else (7, 11)
    )
    video = make_paper_video(config)
    bandwidths = _BANDWIDTHS_KB[:2] if quick else _BANDWIDTHS_KB
    cells = _cells(config, video, bandwidths)
    jobs = max(2, default_jobs())

    def _sweep(n_jobs):
        executor = SweepExecutor(jobs=n_jobs)
        start = time.perf_counter()
        results = executor.run_cells(cells)
        elapsed = time.perf_counter() - start
        return (results, executor.stats), elapsed

    serial_results, serial_stats = harness.case(
        "serial",
        _sweep,
        1,
        self_timed=True,
        params={"jobs": 1, "cells": len(cells), "quick": quick},
        digest_of=("parallel_speedup", config, bandwidths, "serial"),
    )
    serial_s = harness.cases[-1].timing.best_s
    harness.annotate(
        events_fired=serial_stats.events_fired,
        sim_seconds=serial_stats.sim_seconds,
    )

    parallel_results, parallel_stats = harness.case(
        "parallel",
        _sweep,
        jobs,
        self_timed=True,
        params={"jobs": jobs, "cells": len(cells), "quick": quick},
        digest_of=("parallel_speedup", config, bandwidths, "parallel"),
    )
    parallel_s = harness.cases[-1].timing.best_s
    harness.annotate(
        events_fired=parallel_stats.events_fired,
        sim_seconds=parallel_stats.sim_seconds,
    )

    # The whole point of the executor: worker count never changes the
    # numbers.
    assert parallel_results == serial_results
    assert parallel_stats.events_fired == serial_stats.events_fired

    speedup = serial_s / parallel_s
    harness.annotate(
        "parallel", speedup=speedup, worker_processes=jobs
    )
    lines = [
        "parallel sweep speedup (fig2-shaped grid, "
        f"{len(cells)} cells x {len(config.seeds)} seeds)",
        f"cpu_count:          {os.cpu_count()}",
        f"usable cores:       {len(os.sched_getaffinity(0))}",
        f"worker processes:   {jobs}",
        f"simulated events:   {serial_stats.events_fired}",
        f"serial   (jobs=1):  {serial_s:8.2f} s  "
        f"{serial_stats.events_fired / serial_s:10.0f} events/s",
        f"parallel (jobs={jobs}):  {parallel_s:8.2f} s  "
        f"{parallel_stats.events_fired / parallel_s:10.0f} events/s",
        f"speedup:            {speedup:8.2f}x",
        "results identical:  yes",
    ]
    harness.emit("\n".join(lines), name="parallel_speedup")

    # Sanity floor, not a speedup assertion: the pooled run must stay
    # within a small constant factor of serial even on one core.
    assert parallel_s < serial_s * 3
    return speedup


def test_parallel_speedup(harness):
    run_suite(harness)
