"""Ablation A3 — the byte cost of duration-based splicing.

Quantifies the paper's "the duration based splicing requires much more
data to be transferred than the GOP based splicing": total bytes and
overhead percentage per technique.
"""

from __future__ import annotations

from repro.experiments.ablations import run_overhead


def test_ablation_splicing_overhead(benchmark, paper_video, emit):
    rows = benchmark.pedantic(
        run_overhead,
        kwargs={"video": paper_video},
        rounds=1,
        iterations=1,
    )

    lines = [
        f"{'technique':12s} {'segments':>8s} {'total MB':>9s} "
        f"{'overhead':>9s}"
    ]
    for row in rows:
        lines.append(
            f"{row.technique:12s} {row.segments:8d} "
            f"{row.total_bytes / 1e6:9.2f} "
            f"{row.overhead_percent:8.1f}%"
        )
    emit("\n".join(lines))

    by_name = {row.technique: row for row in rows}
    assert by_name["gop"].overhead_bytes == 0
    # Overhead shrinks monotonically as segments grow.
    percents = [
        by_name[f"duration-{d}s"].overhead_percent for d in (1, 2, 4, 8)
    ]
    assert percents == sorted(percents, reverse=True)
    # The 1-second extreme is "much more data": several percent.
    assert percents[0] > 5.0
