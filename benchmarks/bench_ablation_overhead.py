"""Ablation A3 — the byte cost of duration-based splicing.

Quantifies the paper's "the duration based splicing requires much more
data to be transferred than the GOP based splicing": total bytes and
overhead percentage per technique.
"""

from __future__ import annotations

from repro.experiments.ablations import run_overhead

_DURATIONS = (1.0, 2.0, 4.0, 8.0)


def run_suite(harness, quick=False):
    config, video = harness.paper_setup(quick)
    rows = harness.case(
        "splice_overhead",
        run_overhead,
        kwargs={"video": video, "durations": _DURATIONS},
        params={"durations": list(_DURATIONS)},
        digest_of=("overhead", config.video_seed, _DURATIONS),
    )
    harness.annotate(
        **{
            f"{row.technique}.overhead_pct": row.overhead_percent
            for row in rows
        }
    )
    lines = [
        f"{'technique':12s} {'segments':>8s} {'total MB':>9s} "
        f"{'overhead':>9s}"
    ]
    for row in rows:
        lines.append(
            f"{row.technique:12s} {row.segments:8d} "
            f"{row.total_bytes / 1e6:9.2f} "
            f"{row.overhead_percent:8.1f}%"
        )
    harness.emit("\n".join(lines), name="ablation_splicing_overhead")
    _check(rows)
    return rows


def _check(rows):
    by_name = {row.technique: row for row in rows}
    assert by_name["gop"].overhead_bytes == 0
    # Overhead shrinks monotonically as segments grow.
    percents = [
        by_name[f"duration-{d}s"].overhead_percent for d in (1, 2, 4, 8)
    ]
    assert percents == sorted(percents, reverse=True)
    # The 1-second extreme is "much more data": several percent.
    assert percents[0] > 5.0


def test_ablation_splicing_overhead(harness):
    run_suite(harness)
