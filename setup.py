"""Legacy shim so `python setup.py develop` works offline (no wheel pkg).

Metadata — including the numpy dependency for the vectorized swarm
tiers (docs/SCALING.md) — lives in pyproject.toml.
"""
from setuptools import setup

setup()
