"""End-to-end scenarios exercising the paper's qualitative claims.

These are the repository's acceptance tests: each asserts one of the
orderings the paper reports, at reduced scale so the suite stays fast.
Exact-scale reproductions live in ``benchmarks/``.
"""

import pytest

from repro.core.policy import AdaptivePoolPolicy, FixedPoolPolicy
from repro.core.splicer import DurationSplicer, GopSplicer
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s
from repro.video.encoder import encode_paper_video


@pytest.fixture(scope="module")
def paper_video():
    return encode_paper_video(seed=1)


def run(splice, bandwidth_kb, policy=None, seed=7, n_leechers=19):
    config = SwarmConfig(
        bandwidth=kB_per_s(bandwidth_kb),
        seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
        n_leechers=n_leechers,
        seed=seed,
        policy=policy if policy is not None else AdaptivePoolPolicy(),
    )
    return Swarm(splice, config).run()


@pytest.mark.slow
class TestPaperClaims:
    def test_gop_stalls_most_at_moderate_bandwidth(self, paper_video):
        gop = run(GopSplicer().splice(paper_video), 256)
        four = run(DurationSplicer(4.0).splice(paper_video), 256)
        assert gop.mean_stall_count() > four.mean_stall_count()

    def test_two_second_worse_than_four_at_low_bandwidth(
        self, paper_video
    ):
        two = run(DurationSplicer(2.0).splice(paper_video), 128)
        four = run(DurationSplicer(4.0).splice(paper_video), 128)
        assert two.mean_stall_count() > four.mean_stall_count()

    def test_stalls_decrease_with_bandwidth(self, paper_video):
        splice = DurationSplicer(4.0).splice(paper_video)
        low = run(splice, 128)
        high = run(splice, 768)
        assert high.mean_stall_count() <= low.mean_stall_count()

    def test_startup_grows_with_segment_duration(self, paper_video):
        results = [
            run(DurationSplicer(d).splice(paper_video), 128)
            for d in (2.0, 4.0, 8.0)
        ]
        startups = [r.mean_startup_time() for r in results]
        assert startups == sorted(startups)

    def test_startup_decreases_with_bandwidth(self, paper_video):
        splice = DurationSplicer(8.0).splice(paper_video)
        low = run(splice, 128)
        high = run(splice, 1024)
        assert high.mean_startup_time() < low.mean_startup_time()

    def test_adaptive_pooling_beats_large_fixed_pool_at_low_bw(
        self, paper_video
    ):
        splice = DurationSplicer(4.0).splice(paper_video)
        adaptive = run(splice, 128, policy=AdaptivePoolPolicy())
        fixed8 = run(splice, 128, policy=FixedPoolPolicy(8))
        # Fig. 5's low-bandwidth story: deep fixed pools overload the
        # peer's network; Eq. 1 does not.  The damage shows up in
        # stalls and in startup (the pool delays segment 0).
        assert (
            adaptive.mean_stall_count() <= fixed8.mean_stall_count()
            or adaptive.mean_startup_time() < fixed8.mean_startup_time()
        )
        assert adaptive.mean_startup_time() < fixed8.mean_startup_time()

    def test_duration_splicing_moves_more_bytes(self, paper_video):
        gop = GopSplicer().splice(paper_video)
        two = DurationSplicer(2.0).splice(paper_video)
        assert two.total_size > gop.total_size

    def test_most_traffic_is_peer_to_peer(self, paper_video):
        splice = DurationSplicer(4.0).splice(paper_video)
        result = run(splice, 512)
        assert result.peer_bytes_uploaded > result.seeder_bytes_uploaded


class TestSmallSwarmEndToEnd:
    def test_three_peers_stream_everything(self, paper_video):
        splice = DurationSplicer(8.0).splice(paper_video)
        result = run(splice, 512, n_leechers=3)
        assert result.all_finished
        for metrics in result.metrics.values():
            assert metrics.bytes_downloaded == pytest.approx(
                splice.total_size
            )

    def test_single_peer_is_client_server(self, paper_video):
        splice = DurationSplicer(8.0).splice(paper_video)
        result = run(splice, 512, n_leechers=1)
        assert result.all_finished
        assert result.peer_bytes_uploaded == 0
        assert result.seeder_bytes_uploaded >= splice.total_size
