"""Shared fixtures: small, fast videos and swarm builders."""

from __future__ import annotations

import random
import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package first.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.scene import generate_scene_plan

try:  # the vectorized swarm tiers need numpy; gate, don't fail
    import numpy  # noqa: F401

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover - numpy ships with the image
    _HAVE_NUMPY = False

requires_numpy = pytest.mark.skipif(
    not _HAVE_NUMPY, reason="numpy is not installed"
)


@pytest.fixture(scope="session")
def short_video():
    """A 24-second synthetic video (fast to splice and stream)."""
    rng = random.Random(42)
    plan = generate_scene_plan(24.0, rng)
    return SyntheticEncoder(
        EncoderConfig(bitrate=950_000.0)
    ).encode(plan, rng)


@pytest.fixture(scope="session")
def tiny_video():
    """A 8-second video for the fastest integration tests."""
    rng = random.Random(7)
    plan = generate_scene_plan(8.0, rng)
    return SyntheticEncoder(
        EncoderConfig(bitrate=800_000.0)
    ).encode(plan, rng)
