"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_quick_flag(self):
        args = build_parser().parse_args(["fig2", "--quick"])
        assert args.quick

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_reproduce_trace_flags(self):
        args = build_parser().parse_args(
            ["reproduce", "--figure", "2", "--trace", "/tmp/t.jsonl"]
        )
        assert args.figure == "2"
        assert args.trace == "/tmp/t.jsonl"

    def test_reproduce_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--figure", "9"])


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-8s" in out
        assert "%" in out

    def test_rspec(self, capsys):
        assert main(["rspec", "--peers", "2", "--capacity", "1024"]) == 0
        out = capsys.readouterr().out
        assert "<rspec" in out
        assert 'capacity="1024"' in out

    def test_timeline(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--peers",
                    "2",
                    "--bandwidth",
                    "512",
                    "--duration",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "peer-1" in out
        assert "$" in out  # someone finished

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        assert main(["quickstart", "--bandwidth", "512"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-4s" in out

    @pytest.mark.slow
    def test_quick_figure(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Adaptive pooling" in out
        assert "128 kB/s" in out


class TestTraceCommand:
    def test_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read trace" in err

    def test_corrupt_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("this is not json\n")
        code = main(["trace", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "corrupt trace" in err

    def test_unknown_event_exits_2(self, capsys, tmp_path):
        path = tmp_path / "unknown.jsonl"
        path.write_text(
            '{"event": "NoSuchEvent", "time": 0.0, '
            '"category": "x", "severity": "info"}\n'
        )
        code = main(["trace", str(path)])
        assert code == 2
        assert "NoSuchEvent" in capsys.readouterr().err

    def test_summarizes_a_real_trace(self, capsys, tmp_path):
        from repro.obs import (
            EventTracer,
            PeerJoined,
            PlaybackStarted,
            StallEnded,
            StallStarted,
            dump_jsonl,
        )

        tracer = EventTracer()
        tracer.emit(PeerJoined(time=0.0, peer="peer-1"))
        tracer.emit(PlaybackStarted(
            time=2.0, peer="peer-1", startup_time=2.0
        ))
        tracer.emit(StallStarted(time=5.0, peer="peer-1", segment=3))
        tracer.emit(StallEnded(
            time=6.5, peer="peer-1", segment=3, duration=1.5
        ))
        path = tmp_path / "run.jsonl"
        dump_jsonl(tracer.events(), str(path))

        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "peer-1" in out
        assert "Events by category" in out
        assert "StallStarted x1" in out

    @pytest.mark.slow
    def test_reproduce_figure_trace_round_trip(self, capsys, tmp_path):
        """The acceptance flow: reproduce --figure 2 --trace, then
        summarize the trace with the trace subcommand."""
        path = tmp_path / "fig2.jsonl"
        assert (
            main(
                [
                    "reproduce",
                    "--quick",
                    "--figure",
                    "2",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "traced representative run" in out
        assert path.exists()

        from repro.obs import load_jsonl

        events = load_jsonl(str(path))
        layers = {event.category for event in events}
        assert {"engine", "tcp", "player"} <= layers
        assert "leecher" in layers or "swarm" in layers

        assert main(["trace", str(path)]) == 0
        summary = capsys.readouterr().out
        assert "peer-1" in summary
        assert "finished" in summary or "cut off" in summary
