"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_quick_flag(self):
        args = build_parser().parse_args(["fig2", "--quick"])
        assert args.quick


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-8s" in out
        assert "%" in out

    def test_rspec(self, capsys):
        assert main(["rspec", "--peers", "2", "--capacity", "1024"]) == 0
        out = capsys.readouterr().out
        assert "<rspec" in out
        assert 'capacity="1024"' in out

    def test_timeline(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--peers",
                    "2",
                    "--bandwidth",
                    "512",
                    "--duration",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "peer-1" in out
        assert "$" in out  # someone finished

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        assert main(["quickstart", "--bandwidth", "512"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-4s" in out

    @pytest.mark.slow
    def test_quick_figure(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Adaptive pooling" in out
        assert "128 kB/s" in out
