"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])

    def test_quick_flag(self):
        args = build_parser().parse_args(["fig2", "--quick"])
        assert args.quick

    def test_version(self, capsys):
        import repro

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out

    def test_reproduce_trace_flags(self):
        args = build_parser().parse_args(
            ["reproduce", "--figure", "2", "--trace", "/tmp/t.jsonl"]
        )
        assert args.figure == "2"
        assert args.trace == "/tmp/t.jsonl"

    def test_reproduce_figure_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["reproduce", "--figure", "9"])


class TestCommands:
    def test_overhead(self, capsys):
        assert main(["overhead"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-8s" in out
        assert "%" in out

    def test_rspec(self, capsys):
        assert main(["rspec", "--peers", "2", "--capacity", "1024"]) == 0
        out = capsys.readouterr().out
        assert "<rspec" in out
        assert 'capacity="1024"' in out

    def test_timeline(self, capsys):
        assert (
            main(
                [
                    "timeline",
                    "--peers",
                    "2",
                    "--bandwidth",
                    "512",
                    "--duration",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "peer-1" in out
        assert "$" in out  # someone finished

    @pytest.mark.slow
    def test_quickstart(self, capsys):
        assert main(["quickstart", "--bandwidth", "512"]) == 0
        out = capsys.readouterr().out
        assert "gop" in out
        assert "duration-4s" in out

    @pytest.mark.slow
    def test_quick_figure(self, capsys):
        assert main(["fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "Adaptive pooling" in out
        assert "128 kB/s" in out


class TestVersionEnvironment:
    def test_version_prints_environment_block(self, capsys):
        import platform

        with pytest.raises(SystemExit) as excinfo:
            build_parser().parse_args(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert platform.python_version() in out
        assert "cpus" in out
        assert "numpy" in out


class TestProgressFlag:
    def test_bare_flag_selects_live(self):
        args = build_parser().parse_args(
            ["reproduce", "--progress"]
        )
        assert args.progress == "live"

    def test_plain_mode(self):
        args = build_parser().parse_args(
            ["reproduce", "--progress", "plain"]
        )
        assert args.progress == "plain"

    def test_default_is_off(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.progress is None

    def test_unknown_mode_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["reproduce", "--progress", "fancy"]
            )


class TestBenchCommand:
    def test_list_names_every_suite(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        assert "flownet" in out
        assert "fig2_stalls" in out
        assert "parallel_speedup" in out

    def test_unknown_suite_exits_2(self, capsys):
        assert main(["bench", "no_such_suite"]) == 2
        err = capsys.readouterr().err
        assert "unknown suite" in err
        assert "repro bench list" in err

    def test_quick_suite_writes_valid_artifact(
        self, capsys, tmp_path
    ):
        from repro.obs.bench import load_artifact

        target = tmp_path / "BENCH_fig1_rspec.json"
        assert (
            main(
                [
                    "bench",
                    "fig1_rspec",
                    "--quick",
                    "--output",
                    str(target),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "suite fig1_rspec: 1 case(s)" in out
        payload = load_artifact(target)
        assert payload["quick"] is True
        assert payload["cases"][0]["id"] == "build_serialize_parse"


class TestCompareCommand:
    @pytest.fixture()
    def artifact_pair(self, tmp_path):
        """A baseline artifact and a path for a candidate copy."""
        import json

        from repro.obs.bench import BenchHarness

        harness = BenchHarness("demo", results_dir=tmp_path)
        harness.case("c", lambda: None, digest_of=("w", 1))
        harness.annotate(events_fired=1000)
        baseline = harness.write(tmp_path / "baseline.json")
        payload = json.loads(baseline.read_text())
        return baseline, tmp_path / "candidate.json", payload

    def test_self_compare_exits_0(self, capsys, artifact_pair):
        baseline, _, _ = artifact_pair
        assert main(["compare", str(baseline), str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "0 regression(s)" in out

    def test_injected_slowdown_exits_1(self, capsys, artifact_pair):
        import json

        baseline, candidate, payload = artifact_pair
        timing = payload["cases"][0]["timing"]
        for name in ("best_s", "mean_s"):
            timing[name] *= 1.5  # 50% slower, well past any threshold
        payload["cases"][0]["events_per_sec"] = None
        candidate.write_text(json.dumps(payload))
        assert (
            main(
                [
                    "compare",
                    str(baseline),
                    str(candidate),
                    "--threshold",
                    "20",
                ]
            )
            == 1
        )
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "1 regression(s)" in out

    def test_malformed_artifact_exits_2(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "repro.bench/999"}')
        assert main(["compare", str(bad), str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys, tmp_path):
        missing = tmp_path / "nope.json"
        assert main(["compare", str(missing), str(missing)]) == 2
        assert "cannot read artifact" in capsys.readouterr().err

    def test_custom_metric_selection(self, capsys, artifact_pair):
        import json

        baseline, candidate, payload = artifact_pair
        payload["cases"][0]["metrics"] = {"stalls": 99.0}
        candidate.write_text(json.dumps(payload))
        base_payload = json.loads(baseline.read_text())
        base_payload["cases"][0]["metrics"] = {"stalls": 10.0}
        baseline.write_text(json.dumps(base_payload))
        assert (
            main(
                [
                    "compare",
                    str(baseline),
                    str(candidate),
                    "--metric",
                    "metrics.stalls",
                ]
            )
            == 1
        )
        assert "metrics.stalls" in capsys.readouterr().out


class TestManifestFlag:
    @pytest.mark.slow
    def test_reproduce_writes_run_manifest(self, capsys, tmp_path):
        import json

        path = tmp_path / "manifest.json"
        assert (
            main(
                [
                    "reproduce",
                    "--quick",
                    "--figure",
                    "2",
                    "--manifest",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert f"run manifest -> {path}" in out
        payload = json.loads(path.read_text())
        assert payload["schema"] == "repro.manifest/1"
        assert "--figure 2" in payload["command"]
        assert payload["env"]["usable_cores"] >= 1
        sweep = payload["sweep"]
        assert sweep["runs"] > 0
        assert sweep["events_fired"] > 0
        assert sweep["wall_seconds"] > 0
        assert sweep["cells_per_sec"] == pytest.approx(
            (sweep["cells_cached"] + sweep["cells_computed"])
            / sweep["wall_seconds"]
        )

    def test_unwritable_manifest_exits_2(self, capsys, tmp_path):
        # Parse-level smoke for the flag without running a sweep.
        args = build_parser().parse_args(
            ["reproduce", "--manifest", str(tmp_path / "m.json")]
        )
        assert args.manifest == str(tmp_path / "m.json")


class TestOpsCommand:
    def write_log(self, path):
        from repro.obs.ops import OpsLog

        clock = iter(float(i) for i in range(100))
        log = OpsLog(path, clock=lambda: next(clock))
        with log.span("shard", shard=0):
            log.record(
                "cell-run", duration_s=1.0, cell="gop @ 128", seed=7
            )
        log.close()

    def test_renders_tree_and_critical_path(self, capsys, tmp_path):
        path = tmp_path / "shard-0.ops.jsonl"
        self.write_log(path)
        assert main(["ops", str(path)]) == 0
        out = capsys.readouterr().out
        assert "shard" in out
        assert "gop @ 128 seed 7" in out
        assert "critical path" in out

    def test_depth_flag_truncates(self, capsys, tmp_path):
        path = tmp_path / "shard-0.ops.jsonl"
        self.write_log(path)
        assert main(["ops", str(path), "--depth", "1"]) == 0
        assert "gop @ 128" not in capsys.readouterr().out.split(
            "critical path"
        )[0]

    def test_malformed_log_exits_2(self, capsys, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope", encoding="utf-8")
        assert main(["ops", str(path)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_log_exits_2(self, capsys, tmp_path):
        assert main(["ops", str(tmp_path / "absent.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepOpsFlags:
    def test_ops_on_by_default(self):
        args = build_parser().parse_args(
            ["sweep", "run", "plan.json", "--shard", "0",
             "--store", "s"]
        )
        assert not args.no_ops

    def test_no_ops_flag(self):
        args = build_parser().parse_args(
            ["sweep", "run", "plan.json", "--shard", "0",
             "--store", "s", "--no-ops"]
        )
        assert args.no_ops

    def test_status_collects_stores(self):
        args = build_parser().parse_args(
            ["sweep", "status", "plan.json",
             "--store", "a", "--store", "b"]
        )
        assert args.stores == ["a", "b"]
        assert not args.watch
        assert args.interval == 2.0
        assert args.stale == 30.0
        assert args.straggler == 0.5

    def test_status_requires_a_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["sweep", "status", "plan.json"]
            )


class TestCacheFlags:
    def test_bare_cache_selects_default_root(self):
        args = build_parser().parse_args(["reproduce", "--cache"])
        assert args.cache == ""  # sentinel: use default_store_root()

    def test_cache_with_directory(self, tmp_path):
        args = build_parser().parse_args(
            ["reproduce", "--cache", str(tmp_path / "store")]
        )
        assert args.cache == str(tmp_path / "store")

    def test_cache_off_by_default(self):
        args = build_parser().parse_args(["reproduce"])
        assert args.cache is None
        assert not args.resume
        assert not args.no_cache

    @pytest.mark.slow
    def test_warm_rerun_is_pure_cache(self, capsys, tmp_path):
        import json

        store = str(tmp_path / "store")
        argv = [
            "reproduce", "--quick", "--figure", "2",
            "--cache", store,
        ]
        assert main(argv + ["--manifest",
                            str(tmp_path / "m1.json")]) == 0
        cold = capsys.readouterr()
        assert main(argv + ["--manifest",
                            str(tmp_path / "m2.json")]) == 0
        warm = capsys.readouterr()
        # The figure table is byte-identical; only the manifest
        # pointer line differs between the two invocations.
        def strip(text):
            return [
                line for line in text.splitlines()
                if not line.startswith("run manifest ->")
            ]
        assert strip(warm.out) == strip(cold.out)
        assert "0 of 8 runs cached" in cold.err
        assert "8 of 8 runs cached" in warm.err
        m1 = json.loads((tmp_path / "m1.json").read_text())
        m2 = json.loads((tmp_path / "m2.json").read_text())
        assert m1["cache"] == {
            "enabled": True,
            "root": store,
            "schema": "repro.store/1",
            "hits": 0,
            "misses": 8,
            "stores": 8,
            "invalidations": 0,
            "runs_cached": 0,
        }
        assert m2["cache"]["hits"] == 8
        assert m2["cache"]["runs_cached"] == 8
        assert m2["sweep"]["events_fired"] == 0

    @pytest.mark.slow
    def test_no_cache_wins(self, capsys, tmp_path):
        store = tmp_path / "store"
        assert main([
            "reproduce", "--quick", "--figure", "2",
            "--cache", str(store), "--no-cache",
        ]) == 0
        captured = capsys.readouterr()
        assert "result store" not in captured.err
        assert not store.exists()

    @pytest.mark.slow
    def test_resume_implies_cache(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_STORE", str(tmp_path / "store"))
        assert main([
            "reproduce", "--quick", "--figure", "2", "--resume",
        ]) == 0
        assert "runs resumed" in capsys.readouterr().err
        assert (tmp_path / "store").is_dir()


class TestTraceCommand:
    def test_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        err = capsys.readouterr().err
        assert "cannot read trace" in err

    def test_corrupt_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("this is not json\n")
        code = main(["trace", str(path)])
        assert code == 2
        err = capsys.readouterr().err
        assert "corrupt trace" in err

    def test_unknown_event_exits_2(self, capsys, tmp_path):
        path = tmp_path / "unknown.jsonl"
        path.write_text(
            '{"event": "NoSuchEvent", "time": 0.0, '
            '"category": "x", "severity": "info"}\n'
        )
        code = main(["trace", str(path)])
        assert code == 2
        assert "NoSuchEvent" in capsys.readouterr().err

    def test_summarizes_a_real_trace(self, capsys, tmp_path):
        from repro.obs import (
            EventTracer,
            PeerJoined,
            PlaybackStarted,
            StallEnded,
            StallStarted,
            dump_jsonl,
        )

        tracer = EventTracer()
        tracer.emit(PeerJoined(time=0.0, peer="peer-1"))
        tracer.emit(PlaybackStarted(
            time=2.0, peer="peer-1", startup_time=2.0
        ))
        tracer.emit(StallStarted(time=5.0, peer="peer-1", segment=3))
        tracer.emit(StallEnded(
            time=6.5, peer="peer-1", segment=3, duration=1.5
        ))
        path = tmp_path / "run.jsonl"
        dump_jsonl(tracer.events(), str(path))

        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "peer-1" in out
        assert "Events by category" in out
        assert "StallStarted x1" in out

    @pytest.mark.slow
    def test_reproduce_figure_trace_round_trip(self, capsys, tmp_path):
        """The acceptance flow: reproduce --figure 2 --trace, then
        summarize the trace with the trace subcommand."""
        path = tmp_path / "fig2.jsonl"
        assert (
            main(
                [
                    "reproduce",
                    "--quick",
                    "--figure",
                    "2",
                    "--trace",
                    str(path),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "fig2" in out
        assert "traced representative run" in out
        assert path.exists()

        from repro.obs import load_jsonl

        events = load_jsonl(str(path))
        layers = {event.category for event in events}
        assert {"engine", "tcp", "player"} <= layers
        assert "leecher" in layers or "swarm" in layers

        assert main(["trace", str(path)]) == 0
        summary = capsys.readouterr().out
        assert "peer-1" in summary
        assert "finished" in summary or "cut off" in summary
