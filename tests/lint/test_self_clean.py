"""Self-hosting gate: the linter runs clean on ``src/repro``.

This is the contract the CI lint step enforces; keeping it in tier-1
means a stray wall-clock read, unordered iteration, or bare builtin
raise fails the suite *before* it can poison a golden trace or a
cached sweep cell.
"""

from pathlib import Path

from repro.lint import lint_paths, load_config

REPO_ROOT = Path(__file__).parents[2]


def test_src_repro_is_clean():
    result = lint_paths(
        [REPO_ROOT / "src" / "repro"],
        config=load_config(REPO_ROOT / "pyproject.toml"),
    )
    assert result.findings == [], [
        f"{f.path}:{f.line}: {f.rule} {f.message}"
        for f in result.findings
    ]
    assert result.unused_suppressions == [], [
        f"{u.path}:{u.line}: lint-ok[{u.rule}]"
        for u in result.unused_suppressions
    ]
    assert result.modules > 90


def test_deliberate_exceptions_stay_annotated():
    # The known suppression inventory: the flow solvers' commutative
    # set folds (D3), the report header's wall elapsed (D1), and the
    # CLI's unreachable dispatch guard (E1).  Growing this list is
    # fine — silently losing an annotation is not.
    result = lint_paths(
        [REPO_ROOT / "src" / "repro"],
        config=load_config(REPO_ROOT / "pyproject.toml"),
    )
    per_rule = {
        rule: counts["suppressed"]
        for rule, counts in result.statistics()["per_rule"].items()
    }
    assert per_rule.get("D3", 0) >= 6
    assert per_rule.get("D1", 0) >= 2
    assert per_rule.get("E1", 0) >= 1
